// sesr_eval — evaluate a collapsed SESR checkpoint (or bicubic) on the six
// synthetic benchmark sets, optionally through the int8 or tiled paths.
//
//   sesr_eval --model=sesr_model.collapsed.ckpt
//   sesr_eval --model=... --int8 --tiled --tile=64
//   sesr_eval --bicubic --scale=2
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "cli_args.hpp"
#include "core/hybrid_plan.hpp"
#include "core/quantize.hpp"
#include "core/sesr_inference.hpp"
#include "core/tiled_inference.hpp"
#include "data/resize.hpp"
#include "metrics/evaluate.hpp"

using namespace sesr;

int main(int argc, char** argv) {
  cli::Args args(
      {
          {"model", "", "collapsed checkpoint path (omit with --bicubic)"},
          {"bicubic", "", "evaluate the bicubic baseline instead of a model"},
          {"scale", "2", "scale for --bicubic (checkpoints carry their own)"},
          {"image-size", "64", "HR edge length of the synthetic eval sets"},
          {"full", "", "use the larger (non-reduced) set sizes"},
          {"int8", "", "legacy reference int8 path (QuantizedSesr; the serving "
                       "path is --precision int8)"},
          {"precision", "", "per-precision summary: fp32|fp16|int8|hybrid|all (full-frame)"},
          {"tiled", "", "run tile-by-tile with an exact halo"},
          {"tile", "32", "tile size for --tiled"},
          {"help", "", "show this help"},
      },
      argc, argv);
  if (args.get_flag("help")) {
    args.usage("sesr_eval", "evaluate a collapsed SESR checkpoint on the six benchmark sets");
    return 0;
  }

  try {
    const auto sets = data::make_benchmark_sets(args.get_int("image-size"),
                                                /*reduced=*/!args.get_flag("full"));
    metrics::Upscaler upscaler;
    std::int64_t scale = args.get_int("scale");

    if (args.get_flag("bicubic")) {
      upscaler = [scale](const Tensor& lr_img) { return data::upscale_bicubic(lr_img, scale); };
      std::printf("evaluating: bicubic x%lld\n", static_cast<long long>(scale));
    } else {
      if (args.get("model").empty()) {
        throw std::invalid_argument("--model is required (or pass --bicubic)");
      }
      auto net = std::make_shared<core::SesrInference>(load_tensors(args.get("model")));
      scale = net->config().scale;
      std::printf("evaluating: %s (%lld params)\n", net->name().c_str(),
                  static_cast<long long>(net->parameter_count()));
      const std::string precision = args.get("precision");
      if (!precision.empty()) {
        // Per-precision summary: one row per arithmetic mode, quality
        // aggregated over every set (image-weighted) plus mean wall time per
        // frame. Full-frame path only; --int8/--tiled flags are ignored here.
        if (precision != "fp32" && precision != "fp16" && precision != "int8" &&
            precision != "hybrid" && precision != "all") {
          throw std::invalid_argument("--precision must be fp32|fp16|int8|hybrid|all");
        }
        const std::vector<std::string> modes =
            precision == "all" ? std::vector<std::string>{"fp32", "fp16", "int8", "hybrid"}
                               : std::vector<std::string>{precision};
        // Native int8 calibration set: the first benchmark set's LR frames
        // (shared by the int8 and hybrid rows; the hybrid planner also needs
        // the HR targets for its PSNR budget).
        std::vector<Tensor> calib_lr;
        std::vector<Tensor> calib_hr;
        auto ensure_calibrated = [&]() {
          if (net->int8_calibrated()) return;
          calib_hr.assign(sets.front().hr.begin(), sets.front().hr.end());
          for (const Tensor& t : calib_hr) calib_lr.push_back(data::downscale_bicubic(t, scale));
          net->calibrate_int8(calib_lr);
        };
        std::printf("\n%-10s %10s %8s %10s\n", "precision", "PSNR", "SSIM", "ms/frame");
        for (const std::string& mode : modes) {
          metrics::Upscaler base;
          if (mode == "int8" || mode == "hybrid") {
            ensure_calibrated();
            if (mode == "hybrid" && net->hybrid_plan().empty()) {
              const core::HybridPlanReport plan =
                  core::plan_hybrid_precision(*net, calib_lr, calib_hr);
              std::printf("hybrid plan: %lld/%zu int8 layers, calib drop %.3f dB "
                          "(%lld plans scored)\n",
                          static_cast<long long>(plan.int8_layers), plan.plan.size(),
                          plan.drop_db, static_cast<long long>(plan.evaluated));
            }
            net->set_precision(mode == "int8" ? core::InferencePrecision::kInt8
                                              : core::InferencePrecision::kHybrid);
            base = [net](const Tensor& lr_img) { return net->upscale(lr_img); };
          } else {
            net->set_precision(mode == "fp16" ? core::InferencePrecision::kFp16
                                              : core::InferencePrecision::kFp32);
            base = [net](const Tensor& lr_img) { return net->upscale(lr_img); };
          }
          double total_ms = 0.0;
          std::int64_t frames = 0;
          const metrics::Upscaler timed = [&total_ms, &frames, base](const Tensor& lr_img) {
            const auto t0 = std::chrono::steady_clock::now();
            Tensor out = base(lr_img);
            total_ms +=
                std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
                    .count();
            ++frames;
            return out;
          };
          double psnr_sum = 0.0;
          double ssim_sum = 0.0;
          std::int64_t images = 0;
          for (const auto& score : metrics::evaluate_on_sets(timed, sets, scale)) {
            psnr_sum += score.psnr * static_cast<double>(score.images);
            ssim_sum += score.ssim * static_cast<double>(score.images);
            images += score.images;
          }
          std::printf("%-10s %9.2f %8.4f %9.2f\n", mode.c_str(),
                      psnr_sum / static_cast<double>(images),
                      ssim_sum / static_cast<double>(images),
                      total_ms / static_cast<double>(frames));
        }
        net->set_precision(core::InferencePrecision::kFp32);
        return 0;
      }
      if (args.get_flag("int8")) {
        std::vector<Tensor> calib(sets.front().hr.begin(), sets.front().hr.end());
        for (Tensor& t : calib) t = data::downscale_bicubic(t, scale);
        auto quant = std::make_shared<core::QuantizedSesr>(*net, calib);
        std::printf("mode: int8 (%lld weight bytes)\n",
                    static_cast<long long>(quant->weight_bytes()));
        upscaler = [quant](const Tensor& lr_img) { return quant->upscale(lr_img); };
      } else if (args.get_flag("tiled")) {
        core::TilingOptions options;
        options.tile_h = options.tile_w = args.get_int("tile");
        std::printf("mode: tiled %lldx%lld, exact halo %lld\n",
                    static_cast<long long>(options.tile_h),
                    static_cast<long long>(options.tile_w),
                    static_cast<long long>(core::receptive_field_radius(*net)));
        upscaler = [net, options](const Tensor& lr_img) {
          return core::upscale_tiled(*net, lr_img, options);
        };
      } else {
        upscaler = [net](const Tensor& lr_img) { return net->upscale(lr_img); };
      }
    }

    std::printf("\n%-12s %8s %10s %8s\n", "dataset", "images", "PSNR", "SSIM");
    for (const auto& score : metrics::evaluate_on_sets(upscaler, sets, scale)) {
      std::printf("%-12s %8lld %9.2f %8.4f\n", score.dataset.c_str(),
                  static_cast<long long>(score.images), score.psnr, score.ssim);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
