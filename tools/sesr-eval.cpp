// sesr_eval — evaluate a collapsed SESR checkpoint (or bicubic) on the six
// synthetic benchmark sets, optionally through the int8 or tiled paths.
//
//   sesr_eval --model=sesr_model.collapsed.ckpt
//   sesr_eval --model=... --int8 --tiled --tile=64
//   sesr_eval --bicubic --scale=2
#include <cstdio>
#include <stdexcept>

#include "cli_args.hpp"
#include "core/quantize.hpp"
#include "core/sesr_inference.hpp"
#include "core/tiled_inference.hpp"
#include "data/resize.hpp"
#include "metrics/evaluate.hpp"

using namespace sesr;

int main(int argc, char** argv) {
  cli::Args args(
      {
          {"model", "", "collapsed checkpoint path (omit with --bicubic)"},
          {"bicubic", "", "evaluate the bicubic baseline instead of a model"},
          {"scale", "2", "scale for --bicubic (checkpoints carry their own)"},
          {"image-size", "64", "HR edge length of the synthetic eval sets"},
          {"full", "", "use the larger (non-reduced) set sizes"},
          {"int8", "", "quantize to int8 (calibrated on the first set)"},
          {"tiled", "", "run tile-by-tile with an exact halo"},
          {"tile", "32", "tile size for --tiled"},
          {"help", "", "show this help"},
      },
      argc, argv);
  if (args.get_flag("help")) {
    args.usage("sesr_eval", "evaluate a collapsed SESR checkpoint on the six benchmark sets");
    return 0;
  }

  try {
    const auto sets = data::make_benchmark_sets(args.get_int("image-size"),
                                                /*reduced=*/!args.get_flag("full"));
    metrics::Upscaler upscaler;
    std::int64_t scale = args.get_int("scale");

    if (args.get_flag("bicubic")) {
      upscaler = [scale](const Tensor& lr_img) { return data::upscale_bicubic(lr_img, scale); };
      std::printf("evaluating: bicubic x%lld\n", static_cast<long long>(scale));
    } else {
      if (args.get("model").empty()) {
        throw std::invalid_argument("--model is required (or pass --bicubic)");
      }
      auto net = std::make_shared<core::SesrInference>(load_tensors(args.get("model")));
      scale = net->config().scale;
      std::printf("evaluating: %s (%lld params)\n", net->name().c_str(),
                  static_cast<long long>(net->parameter_count()));
      if (args.get_flag("int8")) {
        std::vector<Tensor> calib(sets.front().hr.begin(), sets.front().hr.end());
        for (Tensor& t : calib) t = data::downscale_bicubic(t, scale);
        auto quant = std::make_shared<core::QuantizedSesr>(*net, calib);
        std::printf("mode: int8 (%lld weight bytes)\n",
                    static_cast<long long>(quant->weight_bytes()));
        upscaler = [quant](const Tensor& lr_img) { return quant->upscale(lr_img); };
      } else if (args.get_flag("tiled")) {
        core::TilingOptions options;
        options.tile_h = options.tile_w = args.get_int("tile");
        std::printf("mode: tiled %lldx%lld, exact halo %lld\n",
                    static_cast<long long>(options.tile_h),
                    static_cast<long long>(options.tile_w),
                    static_cast<long long>(core::receptive_field_radius(*net)));
        upscaler = [net, options](const Tensor& lr_img) {
          return core::upscale_tiled(*net, lr_img, options);
        };
      } else {
        upscaler = [net](const Tensor& lr_img) { return net->upscale(lr_img); };
      }
    }

    std::printf("\n%-12s %8s %10s %8s\n", "dataset", "images", "PSNR", "SSIM");
    for (const auto& score : metrics::evaluate_on_sets(upscaler, sets, scale)) {
      std::printf("%-12s %8lld %9.2f %8.4f\n", score.dataset.c_str(),
                  static_cast<long long>(score.images), score.psnr, score.ssim);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
