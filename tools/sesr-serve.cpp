// sesr-serve — synthetic-traffic load generator for the batched eval server.
//
// Spins up an EvalServer over a freshly initialized collapsed SESR network
// and drives it with synthetic Y frames:
//
//   open loop  (--qps > 0): Poisson arrivals at the requested rate, submitted
//     on schedule regardless of completions — the honest way to measure tail
//     latency under a fixed offered load.
//   closed loop (--qps 0): submits as fast as the bounded queue admits
//     (kBlock) or retries drop counting (kReject) — a saturation probe.
//
// Prints per-request latency percentiles (p50/p95/p99), achieved FPS, batch
// occupancy, and reject counts. docs/SERVING.md explains how to read them.
#include <chrono>
#include <cstdio>
#include <future>
#include <random>
#include <thread>
#include <vector>

#include "cli_args.hpp"
#include "core/sesr_inference.hpp"
#include "core/sesr_network.hpp"
#include "serve/request_queue.hpp"
#include "serve/server.hpp"
#include "serve_cli.hpp"
#include "tensor/thread_pool.hpp"

namespace {

using namespace sesr;

core::SesrConfig named_config(const std::string& name, std::int64_t scale) {
  if (name == "m3") return core::sesr_m3(scale);
  if (name == "m5") return core::sesr_m5(scale);
  if (name == "m7") return core::sesr_m7(scale);
  if (name == "m11") return core::sesr_m11(scale);
  return core::sesr_xl(scale);
}

int run(const cli::ServeCliConfig& config) {
  ThreadPool::set_global_threads(static_cast<unsigned>(config.threads));
  Rng rng(config.seed);
  core::SesrNetwork network(named_config(config.net, config.scale), rng);
  const core::SesrInference inference(network);
  serve::EvalServer server(inference, config.serve);

  // One pre-generated frame per shape; traffic cycles through the mix.
  std::vector<Tensor> frames;
  for (const auto& [h, w] : config.shapes) {
    Tensor frame(1, h, w, 1);
    frame.fill_uniform(rng, 0.0F, 1.0F);
    frames.push_back(std::move(frame));
  }

  std::printf("sesr-serve: %s x%lld | workers=%d max_batch=%lld delay=%lldus queue=%zu prec=%s\n",
              inference.name().c_str(), static_cast<long long>(config.scale),
              config.serve.workers, static_cast<long long>(config.serve.max_batch),
              static_cast<long long>(config.serve.max_delay_us), config.serve.queue_capacity,
              config.serve.precision == core::InferencePrecision::kFp16 ? "fp16" : "fp32");

  std::mt19937_64 arrivals(config.seed ^ 0x9E3779B97F4A7C15ULL);
  std::exponential_distribution<double> inter_arrival(config.qps > 0.0 ? config.qps : 1.0);
  const auto start = std::chrono::steady_clock::now();
  const auto stop_at = config.duration_s > 0.0
                           ? start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                                         std::chrono::duration<double>(config.duration_s))
                           : std::chrono::steady_clock::time_point::max();

  std::vector<std::future<Tensor>> pending;
  auto next_arrival = start;
  std::int64_t submitted = 0;
  for (std::int64_t i = 0; config.duration_s > 0.0 || i < config.frames; ++i) {
    if (std::chrono::steady_clock::now() >= stop_at) break;
    if (config.qps > 0.0) {
      std::this_thread::sleep_until(next_arrival);
      next_arrival += std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(inter_arrival(arrivals)));
    }
    pending.push_back(server.submit(frames[static_cast<std::size_t>(i) % frames.size()]));
    ++submitted;
  }
  std::int64_t dropped = 0;
  std::int64_t errors = 0;
  for (auto& f : pending) {
    try {
      f.get();
    } catch (const serve::QueueFullError&) {
      ++dropped;
    } catch (const std::exception& e) {
      if (++errors == 1) std::fprintf(stderr, "request failed: %s\n", e.what());
    }
  }
  const double wall = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  server.shutdown();
  const serve::ServerStats stats = server.stats();

  std::printf("submitted %lld  completed %llu  dropped %lld  errors %lld\n",
              static_cast<long long>(submitted),
              static_cast<unsigned long long>(stats.completed), static_cast<long long>(dropped),
              static_cast<long long>(errors));
  std::printf("offered %s  achieved %.1f fps  mean batch %.2f frames (%llu units, %llu tiles)\n",
              config.qps > 0.0 ? (std::to_string(config.qps) + " qps").c_str() : "closed-loop",
              static_cast<double>(stats.completed) / wall, stats.mean_batch_frames,
              static_cast<unsigned long long>(stats.batches),
              static_cast<unsigned long long>(stats.tiles));
  std::printf("latency  p50 %.2f ms  p95 %.2f ms  p99 %.2f ms  max %.2f ms\n", stats.p50_us / 1e3,
              stats.p95_us / 1e3, stats.p99_us / 1e3, stats.max_us / 1e3);
  return errors == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const cli::Args args(cli::serve_cli_options(), argc, argv);
    return run(cli::parse_serve_cli(args));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sesr-serve: %s\n\n", e.what());
    const cli::Args usage(cli::serve_cli_options(), 1, argv);
    usage.usage("sesr-serve", "synthetic-traffic load generator for the batched eval server");
    return 2;
  }
}
