// sesr-serve — synthetic-traffic load generator for the batched eval server.
//
// Spins up a ShardedServer over one or more freshly initialized collapsed
// SESR networks (--networks m5:2,m11:2:fp16; a single --net/--scale route by
// default) and drives it with synthetic Y frames:
//
//   open loop  (--qps > 0): Poisson arrivals at the requested rate, submitted
//     on schedule regardless of completions — the honest way to measure tail
//     latency under a fixed offered load.
//   closed loop (--qps 0): submits as fast as the bounded queue admits
//     (kBlock) or retries drop counting (kReject) — a saturation probe.
//
// Traffic cycles round-robin over routes x shapes x --unique-frames distinct
// frames, so --cache-entries with unique-frames=1 exercises the bit-exact
// response cache at maximal repetition. Prints per-request latency
// percentiles (p50/p95/p99), achieved FPS, batch occupancy, reject counts,
// per-route counters, and cache hit rates. docs/SERVING.md explains how to
// read them.
#include <chrono>
#include <cstdio>
#include <future>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "cli_args.hpp"
#include "core/hybrid_plan.hpp"
#include "core/sesr_network.hpp"
#include "serve/registry.hpp"
#include "serve/request_queue.hpp"
#include "serve/sharded_server.hpp"
#include "serve_cli.hpp"
#include "tensor/thread_pool.hpp"

namespace {

using namespace sesr;

core::SesrConfig named_config(const std::string& name, std::int64_t scale) {
  if (name == "m3") return core::sesr_m3(scale);
  if (name == "m5") return core::sesr_m5(scale);
  if (name == "m7") return core::sesr_m7(scale);
  if (name == "m11") return core::sesr_m11(scale);
  return core::sesr_xl(scale);
}

int run(const cli::ServeCliConfig& config) {
  ThreadPool::set_global_threads(static_cast<unsigned>(config.threads));
  Rng rng(config.seed);
  serve::NetworkRegistry registry;
  for (const serve::RouteKey& route : config.routes) {
    core::SesrNetwork network(named_config(route.network, route.scale), rng);
    core::SesrInference collapsed(network);
    if (route.precision == core::InferencePrecision::kInt8 ||
        route.precision == core::InferencePrecision::kHybrid) {
      // Deterministic synthetic calibration set (and, for hybrid, plan): the
      // scales travel inside the checkpoint, so every shard replica inherits
      // them bit-exactly.
      Rng calib_rng(config.seed ^ 0xC0FFEEULL);
      std::vector<Tensor> calib;
      for (int i = 0; i < 4; ++i) {
        Tensor frame(1, 48, 48, 1);
        frame.fill_uniform(calib_rng, 0.0F, 1.0F);
        calib.push_back(std::move(frame));
      }
      collapsed.calibrate_int8(calib);
      if (route.precision == core::InferencePrecision::kHybrid) {
        std::vector<Tensor> hr;
        collapsed.set_precision(core::InferencePrecision::kFp32);
        for (const Tensor& frame : calib) hr.push_back(collapsed.upscale(frame));
        for (Tensor& frame : hr) {
          Tensor noise(frame.shape());
          noise.fill_uniform(calib_rng, -0.005F, 0.005F);
          for (std::int64_t i = 0; i < frame.numel(); ++i) frame.raw()[i] += noise.raw()[i];
        }
        core::plan_hybrid_precision(collapsed, calib, hr);
      }
    }
    registry.add(route, collapsed);
  }
  serve::ShardedServer server(registry, config.serve);

  // Pre-generated frames: unique_frames per (route, shape); traffic cycles
  // route-major through the mix so every shard sees every shape.
  struct Stimulus {
    serve::RouteKey route;
    Tensor frame;
  };
  std::vector<Stimulus> stimuli;
  for (const serve::RouteKey& route : config.routes) {
    for (const auto& [h, w] : config.shapes) {
      for (std::int64_t u = 0; u < config.unique_frames; ++u) {
        Tensor frame(1, h, w, 1);
        frame.fill_uniform(rng, 0.0F, 1.0F);
        stimuli.push_back({route, std::move(frame)});
      }
    }
  }

  std::string route_list;
  for (const serve::RouteKey& route : config.routes) {
    if (!route_list.empty()) route_list += ",";
    route_list += serve::route_string(route);
  }
  std::printf(
      "sesr-serve: %s | workers=%d max_batch=%lld delay=%lldus queue=%zu cache=%zu fair=%d\n",
      route_list.c_str(), config.serve.workers, static_cast<long long>(config.serve.max_batch),
      static_cast<long long>(config.serve.max_delay_us), config.serve.queue_capacity,
      config.serve.cache_entries, config.serve.fair_tiles ? 1 : 0);

  std::mt19937_64 arrivals(config.seed ^ 0x9E3779B97F4A7C15ULL);
  std::exponential_distribution<double> inter_arrival(config.qps > 0.0 ? config.qps : 1.0);
  const auto start = std::chrono::steady_clock::now();
  const auto stop_at = config.duration_s > 0.0
                           ? start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                                         std::chrono::duration<double>(config.duration_s))
                           : std::chrono::steady_clock::time_point::max();

  std::vector<std::future<Tensor>> pending;
  auto next_arrival = start;
  std::int64_t submitted = 0;
  for (std::int64_t i = 0; config.duration_s > 0.0 || i < config.frames; ++i) {
    if (std::chrono::steady_clock::now() >= stop_at) break;
    if (config.qps > 0.0) {
      std::this_thread::sleep_until(next_arrival);
      next_arrival += std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(inter_arrival(arrivals)));
    }
    const Stimulus& s = stimuli[static_cast<std::size_t>(i) % stimuli.size()];
    pending.push_back(server.submit(s.route, s.frame));
    ++submitted;
  }
  std::int64_t dropped = 0;
  std::int64_t errors = 0;
  for (auto& f : pending) {
    try {
      f.get();
    } catch (const serve::QueueFullError&) {
      ++dropped;
    } catch (const std::exception& e) {
      if (++errors == 1) std::fprintf(stderr, "request failed: %s\n", e.what());
    }
  }
  const double wall = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  server.shutdown();
  const serve::ShardedStats sharded = server.stats();
  const serve::ServerStats& stats = sharded.total;

  std::printf("submitted %lld  completed %llu  dropped %lld  errors %lld\n",
              static_cast<long long>(submitted),
              static_cast<unsigned long long>(stats.completed), static_cast<long long>(dropped),
              static_cast<long long>(errors));
  std::printf("offered %s  achieved %.1f fps  mean batch %.2f frames (%llu units, %llu tiles)\n",
              config.qps > 0.0 ? (std::to_string(config.qps) + " qps").c_str() : "closed-loop",
              static_cast<double>(stats.completed) / wall, stats.mean_batch_frames,
              static_cast<unsigned long long>(stats.batches),
              static_cast<unsigned long long>(stats.tiles));
  std::printf("latency  p50 %.2f ms  p95 %.2f ms  p99 %.2f ms  max %.2f ms\n", stats.p50_us / 1e3,
              stats.p95_us / 1e3, stats.p99_us / 1e3, stats.max_us / 1e3);
  for (const serve::RouteStats& route : sharded.per_route) {
    std::printf("route %-14s submitted %llu  completed %llu  failed %llu  cache hits %llu\n",
                route.route.c_str(), static_cast<unsigned long long>(route.submitted),
                static_cast<unsigned long long>(route.completed),
                static_cast<unsigned long long>(route.failed),
                static_cast<unsigned long long>(route.cache_hits));
  }
  if (config.serve.cache_entries > 0) {
    const serve::CacheStats& cache = sharded.cache;
    const std::uint64_t probes = cache.hits + cache.misses;
    std::printf("cache    hits %llu/%llu (%.1f%%)  entries %zu/%zu  evictions %llu\n",
                static_cast<unsigned long long>(cache.hits),
                static_cast<unsigned long long>(probes),
                probes > 0 ? 100.0 * static_cast<double>(cache.hits) / static_cast<double>(probes)
                           : 0.0,
                cache.entries, config.serve.cache_entries,
                static_cast<unsigned long long>(cache.evictions));
  }
  return errors == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const cli::Args args(cli::serve_cli_options(), argc, argv);
    return run(cli::parse_serve_cli(args));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sesr-serve: %s\n\n", e.what());
    const cli::Args usage(cli::serve_cli_options(), 1, argv);
    usage.usage("sesr-serve", "synthetic-traffic load generator for the batched eval server");
    return 2;
  }
}
