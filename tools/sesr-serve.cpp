// sesr-serve — synthetic-traffic load generator AND TCP front end for the
// batched eval server.
//
// Three modes:
//
//   in-process (default): spins up a ShardedServer over one or more freshly
//     initialized collapsed SESR networks (--networks m5:2,m11:2:fp16; a
//     single --net/--scale route by default) and drives it directly:
//       open loop  (--qps > 0): Poisson arrivals at the requested rate — the
//         honest way to measure tail latency under a fixed offered load.
//       closed loop (--qps 0): submits as fast as the bounded queue admits.
//   --listen PORT: same server, exposed on 127.0.0.1:PORT via the
//     length-prefixed wire protocol (serve/net). --slo-p99-ms arms SLO
//     admission (shed / degrade under overload). Runs until --duration-s or
//     SIGINT/SIGTERM, then drains gracefully: every accepted request
//     completes before threads join.
//   --connect HOST:PORT: client-mode load generator over the real socket
//     path: --clients closed-loop connections (Poisson-paced when --qps > 0),
//     per-request --deadline-ms, and --chaos malformed|disconnect fault
//     injection for resilience checks.
//
// Traffic cycles round-robin over routes x shapes x --unique-frames distinct
// frames, so --cache-entries with unique-frames=1 exercises the bit-exact
// response cache at maximal repetition. Prints per-request latency
// percentiles (p50/p95/p99), achieved FPS, batch occupancy, reject counts,
// per-route counters, and cache hit rates. docs/SERVING.md explains how to
// read them.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <future>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "cli_args.hpp"
#include "core/hybrid_plan.hpp"
#include "core/sesr_network.hpp"
#include "data/video.hpp"
#include "serve/net/client.hpp"
#include "serve/net/server.hpp"
#include "serve/registry.hpp"
#include "serve/request_queue.hpp"
#include "serve/sharded_server.hpp"
#include "serve/stats.hpp"
#include "serve_cli.hpp"
#include "tensor/thread_pool.hpp"

namespace {

using namespace sesr;

volatile std::sig_atomic_t g_stop = 0;
void handle_stop(int) { g_stop = 1; }

core::SesrConfig named_config(const std::string& name, std::int64_t scale) {
  if (name == "m3") return core::sesr_m3(scale);
  if (name == "m5") return core::sesr_m5(scale);
  if (name == "m7") return core::sesr_m7(scale);
  if (name == "m11") return core::sesr_m11(scale);
  return core::sesr_xl(scale);
}

serve::NetworkRegistry build_registry(const cli::ServeCliConfig& config, std::uint64_t seed) {
  Rng rng(seed);
  serve::NetworkRegistry registry;
  for (const serve::RouteKey& route : config.routes) {
    core::SesrNetwork network(named_config(route.network, route.scale), rng);
    core::SesrInference collapsed(network);
    if (route.precision == core::InferencePrecision::kInt8 ||
        route.precision == core::InferencePrecision::kHybrid) {
      // Deterministic synthetic calibration set (and, for hybrid, plan): the
      // scales travel inside the checkpoint, so every shard replica inherits
      // them bit-exactly.
      Rng calib_rng(seed ^ 0xC0FFEEULL);
      std::vector<Tensor> calib;
      for (int i = 0; i < 4; ++i) {
        Tensor frame(1, 48, 48, 1);
        frame.fill_uniform(calib_rng, 0.0F, 1.0F);
        calib.push_back(std::move(frame));
      }
      collapsed.calibrate_int8(calib);
      if (route.precision == core::InferencePrecision::kHybrid) {
        std::vector<Tensor> hr;
        collapsed.set_precision(core::InferencePrecision::kFp32);
        for (const Tensor& frame : calib) hr.push_back(collapsed.upscale(frame));
        for (Tensor& frame : hr) {
          Tensor noise(frame.shape());
          noise.fill_uniform(calib_rng, -0.005F, 0.005F);
          for (std::int64_t i = 0; i < frame.numel(); ++i) frame.raw()[i] += noise.raw()[i];
        }
        core::plan_hybrid_precision(collapsed, calib, hr);
      }
    }
    registry.add(route, collapsed);
  }
  return registry;
}

std::string route_list_string(const cli::ServeCliConfig& config) {
  std::string list;
  for (const serve::RouteKey& route : config.routes) {
    if (!list.empty()) list += ",";
    list += serve::route_string(route);
  }
  return list;
}

void print_server_stats(const cli::ServeCliConfig& config, const serve::ShardedStats& sharded) {
  const serve::ServerStats& stats = sharded.total;
  std::printf("latency  p50 %.2f ms  p95 %.2f ms  p99 %.2f ms  max %.2f ms\n", stats.p50_us / 1e3,
              stats.p95_us / 1e3, stats.p99_us / 1e3, stats.max_us / 1e3);
  if (stats.shed + stats.degraded > 0) {
    std::printf("admission  shed %llu  degraded %llu (two-stage %llu)\n",
                static_cast<unsigned long long>(stats.shed),
                static_cast<unsigned long long>(stats.degraded),
                static_cast<unsigned long long>(stats.two_stage));
  }
  for (const serve::RouteStats& route : sharded.per_route) {
    std::printf(
        "route %-14s submitted %llu  completed %llu  failed %llu  cache hits %llu  ewma %.2f ms  "
        "peak arena %.1f KiB\n",
        route.route.c_str(), static_cast<unsigned long long>(route.submitted),
        static_cast<unsigned long long>(route.completed),
        static_cast<unsigned long long>(route.failed),
        static_cast<unsigned long long>(route.cache_hits), route.service_ewma_us / 1e3,
        static_cast<double>(route.peak_activation_bytes) / 1024.0);
  }
  if (stats.video_frames > 0) {
    const std::uint64_t tiles = stats.video_tiles_reused + stats.video_tiles_recomputed;
    std::printf("video    frames %llu (delta %llu)  tiles reused %llu/%llu (%.1f%%)  "
                "sessions %zu  evictions %llu\n",
                static_cast<unsigned long long>(stats.video_frames),
                static_cast<unsigned long long>(stats.video_delta_frames),
                static_cast<unsigned long long>(stats.video_tiles_reused),
                static_cast<unsigned long long>(tiles),
                tiles > 0 ? 100.0 * static_cast<double>(stats.video_tiles_reused) /
                                static_cast<double>(tiles)
                          : 0.0,
                sharded.video.sessions,
                static_cast<unsigned long long>(sharded.video.evictions));
  }
  if (config.serve.cache_entries > 0) {
    const serve::CacheStats& cache = sharded.cache;
    const std::uint64_t probes = cache.hits + cache.misses;
    std::printf("cache    hits %llu/%llu (%.1f%%)  entries %zu/%zu  evictions %llu\n",
                static_cast<unsigned long long>(cache.hits),
                static_cast<unsigned long long>(probes),
                probes > 0 ? 100.0 * static_cast<double>(cache.hits) / static_cast<double>(probes)
                           : 0.0,
                cache.entries, config.serve.cache_entries,
                static_cast<unsigned long long>(cache.evictions));
  }
}

// ----------------------------------------------------------- video sequences

// The replayed session for --video: a seeded synthetic sequence at the first
// --shapes entry. `salt` decorrelates sessions (one per route in-process, one
// per connection in client mode) while keeping every run replayable from
// --seed alone.
std::vector<Tensor> session_sequence(const cli::ServeCliConfig& config, std::int64_t frames,
                                     std::uint64_t salt) {
  data::VideoSequenceOptions vopts;
  vopts.pattern = data::parse_video_pattern(config.video);
  vopts.frames = frames;
  vopts.h = config.shapes.front().first;
  vopts.w = config.shapes.front().second;
  return data::synthesize_video(vopts, config.seed * 7919 + salt);
}

// ------------------------------------------------------------ in-process mode

// --video replay: one closed-loop session per route, consecutive seqs, every
// frame's future awaited before the next submit so the tile-delta path sees
// its predecessor published. Reports delta engagement and tile reuse next to
// the usual throughput numbers.
int run_local_video(const cli::ServeCliConfig& config) {
  ThreadPool::set_global_threads(static_cast<unsigned>(config.threads));
  const serve::NetworkRegistry registry = build_registry(config, config.seed);
  serve::ShardedServer server(registry, config.serve);
  const std::vector<Tensor> frames = session_sequence(config, config.frames, 0);

  std::printf("sesr-serve: %s | video=%s frames=%lld %lldx%lld | workers=%d sessions=%zu\n",
              route_list_string(config).c_str(), config.video.c_str(),
              static_cast<long long>(config.frames),
              static_cast<long long>(config.shapes.front().first),
              static_cast<long long>(config.shapes.front().second), config.serve.workers,
              config.serve.video_sessions);

  std::atomic<std::uint64_t> delta_frames{0};
  std::atomic<std::int64_t> errors{0};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> producers;
  for (std::size_t r = 0; r < config.routes.size(); ++r) {
    producers.emplace_back([&, r] {
      for (std::size_t i = 0; i < frames.size(); ++i) {
        serve::VideoOptions video;
        video.session_id = r + 1;
        video.seq = i + 1;
        try {
          serve::AdmitResult admitted = server.submit_video(config.routes[r], frames[i], video);
          if (admitted.delta) delta_frames.fetch_add(1, std::memory_order_relaxed);
          admitted.future.get();
        } catch (const std::exception& e) {
          if (errors.fetch_add(1, std::memory_order_relaxed) == 0) {
            std::fprintf(stderr, "video frame failed: %s\n", e.what());
          }
        }
      }
    });
  }
  for (std::thread& t : producers) t.join();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  server.shutdown();

  const serve::ShardedStats sharded = server.stats();
  std::printf("video replay: %llu frames in %.2fs (%.1f fps)  delta engaged %llu/%llu\n",
              static_cast<unsigned long long>(sharded.total.video_frames), wall,
              static_cast<double>(sharded.total.video_frames) / wall,
              static_cast<unsigned long long>(delta_frames.load()),
              static_cast<unsigned long long>(sharded.total.video_frames));
  print_server_stats(config, sharded);
  return errors.load() == 0 ? 0 : 1;
}

int run_local(const cli::ServeCliConfig& config) {
  if (config.video != "none") return run_local_video(config);
  ThreadPool::set_global_threads(static_cast<unsigned>(config.threads));
  Rng rng(config.seed);
  const serve::NetworkRegistry registry = build_registry(config, config.seed);
  serve::ShardedServer server(registry, config.serve);

  // Pre-generated frames: unique_frames per (route, shape); traffic cycles
  // route-major through the mix so every shard sees every shape.
  struct Stimulus {
    serve::RouteKey route;
    Tensor frame;
  };
  std::vector<Stimulus> stimuli;
  for (const serve::RouteKey& route : config.routes) {
    for (const auto& [h, w] : config.shapes) {
      for (std::int64_t u = 0; u < config.unique_frames; ++u) {
        Tensor frame(1, h, w, 1);
        frame.fill_uniform(rng, 0.0F, 1.0F);
        stimuli.push_back({route, std::move(frame)});
      }
    }
  }

  std::printf(
      "sesr-serve: %s | workers=%d max_batch=%lld delay=%lldus queue=%zu cache=%zu fair=%d\n",
      route_list_string(config).c_str(), config.serve.workers,
      static_cast<long long>(config.serve.max_batch),
      static_cast<long long>(config.serve.max_delay_us), config.serve.queue_capacity,
      config.serve.cache_entries, config.serve.fair_tiles ? 1 : 0);

  std::mt19937_64 arrivals(config.seed ^ 0x9E3779B97F4A7C15ULL);
  std::exponential_distribution<double> inter_arrival(config.qps > 0.0 ? config.qps : 1.0);
  const auto start = std::chrono::steady_clock::now();
  const auto stop_at = config.duration_s > 0.0
                           ? start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                                         std::chrono::duration<double>(config.duration_s))
                           : std::chrono::steady_clock::time_point::max();

  std::vector<std::future<Tensor>> pending;
  auto next_arrival = start;
  std::int64_t submitted = 0;
  for (std::int64_t i = 0; config.duration_s > 0.0 || i < config.frames; ++i) {
    if (std::chrono::steady_clock::now() >= stop_at) break;
    if (config.qps > 0.0) {
      std::this_thread::sleep_until(next_arrival);
      next_arrival += std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(inter_arrival(arrivals)));
    }
    const Stimulus& s = stimuli[static_cast<std::size_t>(i) % stimuli.size()];
    pending.push_back(server.submit(s.route, s.frame));
    ++submitted;
  }
  std::int64_t dropped = 0;
  std::int64_t errors = 0;
  for (auto& f : pending) {
    try {
      f.get();
    } catch (const serve::QueueFullError&) {
      ++dropped;
    } catch (const std::exception& e) {
      if (++errors == 1) std::fprintf(stderr, "request failed: %s\n", e.what());
    }
  }
  const double wall = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  server.shutdown();
  const serve::ShardedStats sharded = server.stats();
  const serve::ServerStats& stats = sharded.total;

  std::printf("submitted %lld  completed %llu  dropped %lld  errors %lld\n",
              static_cast<long long>(submitted),
              static_cast<unsigned long long>(stats.completed), static_cast<long long>(dropped),
              static_cast<long long>(errors));
  std::printf("offered %s  achieved %.1f fps  mean batch %.2f frames (%llu units, %llu tiles)\n",
              config.qps > 0.0 ? (std::to_string(config.qps) + " qps").c_str() : "closed-loop",
              static_cast<double>(stats.completed) / wall, stats.mean_batch_frames,
              static_cast<unsigned long long>(stats.batches),
              static_cast<unsigned long long>(stats.tiles));
  print_server_stats(config, sharded);
  return errors == 0 ? 0 : 1;
}

// ---------------------------------------------------------------- server mode

int run_listen(const cli::ServeCliConfig& config) {
  ThreadPool::set_global_threads(static_cast<unsigned>(config.threads));
  const serve::NetworkRegistry registry = build_registry(config, config.seed);
  serve::ShardedServer server(registry, config.serve);
  serve::net::NetServerOptions net_options;
  net_options.port = static_cast<std::uint16_t>(config.listen_port);
  net_options.bind_address = config.bind_address;
  net_options.auth_token = config.auth_token;
  net_options.io_shards = static_cast<std::size_t>(config.io_shards);
  serve::net::NetServer net(server, net_options);

  std::signal(SIGINT, handle_stop);
  std::signal(SIGTERM, handle_stop);
  // The "listening on" line is the readiness handshake for scripts (CI greps
  // it for the port); keep it first and flushed.
  std::printf("sesr-serve: listening on %s:%u | routes %s | io-shards %lld%s | slo p99 %.1f ms\n",
              config.bind_address.c_str(), static_cast<unsigned>(net.port()),
              route_list_string(config).c_str(), static_cast<long long>(config.io_shards),
              config.auth_token.empty() ? "" : " | auth on", config.slo_p99_ms);
  std::fflush(stdout);

  const auto start = std::chrono::steady_clock::now();
  const auto stop_at = config.duration_s > 0.0
                           ? start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                                         std::chrono::duration<double>(config.duration_s))
                           : std::chrono::steady_clock::time_point::max();
  while (g_stop == 0 && std::chrono::steady_clock::now() < stop_at) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::printf("sesr-serve: draining\n");
  std::fflush(stdout);
  // Order matters: stop the socket front end first (flushes every in-flight
  // response), then drain and stop the inference server.
  net.shutdown();
  server.begin_drain();
  server.shutdown();

  const serve::net::NetStats ns = net.stats();
  std::printf("net  conns %llu (rejected %llu)  requests %llu (http %llu)  responses %llu  "
              "malformed %llu  disconnects %llu  timeouts %llu  auth-failures %llu  "
              "accept-errors %llu\n",
              static_cast<unsigned long long>(ns.connections_accepted),
              static_cast<unsigned long long>(ns.connections_rejected),
              static_cast<unsigned long long>(ns.requests),
              static_cast<unsigned long long>(ns.http_requests),
              static_cast<unsigned long long>(ns.responses),
              static_cast<unsigned long long>(ns.malformed),
              static_cast<unsigned long long>(ns.disconnects),
              static_cast<unsigned long long>(ns.timeouts),
              static_cast<unsigned long long>(ns.auth_failures),
              static_cast<unsigned long long>(ns.accept_errors));
  for (std::size_t i = 0; i < ns.shards.size(); ++i) {
    const serve::net::NetShardStats& shard = ns.shards[i];
    std::printf("net  shard %zu  conns %llu  requests %llu  responses %llu\n", i,
                static_cast<unsigned long long>(shard.connections_accepted),
                static_cast<unsigned long long>(shard.requests),
                static_cast<unsigned long long>(shard.responses));
  }
  print_server_stats(config, server.stats());
  return 0;
}

// ---------------------------------------------------------------- client mode

Tensor client_frame(std::uint64_t seed, std::int64_t h, std::int64_t w) {
  Rng rng(seed);
  Tensor frame(1, h, w, 1);
  frame.fill_uniform(rng, 0.0F, 1.0F);
  return frame;
}

int run_chaos(const cli::ServeCliConfig& config) {
  auto make_client = [&config] {
    serve::net::NetClient client(config.connect_host, config.connect_port);
    if (!config.auth_token.empty()) client.set_auth_token(config.auth_token);
    return client;
  };
  const std::string route = serve::route_string(config.routes.front());
  const Tensor frame = client_frame(config.seed, config.shapes.front().first,
                                    config.shapes.front().second);
  if (config.chaos == "malformed") {
    serve::net::NetClient bad = make_client();
    bad.send_raw({0xDE, 0xAD, 0xBE, 0xEF, 0x08, 0x00, 0x00, 0x00});
    const auto response = bad.recv_response();
    if (!response || response->status != serve::net::Status::kBadRequest) {
      std::fprintf(stderr, "chaos malformed: expected kBadRequest, got %s\n",
                   response ? std::to_string(static_cast<int>(response->status)).c_str()
                            : "connection close");
      return 1;
    }
    if (bad.recv_response() != std::nullopt) {
      std::fprintf(stderr, "chaos malformed: server kept a poisoned connection open\n");
      return 1;
    }
  } else if (config.video != "none") {
    // Mid-session disconnect: the video session is keyed by (route,
    // session_id), not by the connection, so its tile-delta state must
    // survive a client that vanishes mid-frame. Frames 1-2 over one
    // connection (frame 2 must take the delta path), then half of frame 3
    // and a hard disconnect; the session resumes on a fresh connection at
    // seq 3 and must still delta against frame 2's snapshot.
    const std::vector<Tensor> frames = session_sequence(config, 3, 42);
    const std::uint64_t session_id = 7001;
    serve::net::NetClient first = make_client();
    const serve::net::WireResponse r1 = first.upscale_video(route, frames[0], session_id, 1);
    const serve::net::WireResponse r2 = first.upscale_video(route, frames[1], session_id, 2);
    if (r1.status != serve::net::Status::kOk || r2.status != serve::net::Status::kOk ||
        (r2.flags & serve::net::kFlagDeltaReuse) == 0) {
      std::fprintf(stderr, "chaos disconnect(video): priming frames failed (delta flag %d)\n",
                   static_cast<int>(r2.flags));
      return 1;
    }
    serve::net::WireRequest torn;
    torn.id = 3;
    torn.video = true;
    torn.session_id = session_id;
    torn.frame_seq = 3;
    torn.route = route;
    torn.h = frames[2].shape().h();
    torn.w = frames[2].shape().w();
    torn.pixels = serve::net::frame_to_pixels(frames[2]);
    std::vector<std::uint8_t> bytes = serve::net::encode_request(torn);
    bytes.resize(bytes.size() / 2);  // half of frame 3, then vanish
    first.send_raw(bytes);
    first.disconnect();
    serve::net::NetClient second = make_client();
    const serve::net::WireResponse r3 = second.upscale_video(route, frames[2], session_id, 3);
    if (r3.status != serve::net::Status::kOk ||
        (r3.flags & serve::net::kFlagDeltaReuse) == 0) {
      std::fprintf(stderr,
                   "chaos disconnect(video): resumed frame not served by the delta path "
                   "(status %d flags %d)\n",
                   static_cast<int>(r3.status), static_cast<int>(r3.flags));
      return 1;
    }
    std::printf("chaos disconnect(video): session survived a mid-frame disconnect; "
                "seq 3 delta-served on %s\n",
                r3.route.c_str());
    return 0;
  } else {  // disconnect
    serve::net::WireRequest request;
    request.id = 1;
    request.route = route;
    request.h = frame.shape().h();
    request.w = frame.shape().w();
    request.pixels = serve::net::frame_to_pixels(frame);
    std::vector<std::uint8_t> bytes = serve::net::encode_request(request);
    bytes.resize(bytes.size() / 2);  // half a request, then vanish
    serve::net::NetClient half = make_client();
    half.send_raw(bytes);
    half.disconnect();
  }
  // Either way the server must still answer a clean connection.
  serve::net::NetClient probe = make_client();
  const serve::net::WireResponse response = probe.upscale(route, frame);
  if (response.status != serve::net::Status::kOk) {
    std::fprintf(stderr, "chaos %s: follow-up request failed with status %d (%s)\n",
                 config.chaos.c_str(), static_cast<int>(response.status),
                 response.message.c_str());
    return 1;
  }
  std::printf("chaos %s: server survived; follow-up request served on %s\n",
              config.chaos.c_str(), response.route.c_str());
  return 0;
}

int run_client(const cli::ServeCliConfig& config) {
  if (config.chaos != "none") return run_chaos(config);

  struct Stimulus {
    std::string route;
    Tensor frame;
  };
  std::vector<Stimulus> stimuli;
  Rng rng(config.seed);
  for (const serve::RouteKey& route : config.routes) {
    for (const auto& [h, w] : config.shapes) {
      for (std::int64_t u = 0; u < config.unique_frames; ++u) {
        Tensor frame(1, h, w, 1);
        frame.fill_uniform(rng, 0.0F, 1.0F);
        stimuli.push_back({serve::route_string(route), std::move(frame)});
      }
    }
  }

  const auto deadline_us = static_cast<std::uint32_t>(config.deadline_ms * 1000.0);
  const std::int64_t frames_per_client =
      config.duration_s > 0.0 ? 0 : std::max<std::int64_t>(1, config.frames / config.clients);
  const auto start = std::chrono::steady_clock::now();
  const auto stop_at = config.duration_s > 0.0
                           ? start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                                         std::chrono::duration<double>(config.duration_s))
                           : std::chrono::steady_clock::time_point::max();

  std::atomic<std::uint64_t> ok{0}, overloaded{0}, shutting_down{0}, degraded{0}, errors{0};
  std::atomic<std::uint64_t> video_delta{0};
  std::mutex latency_mutex;
  std::vector<double> latency_us;

  auto worker = [&](std::int64_t index) {
    try {
      serve::net::NetClient client(config.connect_host, config.connect_port);
      if (!config.auth_token.empty()) client.set_auth_token(config.auth_token);
      std::mt19937_64 arrivals(config.seed ^ (0x9E3779B97F4A7C15ULL + index));
      const double rate = config.qps > 0.0 ? config.qps / static_cast<double>(config.clients) : 0;
      std::exponential_distribution<double> inter_arrival(rate > 0.0 ? rate : 1.0);
      auto next_arrival = std::chrono::steady_clock::now();
      std::vector<double> local_latency;
      // --video: this connection replays one session (its own seeded
      // sequence, consecutive seqs). In duration mode the sequence cycles;
      // the wrap reads as a scene cut and simply costs one full re-upscale.
      std::vector<Tensor> session_frames;
      std::string session_route;
      if (config.video != "none") {
        session_frames = session_sequence(
            config, frames_per_client == 0 ? config.frames : frames_per_client,
            static_cast<std::uint64_t>(index) + 1);
        session_route = serve::route_string(
            config.routes[static_cast<std::size_t>(index) % config.routes.size()]);
      }
      for (std::int64_t i = 0; frames_per_client == 0 || i < frames_per_client; ++i) {
        if (std::chrono::steady_clock::now() >= stop_at) break;
        if (rate > 0.0) {
          std::this_thread::sleep_until(next_arrival);
          next_arrival += std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(inter_arrival(arrivals)));
        }
        const Stimulus& s =
            stimuli[static_cast<std::size_t>(index + i * config.clients) % stimuli.size()];
        const auto sent = std::chrono::steady_clock::now();
        const serve::net::WireResponse response =
            config.video != "none"
                ? client.upscale_video(
                      session_route,
                      session_frames[static_cast<std::size_t>(i) % session_frames.size()],
                      5000 + static_cast<std::uint64_t>(index),
                      static_cast<std::uint32_t>(i + 1), deadline_us)
                : client.upscale(s.route, s.frame, deadline_us);
        if (response.status == serve::net::Status::kOk &&
            (response.flags & serve::net::kFlagDeltaReuse) != 0) {
          video_delta.fetch_add(1, std::memory_order_relaxed);
        }
        const double us = std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - sent)
                              .count();
        switch (response.status) {
          case serve::net::Status::kOk:
            ok.fetch_add(1, std::memory_order_relaxed);
            local_latency.push_back(us);
            if (response.flags & serve::net::kFlagDegraded) {
              degraded.fetch_add(1, std::memory_order_relaxed);
            }
            break;
          case serve::net::Status::kOverloaded:
            overloaded.fetch_add(1, std::memory_order_relaxed);
            // Closed-loop clients back off on a typed overload answer, as in
            // the bench's SLO sweep: an immediate retry busy-spins on the
            // admission check and steals the CPU the workers need to clear
            // the very overload being reported. Staggered per client so the
            // herd does not re-synchronize. Open loop keeps its arrival
            // process — shed-and-continue is the behavior being measured.
            if (rate <= 0.0) {
              std::this_thread::sleep_for(std::chrono::milliseconds(4 + index));
            }
            break;
          case serve::net::Status::kShuttingDown:
            shutting_down.fetch_add(1, std::memory_order_relaxed);
            break;
          default:
            errors.fetch_add(1, std::memory_order_relaxed);
            break;
        }
      }
      std::lock_guard<std::mutex> lock(latency_mutex);
      latency_us.insert(latency_us.end(), local_latency.begin(), local_latency.end());
    } catch (const std::exception& e) {
      errors.fetch_add(1, std::memory_order_relaxed);
      std::fprintf(stderr, "client %lld: %s\n", static_cast<long long>(index), e.what());
    }
  };

  std::vector<std::thread> clients;
  for (std::int64_t c = 0; c < config.clients; ++c) clients.emplace_back(worker, c);
  for (std::thread& t : clients) t.join();

  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  const std::uint64_t completed = ok.load();
  std::printf("client: %llu ok (%0.1f fps)  %llu overloaded  %llu shutting-down  %llu degraded  "
              "%llu errors\n",
              static_cast<unsigned long long>(completed),
              wall > 0 ? static_cast<double>(completed) / wall : 0.0,
              static_cast<unsigned long long>(overloaded.load()),
              static_cast<unsigned long long>(shutting_down.load()),
              static_cast<unsigned long long>(degraded.load()),
              static_cast<unsigned long long>(errors.load()));
  if (config.video != "none") {
    std::printf("client video: %llu/%llu frames served by the tile-delta path\n",
                static_cast<unsigned long long>(video_delta.load()),
                static_cast<unsigned long long>(completed));
  }
  std::printf("client latency  p50 %.2f ms  p95 %.2f ms  p99 %.2f ms\n",
              serve::percentile(latency_us, 50.0) / 1e3, serve::percentile(latency_us, 95.0) / 1e3,
              serve::percentile(latency_us, 99.0) / 1e3);
  return errors.load() == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const cli::Args args(cli::serve_cli_options(), argc, argv);
    const cli::ServeCliConfig config = cli::parse_serve_cli(args);
    if (config.listen_port >= 0) return run_listen(config);
    if (!config.connect_host.empty()) return run_client(config);
    return run_local(config);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sesr-serve: %s\n\n", e.what());
    const cli::Args usage(cli::serve_cli_options(), 1, argv);
    usage.usage("sesr-serve", "load generator and TCP front end for the batched eval server");
    return 2;
  }
}
