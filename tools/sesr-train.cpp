// sesr_train — train an SESR configuration on the synthetic corpus and write
// both the expanded (resumable) and collapsed (deployable) checkpoints.
//
//   sesr_train --m=5 --f=16 --scale=2 --steps=500 --out=/tmp/model
//   sesr_train --m=11 --f=32 --hardware     # ReLU + no input residual
#include <cstdio>
#include <stdexcept>

#include "cli_args.hpp"
#include "core/sesr_inference.hpp"
#include "core/sesr_network.hpp"
#include "data/dataset.hpp"
#include "metrics/psnr.hpp"
#include "train/trainer.hpp"

using namespace sesr;

int main(int argc, char** argv) {
  cli::Args args(
      {
          {"m", "5", "number of 3x3 linear blocks"},
          {"f", "16", "feature channels"},
          {"scale", "2", "upscaling factor (2 or 4)"},
          {"expand", "256", "expansion width p inside linear blocks"},
          {"steps", "400", "training steps"},
          {"batch", "4", "batch size"},
          {"crop", "16", "LR crop size"},
          {"lr", "5e-4", "Adam learning rate"},
          {"images", "16", "synthetic corpus size"},
          {"seed", "1", "weight-init seed"},
          {"out", "sesr_model", "output checkpoint prefix"},
          {"hardware", "", "train the hardware variant (ReLU, no input residual)"},
          {"help", "", "show this help"},
      },
      argc, argv);
  if (args.get_flag("help")) {
    args.usage("sesr_train", "train SESR and export expanded + collapsed checkpoints");
    return 0;
  }

  try {
    core::SesrConfig cfg;
    cfg.m = args.get_int("m");
    cfg.f = args.get_int("f");
    cfg.scale = args.get_int("scale");
    cfg.expand = args.get_int("expand");
    if (args.get_flag("hardware")) cfg = core::hardware_variant(cfg);

    Rng data_rng(0xD112'0001);
    data::SrDataset corpus = data::SrDataset::synthetic_corpus(args.get_int("images"), 64, 64,
                                                               cfg.scale, data_rng);
    Rng model_rng(static_cast<std::uint64_t>(args.get_int("seed")));
    core::SesrNetwork net(cfg, model_rng);
    std::printf("training %s (%lld collapsed params) for %lld steps\n", net.name().c_str(),
                static_cast<long long>(net.collapsed_parameter_count()),
                static_cast<long long>(args.get_int("steps")));

    const float lr = static_cast<float>(args.get_double("lr"));
    train::Adam adam(lr);
    train::ConstantLr schedule(lr);
    train::Trainer trainer(net, adam, schedule, train::l1_loss);
    Rng batch_rng(7);
    train::TrainOptions options;
    options.steps = args.get_int("steps");
    options.log_every = options.steps >= 10 ? options.steps / 10 : 1;
    trainer.run(
        [&](std::int64_t) {
          return corpus.sample_batch(args.get_int("batch"), args.get_int("crop"), batch_rng);
        },
        options);

    double psnr = 0.0;
    const std::size_t eval_n = std::min<std::size_t>(4, corpus.size());
    for (std::size_t i = 0; i < eval_n; ++i) {
      auto [lr_img, hr_img] = corpus.image_pair(i);
      psnr += metrics::psnr_shaved(net.predict(lr_img), hr_img, cfg.scale);
    }
    std::printf("validation PSNR: %.2f dB over %zu images\n", psnr / static_cast<double>(eval_n),
                eval_n);

    const std::string prefix = args.get("out");
    save_tensors(prefix + ".expanded.ckpt", nn::parameters_to_map(net.parameters()));
    core::SesrInference deployed(net);
    save_tensors(prefix + ".collapsed.ckpt", deployed.to_tensor_map());
    std::printf("wrote %s.expanded.ckpt and %s.collapsed.ckpt\n", prefix.c_str(), prefix.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
