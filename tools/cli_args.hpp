// Minimal command-line argument parser for the tools/ binaries.
//
// Supports --key=value and --key value forms plus bare --flag booleans.
// Unknown keys are an error (catches typos); every tool prints its option
// table via usage().
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace sesr::cli {

class Args {
 public:
  struct Option {
    std::string key;
    std::string default_value;  // empty = boolean flag
    std::string help;
  };

  Args(std::vector<Option> options, int argc, char** argv) : options_(std::move(options)) {
    for (const Option& o : options_) values_[o.key] = o.default_value;
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) positional_.push_back(std::move(arg));
      else {
        arg = arg.substr(2);
        std::string key;
        std::string value;
        const auto eq = arg.find('=');
        if (eq != std::string::npos) {
          key = arg.substr(0, eq);
          value = arg.substr(eq + 1);
        } else {
          key = arg;
          const Option* opt = find(key);
          if (opt != nullptr && !opt->default_value.empty() && i + 1 < argc) {
            value = argv[++i];
          } else {
            value = "1";  // boolean flag
          }
        }
        if (find(key) == nullptr) throw std::invalid_argument("unknown option --" + key);
        values_[key] = value;
      }
    }
  }

  std::string get(const std::string& key) const { return values_.at(key); }
  std::int64_t get_int(const std::string& key) const { return std::stoll(values_.at(key)); }
  double get_double(const std::string& key) const { return std::stod(values_.at(key)); }
  bool get_flag(const std::string& key) const {
    const std::string v = values_.at(key);
    return !v.empty() && v != "0" && v != "false";
  }
  const std::vector<std::string>& positional() const { return positional_; }

  void usage(const char* program, const char* summary) const {
    std::printf("%s — %s\n\noptions:\n", program, summary);
    for (const Option& o : options_) {
      std::printf("  --%-18s %s%s%s\n", o.key.c_str(), o.help.c_str(),
                  o.default_value.empty() ? "" : "  [default: ",
                  o.default_value.empty() ? "" : (o.default_value + "]").c_str());
    }
  }

 private:
  const Option* find(const std::string& key) const {
    for (const Option& o : options_) {
      if (o.key == key) return &o;
    }
    return nullptr;
  }

  std::vector<Option> options_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace sesr::cli
