// Reproduces Fig. 3: the efficient training implementation. Two parts:
//  (1) Analytic forward-pass MACs for the paper's exact configuration
//      (SESR-M5, batch 32, 64x64 crops): expanded space = 41.77 GMACs,
//      collapse-then-narrow-forward = 1.84 GMACs.
//  (2) Measured wall-clock of one training step in both modes (at a reduced
//      geometry so the expanded run stays tractable on one core), verifying
//      the speedup materializes, not just the operation counts.
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "core/paper_reference.hpp"
#include "core/sesr_network.hpp"
#include "core/training_macs.hpp"
#include "train/optimizer.hpp"

using namespace sesr;

namespace {
double measure_step_ms(core::SesrNetwork& net, const Tensor& x, const Tensor& target,
                       int steps) {
  train::Adam adam(5e-4F);
  // Warm-up step excluded from timing.
  {
    nn::zero_gradients(net.parameters());
    Tensor y = net.forward(x, true);
    auto loss = train::l1_loss(y, target);
    net.backward(loss.grad);
    adam.step(net.parameters());
  }
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < steps; ++i) {
    nn::zero_gradients(net.parameters());
    Tensor y = net.forward(x, true);
    auto loss = train::l1_loss(y, target);
    net.backward(loss.grad);
    adam.step(net.parameters());
  }
  const double dt =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return dt / steps * 1e3;
}
}  // namespace

int main() {
  bench::print_header("Fig. 3 — efficient (collapsed-forward) training",
                      "Bhardwaj et al., MLSys 2022, Figure 3 / Section 3.3");

  // Part 1: the paper's exact numbers, analytically.
  const core::TrainingMacReport paper_cfg = core::training_forward_macs(core::sesr_m5(2), 32, 64, 64);
  std::printf("SESR-M5, batch 32, 64x64 crops (paper's configuration):\n");
  std::printf("  expanded-space forward:        %7.2f GMACs   (paper %.2f)\n",
              static_cast<double>(paper_cfg.expanded_forward_macs) * 1e-9,
              core::paper::kFig3ExpandedGMacs);
  std::printf("  collapse + narrow forward:     %7.2f GMACs   (paper %.2f)\n",
              static_cast<double>(paper_cfg.efficient_total()) * 1e-9,
              core::paper::kFig3CollapsedGMacs);
  std::printf("    of which Algorithm-1 collapse: %5.3f GMACs (kernels are tiny)\n",
              static_cast<double>(paper_cfg.collapse_macs) * 1e-9);
  std::printf("  analytic speedup: %.1fx\n\n", paper_cfg.speedup());

  // Part 2: measured wall-clock at reduced geometry.
  const std::int64_t batch = bench::fast_mode() ? 2 : 4;
  const std::int64_t crop = bench::fast_mode() ? 16 : 24;
  const int steps = bench::fast_mode() ? 2 : 4;
  Rng xrng(3);
  Tensor x(batch, crop, crop, 1);
  x.fill_uniform(xrng, 0.0F, 1.0F);
  Tensor target(batch, crop * 2, crop * 2, 1);
  target.fill_uniform(xrng, 0.0F, 1.0F);

  core::SesrConfig expanded_cfg = core::sesr_m5(2);
  expanded_cfg.mode = core::BlockMode::kExpanded;
  core::SesrConfig collapsed_cfg = core::sesr_m5(2);
  collapsed_cfg.mode = core::BlockMode::kCollapsedForward;
  Rng rng_a(1);
  Rng rng_b(1);
  core::SesrNetwork expanded(expanded_cfg, rng_a);
  core::SesrNetwork collapsed(collapsed_cfg, rng_b);

  const double ms_expanded = measure_step_ms(expanded, x, target, steps);
  const double ms_collapsed = measure_step_ms(collapsed, x, target, steps);
  const core::TrainingMacReport local = core::training_forward_macs(core::sesr_m5(2), batch, crop, crop);
  std::printf("measured (batch %lld, %lldx%lld crops, full fwd+bwd+Adam step):\n",
              static_cast<long long>(batch), static_cast<long long>(crop),
              static_cast<long long>(crop));
  std::printf("  expanded-space step:  %8.1f ms   (forward %7.2f GMACs)\n", ms_expanded,
              static_cast<double>(local.expanded_forward_macs) * 1e-9);
  std::printf("  efficient step:       %8.1f ms   (forward %7.2f GMACs)\n", ms_collapsed,
              static_cast<double>(local.efficient_total()) * 1e-9);
  std::printf("  measured speedup: %.1fx (forward-MAC ratio %.1fx; the measured gain can\n"
              "  exceed the forward ratio because the backward pass also shrinks — layer\n"
              "  Jacobians are narrow in collapsed space, as the paper notes in Sec. 3.3)\n",
              ms_expanded / ms_collapsed, local.speedup());
  return 0;
}
