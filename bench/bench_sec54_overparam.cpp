// Reproduces Section 5.4: SESR vs state-of-the-art overparameterization.
// Four networks share the SESR-M11 topology and an identical training budget:
//   SESR       — collapsible linear blocks + collapsible short residuals
//   ExpandNet  — linear blocks WITHOUT short residuals (paper: stalls at
//                33.65 dB vs 35.45 dB; vanishing gradients in the 26-layer
//                expanded chain)
//   RepVGG     — k x k + 1 x 1 branch + identity per block (paper: 35.35 dB)
//   VGG        — the collapsed net trained directly (paper: 35.34 dB;
//                Sec. 4.3 predicts RepVGG ~= VGG for shallow nets)
// Expected shape: SESR best; ExpandNet clearly worst; RepVGG ~ VGG.
#include <cstdio>
#include <memory>
#include <vector>

#include "baselines/blocks.hpp"
#include "bench_common.hpp"
#include "core/paper_reference.hpp"
#include "core/sesr_network.hpp"

using namespace sesr;

int main() {
  bench::print_header("Section 5.4 — SESR vs ExpandNet vs RepVGG vs VGG (M11 topology)",
                      "Bhardwaj et al., MLSys 2022, Section 5.4");
  data::SrDataset corpus = bench::training_corpus(2);

  core::SesrConfig base = core::sesr_m11(2);
  base.expand = bench::fast_mode() ? 64 : 256;  // p = 256 is the paper's value  // p; the dynamics, not capacity, are under test

  struct Variant {
    std::string label;
    std::unique_ptr<core::SesrNetwork> net;
    double paper_psnr;
  };
  std::vector<Variant> variants;
  {
    Rng rng(1);
    variants.push_back({"SESR (linear blocks + short residuals)",
                        std::make_unique<core::SesrNetwork>(base, rng),
                        core::paper::kSec54SesrM11});
  }
  {
    Rng rng(1);
    core::SesrConfig cfg = base;
    cfg.short_residuals = false;  // ExpandNet-style training
    variants.push_back({"ExpandNet (no short residuals)",
                        std::make_unique<core::SesrNetwork>(cfg, rng),
                        core::paper::kSec54ExpandNet});
  }
  {
    Rng rng(1);
    variants.push_back({"RepVGG (kxk + 1x1 + identity)",
                        std::make_unique<core::SesrNetwork>(base, baselines::repvgg_factory(),
                                                            rng, "RepVGG"),
                        core::paper::kSec54RepVgg});
  }
  {
    Rng rng(1);
    variants.push_back({"VGG (collapsed net trained directly)",
                        std::make_unique<core::SesrNetwork>(base, baselines::single_conv_factory(),
                                                            rng, "VGG"),
                        core::paper::kSec54DirectVgg});
  }

  bench::TrainSpec spec;
  spec.steps = 400;
  std::printf("%-42s %12s %12s %14s\n", "variant", "val PSNR", "paper PSNR", "final |grad|");
  std::vector<double> psnr(variants.size());
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const auto history = bench::train_model(*variants[i].net, corpus, spec, /*batch_seed=*/7);
    psnr[i] = bench::validation_psnr(*variants[i].net, corpus);
    std::printf("%-42s %9.2f dB %9.2f dB %14.4f\n", variants[i].label.c_str(), psnr[i],
                variants[i].paper_psnr, history.grad_norm.back());
  }

  std::printf("\nshape checks:\n");
  std::printf("  SESR > ExpandNet by %+.2f dB (paper +1.80 dB — short residuals are essential)\n",
              psnr[0] - psnr[1]);
  std::printf("  SESR > RepVGG    by %+.2f dB (paper +0.10 dB)\n", psnr[0] - psnr[2]);
  std::printf("  |RepVGG - VGG|   =  %.2f dB (paper 0.01 dB — Sec. 4.3's equivalence)\n",
              psnr[2] > psnr[3] ? psnr[2] - psnr[3] : psnr[3] - psnr[2]);
  return 0;
}
