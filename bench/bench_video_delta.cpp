// bench_video_delta — throughput of the video-session tile-delta path
// against full per-frame re-upscale, over the seeded synthetic temporal
// patterns (static / pan / cut) x all four inference precisions.
//
// Each cell replays the same sequence twice through one ShardedServer
// configuration: once as a video session (submit_video, consecutive seqs, so
// the tile-delta path engages from frame 2 on) and once as plain submits
// (always the full pipeline; response cache off). Every frame's delta output
// is byte-compared against the full output — the speedup only counts if the
// bytes are unchanged, mirroring the zero-tolerance `video_delta_vs_full`
// audit pair.
//
// Acceptance bar (ROADMAP, "Video / temporal workload with delta-tile
// reuse"): >= 5x throughput on the mostly-static sequence at unchanged
// output bytes. The bar is asserted — a violation exits nonzero so CI can
// gate on it. Pan is the adversarial floor (every tile dirties: expect ~1x,
// the delta overhead showing up as a few percent), cut sits between.
//
// Knobs: SESR_BENCH_FAST=1 shrinks the frame budget; SESR_BENCH_JSON=<dir>
// writes machine-readable rows (fps per path plus the speedup ratio).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/hybrid_plan.hpp"
#include "core/sesr_inference.hpp"
#include "core/sesr_network.hpp"
#include "data/video.hpp"
#include "serve/registry.hpp"
#include "serve/sharded_server.hpp"
#include "tensor/thread_pool.hpp"

namespace {

using namespace sesr;
using Clock = std::chrono::steady_clock;

bool bitwise_equal(const Tensor& a, const Tensor& b) {
  if (!(a.shape() == b.shape())) return false;
  return std::memcmp(a.raw(), b.raw(), static_cast<std::size_t>(a.numel()) * sizeof(float)) == 0;
}

serve::ServeOptions serve_options() {
  serve::ServeOptions options;
  options.workers = 2;
  options.max_batch = 1;
  options.max_delay_us = 0;  // serial closed loop: flush immediately
  options.queue_capacity = 8;
  options.cache_entries = 0;  // the full-path reference must recompute
  options.video_sessions = 4;
  options.mode = serve::ExecMode::kAuto;
  options.tiling.tile_h = 32;
  options.tiling.tile_w = 32;
  options.tiled_threshold_pixels = 64 * 64;  // the bench frames tile
  return options;
}

struct Cell {
  double delta_fps = 0.0;
  double full_fps = 0.0;
  std::uint64_t tiles_reused = 0;
  std::uint64_t tiles_total = 0;
  bool bytes_match = true;
};

Cell run_cell(const serve::NetworkRegistry& registry, const serve::RouteKey& route,
              const std::vector<Tensor>& frames) {
  Cell cell;
  // Full path first: plain submits through a fresh server, serial closed loop.
  std::vector<Tensor> full_outputs;
  {
    serve::ShardedServer server(registry, serve_options());
    const auto start = Clock::now();
    for (const Tensor& frame : frames) full_outputs.push_back(server.submit(route, frame).get());
    cell.full_fps = static_cast<double>(frames.size()) /
                    std::chrono::duration<double>(Clock::now() - start).count();
    server.shutdown();
  }
  // Delta path: one session, consecutive seqs, serial closed loop so every
  // frame's predecessor is published before the next plan runs.
  {
    serve::ShardedServer server(registry, serve_options());
    const auto start = Clock::now();
    std::vector<Tensor> outputs;
    for (std::size_t i = 0; i < frames.size(); ++i) {
      serve::VideoOptions video;
      video.session_id = 1;
      video.seq = i + 1;
      serve::AdmitResult admitted = server.submit_video(route, frames[i], video);
      outputs.push_back(admitted.future.get());
      if (admitted.delta) {
        cell.tiles_reused += admitted.tiles_total - admitted.tiles_recomputed;
        cell.tiles_total += admitted.tiles_total;
      }
    }
    cell.delta_fps = static_cast<double>(frames.size()) /
                     std::chrono::duration<double>(Clock::now() - start).count();
    server.shutdown();
    for (std::size_t i = 0; i < frames.size(); ++i) {
      if (!bitwise_equal(outputs[i], full_outputs[i])) cell.bytes_match = false;
    }
  }
  return cell;
}

}  // namespace

int main() {
  bench::print_header("Video-session delta-tile reuse vs full re-upscale",
                      "deployment direction of Secs. 1/6 (real-time SR on video traffic)");
  ThreadPool::set_global_threads(1);

  const std::int64_t frames = bench::fast_mode() ? 12 : 48;
  const std::int64_t lr = 96;  // LR edge; 3x3 grid of 32x32 tiles
  const std::uint64_t seed = 0x51DE0;

  // One registry with all four precision routes over the same weights.
  Rng rng(seed);
  core::SesrNetwork network(core::sesr_m5(2), rng);
  core::SesrInference inference(network);
  {
    Rng calib_rng(seed ^ 0xC0FFEEULL);
    std::vector<Tensor> calib;
    for (int i = 0; i < 4; ++i) {
      Tensor frame(1, 48, 48, 1);
      frame.fill_uniform(calib_rng, 0.0F, 1.0F);
      calib.push_back(std::move(frame));
    }
    inference.calibrate_int8(calib);
    std::vector<Tensor> hr;
    inference.set_precision(core::InferencePrecision::kFp32);
    for (const Tensor& frame : calib) hr.push_back(inference.upscale(frame));
    core::plan_hybrid_precision(inference, calib, hr);
  }
  const core::InferencePrecision precisions[] = {
      core::InferencePrecision::kFp32, core::InferencePrecision::kFp16,
      core::InferencePrecision::kInt8, core::InferencePrecision::kHybrid};
  const char* precision_names[] = {"fp32", "fp16", "int8", "hybrid"};
  serve::NetworkRegistry registry;
  for (std::size_t p = 0; p < 4; ++p) {
    registry.add(serve::RouteKey{"m5", 2, precisions[p]}, inference);
  }

  const data::VideoPattern patterns[] = {data::VideoPattern::kStatic, data::VideoPattern::kPan,
                                         data::VideoPattern::kCut};

  bench::BenchJson json("video_delta");
  std::printf("\n%-10s %-8s %12s %12s %9s %14s %6s\n", "pattern", "prec", "full fps", "delta fps",
              "speedup", "tiles reused", "bytes");
  double static_worst_speedup = 0.0;
  bool first_static = true;
  bool all_bytes_match = true;
  for (const data::VideoPattern pattern : patterns) {
    data::VideoSequenceOptions vopts;
    vopts.pattern = pattern;
    vopts.frames = frames;
    vopts.h = lr;
    vopts.w = lr;
    const std::vector<Tensor> sequence = data::synthesize_video(vopts, seed);
    for (std::size_t p = 0; p < 4; ++p) {
      const serve::RouteKey route{"m5", 2, precisions[p]};
      const Cell cell = run_cell(registry, route, sequence);
      const double speedup = cell.full_fps > 0.0 ? cell.delta_fps / cell.full_fps : 0.0;
      const std::string name =
          std::string(data::to_string(pattern)) + ":" + precision_names[p];
      std::printf("%-10s %-8s %12.1f %12.1f %8.2fx %8llu/%-5llu %6s\n",
                  data::to_string(pattern).c_str(), precision_names[p], cell.full_fps,
                  cell.delta_fps, speedup, static_cast<unsigned long long>(cell.tiles_reused),
                  static_cast<unsigned long long>(cell.tiles_total),
                  cell.bytes_match ? "ok" : "DIFF");
      json.add("video/" + name + ":full_fps", cell.full_fps, 0.0, 1);
      json.add("video/" + name + ":delta_fps", cell.delta_fps, 0.0, 1);
      json.add("video/" + name + ":speedup", speedup, 0.0, 1);
      if (!cell.bytes_match) all_bytes_match = false;
      if (pattern == data::VideoPattern::kStatic) {
        static_worst_speedup =
            first_static ? speedup : std::min(static_worst_speedup, speedup);
        first_static = false;
      }
    }
  }

  std::printf("\nmostly-static speedup (worst precision): %.2fx (bar >= 5x, bytes unchanged)\n",
              static_worst_speedup);
  if (!all_bytes_match) {
    std::printf("FAIL: delta output bytes diverged from the full re-upscale\n");
    return 1;
  }
  if (static_worst_speedup < 5.0) {
    std::printf("FAIL: static-sequence speedup below the 5x bar\n");
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
