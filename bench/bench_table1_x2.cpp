// Reproduces Table 1: x2 SISR quality (PSNR/SSIM) on six benchmark datasets
// plus parameter and MAC accounting, for the SESR model family, FSRCNN and
// bicubic. Substrate differences vs the paper: models are trained on the
// synthetic corpus for a reduced budget (see DESIGN.md), so absolute PSNR
// differs; parameters/MACs are exact, and the orderings are the target.
#include <cstdio>
#include <memory>

#include "baselines/compact_nets.hpp"
#include "baselines/fsrcnn.hpp"
#include "bench_common.hpp"
#include "core/macs.hpp"
#include "core/paper_reference.hpp"
#include "core/sesr_inference.hpp"
#include "data/resize.hpp"

using namespace sesr;

namespace {
void print_paper_row(const core::paper::QualityRow& row) {
  std::printf("%-28s %9.2fK %8.2fG", (std::string("  paper: ") + std::string(row.model)).c_str(),
              row.parameters_k, row.macs_g);
  for (const auto& e : row.sets) {
    if (e.present()) std::printf("  %6.2f/%.4f", e.psnr, e.ssim);
    else std::printf("  %13s", "-/-");
  }
  std::printf("\n");
}

const core::paper::QualityRow* find_paper_row(const char* model) {
  for (const auto& row : core::paper::kTable1X2) {
    if (row.model == model) return &row;
  }
  return nullptr;
}
}  // namespace

int main() {
  bench::print_header("Table 1 — x2 SISR quality across six benchmark sets",
                      "Bhardwaj et al., MLSys 2022, Table 1");
  const auto sets = bench::eval_sets();
  data::SrDataset corpus = bench::training_corpus(2);
  const std::int64_t lr_h = core::lr_extent_for(720, 2);
  const std::int64_t lr_w = core::lr_extent_for(1280, 2);

  std::printf("%-28s %10s %9s", "model", "params", "MACs@720p");
  for (const auto& s : sets) std::printf("  %13s", s.name.c_str());
  std::printf("\n");

  // Bicubic baseline.
  {
    const auto scores = metrics::evaluate_on_sets(
        [](const Tensor& lr_img) { return data::upscale_bicubic(lr_img, 2); }, sets, 2);
    bench::print_quality_row("Bicubic", 0.0, 0.0, scores);
    print_paper_row(core::paper::kTable1X2[0]);
  }

  // FSRCNN.
  {
    Rng rng(11);
    baselines::FsrcnnConfig fcfg;
    auto model = baselines::make_fsrcnn(fcfg, rng);
    bench::TrainSpec spec;
    bench::train_model(*model, corpus, spec);
    const auto scores = metrics::evaluate_on_sets(
        [&](const Tensor& lr_img) { return model->predict(lr_img); }, sets, 2);
    const core::MacReport mac = core::fsrcnn_macs(lr_h, lr_w, 2);
    bench::print_quality_row("FSRCNN (ours)", mac.kilo_parameters(), mac.giga_macs(), scores);
    print_paper_row(*find_paper_row("FSRCNN (authors' setup)"));
  }

  // Medium/large-regime trainable baselines (skipped in fast mode).
  if (!bench::fast_mode()) {
    {
      Rng rng(41);
      baselines::TpsrConfig tcfg;  // ~58K params, the paper's TPSR regime
      baselines::TpsrLike model(tcfg, rng);
      bench::TrainSpec spec;
      bench::train_model(model, corpus, spec);
      const auto scores = metrics::evaluate_on_sets(
          [&](const Tensor& lr_img) { return model.predict(lr_img); }, sets, 2);
      bench::print_quality_row("TPSR-like (ours)",
                               static_cast<double>(model.parameter_count()) * 1e-3,
                               static_cast<double>(model.parameter_count()) * 1e-9 *
                                   static_cast<double>(lr_h * lr_w),
                               scores);
      print_paper_row(*find_paper_row("TPSR-NoGAN"));
    }
    {
      Rng rng(43);
      baselines::CarnMConfig ccfg;  // grouped-conv efficiency family
      baselines::CarnMLike model(ccfg, rng);
      bench::TrainSpec spec;
      bench::train_model(model, corpus, spec);
      const auto scores = metrics::evaluate_on_sets(
          [&](const Tensor& lr_img) { return model.predict(lr_img); }, sets, 2);
      bench::print_quality_row("CARN-M-like (ours, tiny cfg)",
                               static_cast<double>(model.parameter_count()) * 1e-3,
                               static_cast<double>(model.parameter_count()) * 1e-9 *
                                   static_cast<double>(lr_h * lr_w),
                               scores);
      print_paper_row(*find_paper_row("CARN-M"));
    }
  }

  // SESR family (XL skipped in fast mode — ~6x the training cost).
  std::vector<core::SesrConfig> zoo{core::sesr_m3(2), core::sesr_m5(2), core::sesr_m7(2),
                                    core::sesr_m11(2)};
  if (!bench::fast_mode()) zoo.push_back(core::sesr_xl(2));
  const char* paper_names[] = {"SESR-M3", "SESR-M5", "SESR-M7", "SESR-M11", "SESR-XL"};
  for (std::size_t i = 0; i < zoo.size(); ++i) {
    Rng rng(100 + static_cast<std::uint64_t>(i));
    core::SesrNetwork net(zoo[i], rng);
    bench::TrainSpec spec;
    bench::train_model(net, corpus, spec);
    core::SesrInference deployed(net);
    const auto scores = metrics::evaluate_on_sets(
        [&](const Tensor& lr_img) { return deployed.upscale(lr_img); }, sets, 2);
    const core::MacReport mac = core::sesr_macs(zoo[i], lr_h, lr_w);
    bench::print_quality_row(paper_names[i], mac.kilo_parameters(), mac.giga_macs(), scores);
    if (const auto* row = find_paper_row(paper_names[i])) print_paper_row(*row);
  }

  std::printf("\nheadline checks (paper Sec. 5.2):\n");
  std::printf("  SESR-M5 vs FSRCNN MACs: %.2fx fewer (paper ~2x: 3.11G vs 6.00G)\n",
              core::fsrcnn_macs(lr_h, lr_w, 2).giga_macs() /
                  core::sesr_macs(core::sesr_m5(2), lr_h, lr_w).giga_macs());
  std::printf("  SESR-M11 vs VDSR MACs: %.0fx fewer (paper 97x)\n",
              612.6 / core::sesr_macs(core::sesr_m11(2), lr_h, lr_w).giga_macs());
  return 0;
}
