// Reproduces Section 5.5 ablations on the SESR-M11 skeleton:
//  (a) residuals WITHOUT linear blocks (single convs + short residuals):
//      paper 35.25 dB vs full SESR 35.45 dB — skips alone are not enough;
//  (b) the hardware variant (PReLU -> ReLU, drop the input residual):
//      paper loses only ~0.1 dB.
#include <cstdio>
#include <memory>

#include "baselines/blocks.hpp"
#include "bench_common.hpp"
#include "core/paper_reference.hpp"
#include "core/sesr_network.hpp"

using namespace sesr;

int main() {
  bench::print_header("Section 5.5 — ablations: residuals-only, PReLU vs ReLU",
                      "Bhardwaj et al., MLSys 2022, Section 5.5");
  data::SrDataset corpus = bench::training_corpus(2);

  core::SesrConfig base = core::sesr_m11(2);
  base.expand = bench::fast_mode() ? 64 : 256;  // p = 256 is the paper's value
  bench::TrainSpec spec;
  spec.steps = 400;

  double full_psnr = 0.0;
  {
    Rng rng(1);
    core::SesrNetwork net(base, rng);
    bench::train_model(net, corpus, spec);
    full_psnr = bench::validation_psnr(net, corpus);
    std::printf("%-52s %9.2f dB  (paper %.2f)\n", "SESR-M11 (full)", full_psnr,
                core::paper::kSec54SesrM11);
  }
  {
    // Short residuals but NO linear blocks: plain convs via the factory.
    Rng rng(1);
    core::SesrNetwork net(base, baselines::single_conv_factory(), rng, "residuals-only");
    bench::train_model(net, corpus, spec);
    const double p = bench::validation_psnr(net, corpus);
    std::printf("%-52s %9.2f dB  (paper %.2f)\n", "residuals without linear blocks", p,
                core::paper::kSec55ResidualOnly);
    std::printf("  delta vs full SESR: %+.2f dB (paper -0.20 dB)\n", p - full_psnr);
  }
  {
    // Hardware variant: ReLU, no input residual.
    Rng rng(1);
    core::SesrNetwork net(core::hardware_variant(base), rng);
    bench::train_model(net, corpus, spec);
    const double p = bench::validation_psnr(net, corpus);
    std::printf("%-52s %9.2f dB\n", "hardware variant (ReLU, no input residual)", p);
    std::printf("  delta vs full SESR: %+.2f dB (paper ~-0.10 dB)\n", p - full_psnr);
  }
  return 0;
}
