// Reproduces Fig. 1(a): the PSNR-vs-MACs Pareto frontier on Set14 for x2 SISR
// (360p -> 720p MAC accounting). Trains the SESR family and FSRCNN with an
// identical budget, evaluates on the synthetic Set14 stand-in, and reports
// each point next to the paper's (MACs, PSNR) coordinates. The reproduced
// claim: SESR points dominate — more PSNR for fewer MACs.
#include <cstdio>
#include <vector>

#include "baselines/fsrcnn.hpp"
#include "bench_common.hpp"
#include "core/macs.hpp"
#include "core/paper_reference.hpp"
#include "core/sesr_inference.hpp"
#include "data/resize.hpp"
#include "metrics/psnr.hpp"

using namespace sesr;

int main() {
  bench::print_header("Fig. 1(a) — PSNR on Set14 vs MACs (x2, 360p->720p)",
                      "Bhardwaj et al., MLSys 2022, Figure 1(a)");
  const auto set14 = data::make_benchmark_set("Set14", bench::fast_mode() ? 48 : 64, true);
  data::SrDataset corpus = bench::training_corpus(2);
  const std::int64_t lr_h = core::lr_extent_for(720, 2);
  const std::int64_t lr_w = core::lr_extent_for(1280, 2);

  struct Point {
    std::string name;
    double macs_g;
    double psnr;
    double paper_macs_g;
    double paper_psnr;
  };
  std::vector<Point> points;

  {
    const auto score = metrics::evaluate_on_set(
        [](const Tensor& lr_img) { return data::upscale_bicubic(lr_img, 2); }, set14, 2);
    points.push_back({"Bicubic", 0.0, score.psnr, 0.0, 30.24});
  }
  {
    Rng rng(31);
    baselines::FsrcnnConfig fcfg;
    auto model = baselines::make_fsrcnn(fcfg, rng);
    bench::TrainSpec spec;
    bench::train_model(*model, corpus, spec);
    const auto score = metrics::evaluate_on_set(
        [&](const Tensor& lr_img) { return model->predict(lr_img); }, set14, 2);
    points.push_back(
        {"FSRCNN", core::fsrcnn_macs(lr_h, lr_w, 2).giga_macs(), score.psnr, 6.00, 32.47});
  }
  const std::vector<std::pair<core::SesrConfig, std::pair<double, double>>> zoo{
      {core::sesr_m3(2), {2.05, 32.70}},
      {core::sesr_m5(2), {3.11, 32.84}},
      {core::sesr_m7(2), {4.17, 32.91}},
      {core::sesr_m11(2), {6.30, 33.03}},
  };
  for (std::size_t i = 0; i < zoo.size(); ++i) {
    Rng rng(300 + static_cast<std::uint64_t>(i));
    core::SesrNetwork net(zoo[i].first, rng);
    bench::TrainSpec spec;
    bench::train_model(net, corpus, spec);
    core::SesrInference deployed(net);
    const auto score = metrics::evaluate_on_set(
        [&](const Tensor& lr_img) { return deployed.upscale(lr_img); }, set14, 2);
    points.push_back({zoo[i].first.describe(), core::sesr_macs(zoo[i].first, lr_h, lr_w).giga_macs(),
                      score.psnr, zoo[i].second.first, zoo[i].second.second});
  }

  std::printf("%-26s %12s %12s %14s %12s\n", "model", "GMACs", "PSNR (ours)", "GMACs (paper)",
              "PSNR (paper)");
  for (const Point& p : points) {
    std::printf("%-26s %11.2fG %9.2f dB %13.2fG %9.2f dB\n", p.name.c_str(), p.macs_g, p.psnr,
                p.paper_macs_g, p.paper_psnr);
  }

  // Pareto shape check: each SESR point should match or beat FSRCNN's PSNR
  // while spending fewer (M3/M5/M7) or comparable (M11) MACs.
  const Point& fsrcnn = points[1];
  int dominated = 0;
  for (std::size_t i = 2; i < points.size(); ++i) {
    if (points[i].psnr >= fsrcnn.psnr && points[i].macs_g <= fsrcnn.macs_g * 1.05) ++dominated;
  }
  std::printf("\n%d of %zu SESR points dominate FSRCNN (>= PSNR at <= MACs) — the new Pareto\n"
              "frontier of Fig. 1(a).\n",
              dominated, points.size() - 2);
  return 0;
}
