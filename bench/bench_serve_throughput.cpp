// Throughput/latency sweep of the batched eval server: micro-batch size x
// worker count on 64x64 x2 Y frames, against the single-threaded full-frame
// baseline (one SesrInference::upscale per frame, intra-op pool pinned to 1).
//
// The server is configured the way a throughput deployment would be: intra-op
// threads = 1 so worker sessions scale across cores instead of fighting over
// one shared pool (docs/SERVING.md, "threading model"). The acceptance bar
// from the serving roadmap: >= 2x the single-threaded FPS at 4 workers — this
// needs >= 2 physical cores to be reachable; the headline prints the detected
// core count so a 1-core CI box reads as expected, not as a regression.
//
// Three follow-on sweeps ride along (all emitted via SESR_BENCH_JSON):
//   cache:    repeated-frame serial closed loop, response cache off vs on —
//             acceptance bar >= 3x throughput with the cache.
//   fairness: small-request p99 isolated vs mixed with large tiled frames,
//             round-robin tile scheduler on vs off — acceptance bar: mixed
//             fair p99 <= 2x isolated p99.
//   sharded:  mixed-network closed loop over two routes of a ShardedServer.
//
// Knobs: SESR_BENCH_FAST=1 quarters the frame budget (CI mode).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/sesr_inference.hpp"
#include "core/sesr_network.hpp"
#include "serve/net/wire.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"
#include "serve/sharded_server.hpp"
#include "serve/stats.hpp"
#include "tensor/thread_pool.hpp"

namespace {

using namespace sesr;
using Clock = std::chrono::steady_clock;

bool fast_mode() {
  const char* v = std::getenv("SESR_BENCH_FAST");
  return v != nullptr && std::string(v) != "0";
}

struct SweepPoint {
  int workers;
  std::int64_t max_batch;
  double fps;
  double p50_ms;
  double p95_ms;
  double p99_ms;
};

SweepPoint run_point(const core::SesrInference& inference, const Tensor& frame, int workers,
                     std::int64_t max_batch, std::int64_t frames,
                     core::InferencePrecision precision = core::InferencePrecision::kFp32) {
  serve::ServeOptions options;
  options.workers = workers;
  options.max_batch = max_batch;
  options.precision = precision;
  options.max_delay_us = 500;
  options.queue_capacity = static_cast<std::size_t>(4 * max_batch * workers);
  options.overload = serve::OverloadPolicy::kBlock;  // closed loop: saturation probe
  serve::EvalServer server(inference, options);
  std::vector<std::future<Tensor>> pending;
  pending.reserve(static_cast<std::size_t>(frames));
  const auto start = Clock::now();
  for (std::int64_t i = 0; i < frames; ++i) pending.push_back(server.submit(frame));
  for (auto& f : pending) f.get();
  const double wall = std::chrono::duration<double>(Clock::now() - start).count();
  server.shutdown();
  const serve::ServerStats stats = server.stats();
  return {workers,        max_batch,           static_cast<double>(frames) / wall,
          stats.p50_us / 1e3, stats.p95_us / 1e3, stats.p99_us / 1e3};
}

// Serial closed loop (submit -> wait, one in flight) over a small pool of
// repeated frames: the pattern a video or thumbnail service sees. With the
// cache on, every repeat after the first pass is served on the submit path.
double repeated_frame_fps(const core::SesrInference& inference, std::size_t cache_entries,
                          const std::vector<Tensor>& pool, std::int64_t frames) {
  serve::ServeOptions options;
  options.workers = 2;
  options.max_batch = 1;
  options.max_delay_us = 0;  // flush immediately: latency-oriented serial loop
  options.queue_capacity = 8;
  options.cache_entries = cache_entries;
  serve::EvalServer server(inference, options);
  const auto start = Clock::now();
  for (std::int64_t i = 0; i < frames; ++i) {
    server.submit(pool[static_cast<std::size_t>(i) % pool.size()]).get();
  }
  const double wall = std::chrono::duration<double>(Clock::now() - start).count();
  server.shutdown();
  return static_cast<double>(frames) / wall;
}

// p99 latency (ms) of serial small-frame requests, optionally while a
// background client keeps a window of large tiled frames in flight. `fair`
// toggles the round-robin tile scheduler; with it off, every small request
// queues behind the full tile fan-out of whatever large frames got there
// first (the starvation mode the lane scheduler exists to prevent).
double small_request_p99_ms(const core::SesrInference& inference, bool fair, bool with_large,
                            std::int64_t small_count) {
  serve::ServeOptions options;
  // Don't oversubscribe a 1-core box: with more workers than cores the
  // residual-unit wait doubles from timeslicing, which measures the
  // scheduler's preemption granularity, not its fairness.
  options.workers = std::thread::hardware_concurrency() >= 2 ? 2 : 1;
  options.max_batch = 1;
  options.max_delay_us = 0;
  options.queue_capacity = 64;
  options.mode = serve::ExecMode::kAuto;
  options.tiled_threshold_pixels = 10'000;  // 64x64 full-frame, 192x192 tiled
  options.tiling.tile_h = 32;  // fine units: preemption latency ~ one 32px tile
  options.tiling.tile_w = 32;
  options.fair_tiles = fair;
  serve::EvalServer server(inference, options);

  Rng rng(77);
  Tensor small(1, 64, 64, 1);
  small.fill_uniform(rng, 0.0F, 1.0F);
  Tensor large(1, 192, 192, 1);
  large.fill_uniform(rng, 0.0F, 1.0F);

  std::atomic<bool> stop{false};
  std::thread large_client;
  if (with_large) {
    large_client = std::thread([&] {
      std::deque<std::future<Tensor>> window;
      while (!stop.load(std::memory_order_acquire)) {
        window.push_back(server.submit(large));
        if (window.size() > 4) {
          window.front().get();
          window.pop_front();
        }
      }
      for (auto& f : window) f.get();
    });
  }

  std::vector<double> latency_ms;
  latency_ms.reserve(static_cast<std::size_t>(small_count));
  for (std::int64_t i = 0; i < small_count; ++i) {
    const auto t0 = Clock::now();
    server.submit(small).get();
    latency_ms.push_back(std::chrono::duration<double, std::milli>(Clock::now() - t0).count());
  }

  stop.store(true, std::memory_order_release);
  if (large_client.joinable()) large_client.join();
  server.shutdown();
  return serve::percentile(std::move(latency_ms), 99.0);
}

}  // namespace

int main() {
  ThreadPool::set_global_threads(1);
  Rng rng(42);
  core::SesrNetwork network(core::sesr_m5(2), rng);
  const core::SesrInference inference(network);
  Tensor frame(1, 64, 64, 1);
  Rng frame_rng(43);
  frame.fill_uniform(frame_rng, 0.0F, 1.0F);
  const std::int64_t frames = fast_mode() ? 64 : 256;

  // Baseline: single-threaded full-frame loop (what one CLI call does).
  const auto base_start = Clock::now();
  for (std::int64_t i = 0; i < frames; ++i) {
    const Tensor out = inference.upscale(frame);
    (void)out;
  }
  const double base_wall = std::chrono::duration<double>(Clock::now() - base_start).count();
  const double base_fps = static_cast<double>(frames) / base_wall;

  std::printf("bench_serve_throughput — %s, 64x64 x2, %lld frames, %u hardware threads\n",
              inference.name().c_str(), static_cast<long long>(frames),
              std::thread::hardware_concurrency());
  std::printf("baseline single-threaded full-frame: %.1f fps\n\n", base_fps);
  std::printf("%8s %10s %10s %9s %9s %9s %9s\n", "workers", "max_batch", "fps", "speedup",
              "p50_ms", "p95_ms", "p99_ms");
  bench::BenchJson json("serve_throughput");
  json.add("baseline/full_frame", 1e9 / base_fps, 0.0, 1);
  double speedup_4w = 0.0;
  for (const int workers : {1, 2, 4}) {
    for (const std::int64_t max_batch : {1, 4, 8}) {
      const SweepPoint p = run_point(inference, frame, workers, max_batch, frames);
      const double speedup = p.fps / base_fps;
      if (workers == 4) speedup_4w = std::max(speedup_4w, speedup);
      std::printf("%8d %10lld %10.1f %8.2fx %9.2f %9.2f %9.2f\n", p.workers,
                  static_cast<long long>(p.max_batch), p.fps, speedup, p.p50_ms, p.p95_ms,
                  p.p99_ms);
      json.add("workers" + std::to_string(workers) + "/batch" + std::to_string(max_batch),
               1e9 / p.fps, 0.0, workers);
    }
  }
  std::printf("\nbest 4-worker speedup vs single-threaded baseline: %.2fx (target >= 2x on >= 2 cores)\n",
              speedup_4w);

  // --- repeated-frame response cache sweep -------------------------------
  std::vector<Tensor> pool;
  for (int i = 0; i < 4; ++i) {
    Tensor f(1, 64, 64, 1);
    f.fill_uniform(frame_rng, 0.0F, 1.0F);
    pool.push_back(std::move(f));
  }
  const std::int64_t cache_frames = fast_mode() ? 64 : 256;
  const double cold_fps = repeated_frame_fps(inference, 0, pool, cache_frames);
  const double cached_fps = repeated_frame_fps(inference, 8, pool, cache_frames);
  std::printf("\nrepeated-frame serial loop (4 distinct frames, %lld requests):\n",
              static_cast<long long>(cache_frames));
  std::printf("  cache off %8.1f fps\n  cache on  %8.1f fps  (%.1fx, target >= 3x)\n", cold_fps,
              cached_fps, cached_fps / cold_fps);
  json.add("cache/off", 1e9 / cold_fps, 0.0, 2);
  json.add("cache/on", 1e9 / cached_fps, 0.0, 2);

  // --- tile-fairness sweep ----------------------------------------------
  const std::int64_t small_count = fast_mode() ? 60 : 200;
  const double isolated_p99 = small_request_p99_ms(inference, true, false, small_count);
  const double mixed_fair_p99 = small_request_p99_ms(inference, true, true, small_count);
  const double mixed_fifo_p99 = small_request_p99_ms(inference, false, true, small_count);
  std::printf("\nsmall-request p99 (64x64 full-frame) vs background 192x192 tile fan-out:\n");
  std::printf("  isolated    %8.2f ms\n", isolated_p99);
  std::printf("  mixed fair  %8.2f ms  (%.1fx isolated, target <= 2x)\n", mixed_fair_p99,
              mixed_fair_p99 / isolated_p99);
  std::printf("  mixed fifo  %8.2f ms  (%.1fx isolated)\n", mixed_fifo_p99,
              mixed_fifo_p99 / isolated_p99);
  json.add("fairness/isolated_p99", isolated_p99 * 1e6, 0.0, 2);
  json.add("fairness/mixed_fair_p99", mixed_fair_p99 * 1e6, 0.0, 2);
  json.add("fairness/mixed_fifo_p99", mixed_fifo_p99 * 1e6, 0.0, 2);

  // --- wire deframing: pipelined small requests --------------------------
  // The FrameReader regression guard: one recv() can carry hundreds of
  // coalesced tiny frames when a client pipelines small requests, and the
  // deframer used to compact its buffer once PER FRAME — O(K^2) byte moves
  // per feed. The fix carves frames by offset and compacts once per feed, so
  // per-frame cost must stay flat as the pipeline depth grows. A quadratic
  // deframer shows up here as the deep case costing many times the shallow
  // one per frame.
  {
    serve::net::WireRequest request;
    request.id = 1;
    request.route = "m5:2:fp32";
    request.h = 4;
    request.w = 4;
    request.pixels.assign(16, 0.5F);
    const std::vector<std::uint8_t> one = serve::net::encode_request(request);
    const auto frames_per_second = [&one](std::size_t depth, int iterations) {
      std::vector<std::uint8_t> buffer;
      buffer.reserve(one.size() * depth);
      for (std::size_t i = 0; i < depth; ++i) {
        buffer.insert(buffer.end(), one.begin(), one.end());
      }
      std::size_t drained = 0;
      const auto start = Clock::now();
      for (int it = 0; it < iterations; ++it) {
        serve::net::FrameReader reader;
        reader.feed(buffer.data(), buffer.size());
        while (reader.next()) ++drained;
      }
      const double wall = std::chrono::duration<double>(Clock::now() - start).count();
      if (drained != depth * static_cast<std::size_t>(iterations)) {
        std::fprintf(stderr, "deframer dropped frames: %zu != %zu\n", drained,
                     depth * static_cast<std::size_t>(iterations));
        std::abort();
      }
      return static_cast<double>(drained) / wall;
    };
    const int iterations = fast_mode() ? 50 : 200;
    const double shallow = frames_per_second(8, iterations * 64);
    const double deep = frames_per_second(512, iterations);
    std::printf("\nwire deframing, coalesced small frames (%zu-byte requests):\n", one.size());
    std::printf("  depth   8: %10.0f frames/s\n", shallow);
    std::printf("  depth 512: %10.0f frames/s  (%.2fx shallow; quadratic compaction "
                "would crater this)\n",
                deep, deep / shallow);
    json.add("wire/deframe_depth8", 1e9 / shallow, 0.0, 1);
    json.add("wire/deframe_depth512", 1e9 / deep, 0.0, 1);
    json.add("wire/deframe_deep_vs_shallow", deep / shallow, 0.0, 1);
  }

  // --- mixed-network sharded sweep --------------------------------------
  {
    core::SesrNetwork m3_net(core::sesr_m3(2), rng);
    const core::SesrInference m3_inference(m3_net);
    serve::NetworkRegistry registry;
    registry.add({"m5", 2, core::InferencePrecision::kFp32}, inference);
    registry.add({"m3", 2, core::InferencePrecision::kFp16}, m3_inference);
    serve::ServeOptions options;
    options.workers = 2;
    options.max_batch = 4;
    options.max_delay_us = 500;
    options.queue_capacity = 64;
    serve::ShardedServer server(registry, options);
    std::vector<std::future<Tensor>> pending;
    pending.reserve(static_cast<std::size_t>(frames));
    const auto start = Clock::now();
    for (std::int64_t i = 0; i < frames; ++i) {
      const serve::RouteKey route = i % 2 == 0
                                        ? serve::RouteKey{"m5", 2, core::InferencePrecision::kFp32}
                                        : serve::RouteKey{"m3", 2, core::InferencePrecision::kFp16};
      pending.push_back(server.submit(route, frame));
    }
    for (auto& f : pending) f.get();
    const double wall = std::chrono::duration<double>(Clock::now() - start).count();
    server.shutdown();
    const double sharded_fps = static_cast<double>(frames) / wall;
    std::printf("\nmixed-network sharded closed loop (m5:2:fp32 + m3:2:fp16, 2 workers/shard): %.1f fps\n",
                sharded_fps);
    json.add("sharded/m5_fp32+m3_fp16", 1e9 / sharded_fps, 0.0, 4);
  }

  // --- precision sweep ---------------------------------------------------
  // Serve-side counterpart of bench_deployment_int8: the same M5 x2 model
  // behind EvalServer at each InferencePrecision, once single-worker and once
  // with the worker count saturating the machine. The saturation row is the
  // check that the int8 advantage survives contention: worker sessions run
  // with intra-op threads = 1, so per-worker quantize/pack scratch must not
  // serialize on shared state — if int8's speedup over fp32 collapses at
  // saturation, something in the int8 path is fighting the thread pool.
  {
    core::SesrInference quant(network);
    quant.calibrate_int8(pool);
    std::vector<core::LayerPrecision> plan(quant.convolutions().size(),
                                           core::LayerPrecision::kFp16);
    for (std::size_t i = 0; i < plan.size(); i += 2) plan[i] = core::LayerPrecision::kInt8;
    quant.set_hybrid_plan(plan);
    const int sat_workers =
        static_cast<int>(std::max(2U, std::thread::hardware_concurrency()));
    std::printf("\nprecision sweep (EvalServer, batch 4; saturation = %d workers):\n",
                sat_workers);
    std::printf("%8s %12s %12s %14s\n", "prec", "fps w1", "fps sat", "sat vs fp32");
    double fp32_sat_fps = 0.0;
    double int8_sat_fps = 0.0;
    for (const char* prec : {"fp32", "fp16", "int8", "hybrid"}) {
      const std::string p(prec);
      const core::InferencePrecision precision =
          p == "fp16"     ? core::InferencePrecision::kFp16
          : p == "int8"   ? core::InferencePrecision::kInt8
          : p == "hybrid" ? core::InferencePrecision::kHybrid
                          : core::InferencePrecision::kFp32;
      const SweepPoint one = run_point(quant, frame, 1, 4, frames, precision);
      const SweepPoint sat = run_point(quant, frame, sat_workers, 4, frames, precision);
      if (p == "fp32") fp32_sat_fps = sat.fps;
      if (p == "int8") int8_sat_fps = sat.fps;
      std::printf("%8s %12.1f %12.1f %13.2fx\n", prec, one.fps, sat.fps,
                  fp32_sat_fps > 0.0 ? sat.fps / fp32_sat_fps : 1.0);
      json.add("precision/" + p + "/w1", 1e9 / one.fps, 0.0, 1);
      json.add("precision/" + p + "/saturated", 1e9 / sat.fps, 0.0, sat_workers);
    }
    json.add("precision/int8_saturated_speedup_vs_fp32", int8_sat_fps / fp32_sat_fps, 0.0,
             sat_workers);
    std::printf("int8 speedup vs fp32 at saturation: %.2fx (single-worker advantage should "
                "persist; a collapse here means the int8 path serializes on shared state)\n",
                int8_sat_fps / fp32_sat_fps);
  }

  // --- SLO shedding under closed-loop overload ---------------------------
  // The admission-control claim: under sustained overload, shedding the
  // requests that cannot meet the budget keeps the ADMITTED requests' p99
  // near the unloaded baseline, where a block-everything server drags every
  // request to clients/throughput. 8 closed-loop clients against 2 workers
  // is 4x overload for this model (and leaves the 2-core CI box enough
  // headroom that client threads do not preempt the workers they measure).
  // The fp16 sibling route is registered so the degrade ladder has a real
  // rung to rewrite onto.
  {
    struct SloResult {
      double p99_ms = 0.0;
      std::uint64_t ok = 0;
      std::uint64_t shed = 0;
      std::uint64_t degraded = 0;
    };
    const auto run_slo = [&](int clients, std::int64_t budget_us, double seconds) -> SloResult {
      serve::NetworkRegistry registry;
      registry.add({"m5", 2, core::InferencePrecision::kFp32}, inference);
      registry.add({"m5", 2, core::InferencePrecision::kFp16}, inference);
      serve::ServeOptions options;
      options.workers = 2;
      // Latency-oriented shape: single-frame batches flushed immediately.
      // With batching on, a batch of N records N frames' worth of service
      // into each request's EWMA sample, and the estimator spirals itself
      // into shedding everything.
      options.max_batch = 1;
      options.max_delay_us = 0;
      options.queue_capacity = 16;
      options.slo.p99_budget_us = budget_us;  // 0 = admission inert (block policy)
      // Admit only to 70% of the budget: the controller cannot see scheduler
      // preemption on an oversubscribed box, so leave it slack.
      options.slo.headroom = 0.4;
      // Pure-shed comparison: degraded requests are admitted exactly when the
      // fp32 estimate is over budget — i.e. when the box is busiest — so they
      // ARE the latency tail. The degrade ladder is exercised by the tests;
      // this sweep isolates what shedding alone buys.
      options.slo.allow_degrade = false;
      serve::ShardedServer server(registry, options);
      const serve::RouteKey route{"m5", 2, core::InferencePrecision::kFp32};
      const serve::RouteKey fallback{"m5", 2, core::InferencePrecision::kFp16};
      // Warm both routes' service estimators serially (unrecorded): an
      // unwarmed controller admits everything optimistically, and that
      // startup burst would be the only thing the shed-mode p99 measures.
      for (int i = 0; i < 8; ++i) {
        server.submit(route, frame).get();
        server.submit(fallback, frame).get();
      }
      std::mutex merge;
      std::vector<double> latency_ms;
      std::atomic<std::uint64_t> ok{0};
      const auto stop_at = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                              std::chrono::duration<double>(seconds));
      std::vector<std::thread> threads;
      for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
          std::vector<double> local;
          while (Clock::now() < stop_at) {
            const auto t0 = Clock::now();
            try {
              server.submit(route, frame).get();
              ok.fetch_add(1, std::memory_order_relaxed);
              local.push_back(
                  std::chrono::duration<double, std::milli>(Clock::now() - t0).count());
            } catch (const serve::ShedError&) {
              // A real client backs off on a typed overload answer; without
              // this the loop busy-spins on the admission check and the
              // promise churn alone steals worker CPU. Stagger the backoff
              // per client: identical sleeps re-synchronize the herd, and a
              // burst arrival is exactly when an admitted request lands on a
              // busy box.
              std::this_thread::sleep_for(std::chrono::milliseconds(8 + c));
            }
          }
          std::lock_guard<std::mutex> lock(merge);
          latency_ms.insert(latency_ms.end(), local.begin(), local.end());
        });
      }
      for (auto& t : threads) t.join();
      server.shutdown();
      const serve::ShardedStats stats = server.stats();
      return {serve::percentile(std::move(latency_ms), 99.0), ok.load(), stats.total.shed,
              stats.total.degraded};
    };

    const double seconds = fast_mode() ? 1.5 : 4.0;
    const SloResult unloaded = run_slo(1, 0, seconds);
    // Budget: 1.5x the unloaded p99 — tight enough that queue waits blow it,
    // loose enough that an uncontended request always fits. Admission holds
    // the admitted p99 to roughly the budget, so the budget multiplier is
    // what the shed-mode ratio converges to.
    const auto budget_us = static_cast<std::int64_t>(unloaded.p99_ms * 1.5 * 1000.0);
    const SloResult shed_off = run_slo(8, 0, seconds);
    const SloResult shed_on = run_slo(8, budget_us, seconds);
    std::printf("\nSLO shedding under 8-client closed-loop overload (budget %.2f ms):\n",
                static_cast<double>(budget_us) / 1e3);
    std::printf("  unloaded (1 client)   p99 %8.2f ms  (%llu ok)\n", unloaded.p99_ms,
                static_cast<unsigned long long>(unloaded.ok));
    std::printf("  overload, no shedding p99 %8.2f ms  (%.1fx unloaded; every request queues)\n",
                shed_off.p99_ms, shed_off.p99_ms / unloaded.p99_ms);
    std::printf("  overload, shedding    p99 %8.2f ms  (%.1fx unloaded, target <= 1.5x; "
                "%llu ok, %llu shed, %llu degraded)\n",
                shed_on.p99_ms, shed_on.p99_ms / unloaded.p99_ms,
                static_cast<unsigned long long>(shed_on.ok),
                static_cast<unsigned long long>(shed_on.shed),
                static_cast<unsigned long long>(shed_on.degraded));
    json.add("slo/unloaded_p99", unloaded.p99_ms * 1e6, 0.0, 1);
    json.add("slo/overload_noshed_p99", shed_off.p99_ms * 1e6, 0.0, 8);
    json.add("slo/overload_shed_p99", shed_on.p99_ms * 1e6, 0.0, 8);
    json.add("slo/overload_shed_vs_unloaded", shed_on.p99_ms / unloaded.p99_ms, 0.0, 8);
    json.add("slo/overload_noshed_vs_unloaded", shed_off.p99_ms / unloaded.p99_ms, 0.0, 8);
  }
  return 0;
}
