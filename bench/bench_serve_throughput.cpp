// Throughput/latency sweep of the batched eval server: micro-batch size x
// worker count on 64x64 x2 Y frames, against the single-threaded full-frame
// baseline (one SesrInference::upscale per frame, intra-op pool pinned to 1).
//
// The server is configured the way a throughput deployment would be: intra-op
// threads = 1 so worker sessions scale across cores instead of fighting over
// one shared pool (docs/SERVING.md, "threading model"). The acceptance bar
// from the serving roadmap: >= 2x the single-threaded FPS at 4 workers — this
// needs >= 2 physical cores to be reachable; the headline prints the detected
// core count so a 1-core CI box reads as expected, not as a regression.
//
// Knobs: SESR_BENCH_FAST=1 quarters the frame budget (CI mode).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/sesr_inference.hpp"
#include "core/sesr_network.hpp"
#include "serve/server.hpp"
#include "tensor/thread_pool.hpp"

namespace {

using namespace sesr;
using Clock = std::chrono::steady_clock;

bool fast_mode() {
  const char* v = std::getenv("SESR_BENCH_FAST");
  return v != nullptr && std::string(v) != "0";
}

struct SweepPoint {
  int workers;
  std::int64_t max_batch;
  double fps;
  double p50_ms;
  double p95_ms;
  double p99_ms;
};

SweepPoint run_point(const core::SesrInference& inference, const Tensor& frame, int workers,
                     std::int64_t max_batch, std::int64_t frames) {
  serve::ServeOptions options;
  options.workers = workers;
  options.max_batch = max_batch;
  options.max_delay_us = 500;
  options.queue_capacity = static_cast<std::size_t>(4 * max_batch * workers);
  options.overload = serve::OverloadPolicy::kBlock;  // closed loop: saturation probe
  serve::EvalServer server(inference, options);
  std::vector<std::future<Tensor>> pending;
  pending.reserve(static_cast<std::size_t>(frames));
  const auto start = Clock::now();
  for (std::int64_t i = 0; i < frames; ++i) pending.push_back(server.submit(frame));
  for (auto& f : pending) f.get();
  const double wall = std::chrono::duration<double>(Clock::now() - start).count();
  server.shutdown();
  const serve::ServerStats stats = server.stats();
  return {workers,        max_batch,           static_cast<double>(frames) / wall,
          stats.p50_us / 1e3, stats.p95_us / 1e3, stats.p99_us / 1e3};
}

}  // namespace

int main() {
  ThreadPool::set_global_threads(1);
  Rng rng(42);
  core::SesrNetwork network(core::sesr_m5(2), rng);
  const core::SesrInference inference(network);
  Tensor frame(1, 64, 64, 1);
  Rng frame_rng(43);
  frame.fill_uniform(frame_rng, 0.0F, 1.0F);
  const std::int64_t frames = fast_mode() ? 64 : 256;

  // Baseline: single-threaded full-frame loop (what one CLI call does).
  const auto base_start = Clock::now();
  for (std::int64_t i = 0; i < frames; ++i) {
    const Tensor out = inference.upscale(frame);
    (void)out;
  }
  const double base_wall = std::chrono::duration<double>(Clock::now() - base_start).count();
  const double base_fps = static_cast<double>(frames) / base_wall;

  std::printf("bench_serve_throughput — %s, 64x64 x2, %lld frames, %u hardware threads\n",
              inference.name().c_str(), static_cast<long long>(frames),
              std::thread::hardware_concurrency());
  std::printf("baseline single-threaded full-frame: %.1f fps\n\n", base_fps);
  std::printf("%8s %10s %10s %9s %9s %9s %9s\n", "workers", "max_batch", "fps", "speedup",
              "p50_ms", "p95_ms", "p99_ms");
  bench::BenchJson json("serve_throughput");
  json.add("baseline/full_frame", 1e9 / base_fps, 0.0, 1);
  double speedup_4w = 0.0;
  for (const int workers : {1, 2, 4}) {
    for (const std::int64_t max_batch : {1, 4, 8}) {
      const SweepPoint p = run_point(inference, frame, workers, max_batch, frames);
      const double speedup = p.fps / base_fps;
      if (workers == 4) speedup_4w = std::max(speedup_4w, speedup);
      std::printf("%8d %10lld %10.1f %8.2fx %9.2f %9.2f %9.2f\n", p.workers,
                  static_cast<long long>(p.max_batch), p.fps, speedup, p.p50_ms, p.p95_ms,
                  p.p99_ms);
      json.add("workers" + std::to_string(workers) + "/batch" + std::to_string(max_batch),
               1e9 / p.fps, 0.0, workers);
    }
  }
  std::printf("\nbest 4-worker speedup vs single-threaded baseline: %.2fx (target >= 2x on >= 2 cores)\n",
              speedup_4w);
  return 0;
}
