// Precision sweep of collapsed inference: fp32 vs fp16 (binary16 storage,
// fp32 accumulate, F16C conversions) vs int8, across full-frame and
// exact-halo tiled execution, at 1 and 4 intra-op threads, on SESR-M5 / M11 /
// XL x2.
//
// The deployment claim under test (docs/PERFORMANCE.md, "Precision"): halving
// the activation/weight bytes moves the memory-bound collapsed convs enough
// that fp16 full-frame single-thread SESR-M5 x2 runs >= 1.3x fp32. The
// headline line prints that ratio explicitly. int8 rides along as the other
// deployment precision (full-frame only; the quantized path has no tiled
// driver).
//
// Knobs: SESR_BENCH_FAST=1 shrinks the frame and iteration budget;
// SESR_BENCH_JSON=<dir> writes BENCH_fp16_inference.json.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/quantize.hpp"
#include "core/sesr_inference.hpp"
#include "core/sesr_network.hpp"
#include "core/tiled_inference.hpp"
#include "data/synthetic.hpp"
#include "tensor/thread_pool.hpp"

namespace {

using namespace sesr;
using Clock = std::chrono::steady_clock;

// Best-of-N wall time per call, in milliseconds.
template <typename Fn>
double best_ms(int iters, Fn&& fn) {
  double best = 1e300;
  for (int i = 0; i < iters; ++i) {
    const auto t0 = Clock::now();
    fn();
    const double ms = std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    if (ms < best) best = ms;
  }
  return best;
}

}  // namespace

int main() {
  bench::print_header("fp16 inference — precision x execution mode x threads",
                      "deployment precision study (fp16 storage, fp32 accumulate)");
  const std::int64_t edge = bench::fast_mode() ? 96 : 192;
  const int iters = bench::fast_mode() ? 2 : 5;
  Rng irng(3);
  const Tensor frame = data::synthesize_image(data::ImageFamily::kNatural, edge, edge, irng);
  std::vector<Tensor> calib;
  for (int i = 0; i < 3; ++i) {
    calib.push_back(data::synthesize_image(data::ImageFamily::kObjects, 48, 48, irng));
  }
  std::printf("frame: %lldx%lld LR, best of %d runs, isa %s\n\n",
              static_cast<long long>(edge), static_cast<long long>(edge), iters,
              bench::host_isa_string().c_str());
  std::printf("%-6s %-7s %-6s %8s %10s %9s\n", "net", "prec", "mode", "threads", "ms/frame",
              "vs fp32");

  bench::BenchJson json("fp16_inference");
  core::TilingOptions tiling;
  tiling.tile_h = tiling.tile_w = 64;
  double m5_fp32_t1 = 0.0;
  double m5_fp16_t1 = 0.0;

  const std::pair<const char*, core::SesrConfig> nets[] = {
      {"m5", core::sesr_m5(2)}, {"m11", core::sesr_m11(2)}, {"xl", core::sesr_xl(2)}};
  for (const auto& [net_name, config] : nets) {
    Rng rng(41);
    core::SesrNetwork network(config, rng);
    core::SesrInference inference(network);
    const core::QuantizedSesr quant(inference, calib);
    for (const char* mode : {"full", "tiled"}) {
      const bool tiled = std::string(mode) == "tiled";
      for (const int threads : {1, 4}) {
        ThreadPool::set_global_threads(static_cast<unsigned>(threads));
        double fp32_ms = 0.0;
        for (const char* prec : {"fp32", "fp16", "int8"}) {
          if (tiled && std::string(prec) == "int8") continue;  // no tiled int8 driver
          double ms = 0.0;
          if (std::string(prec) == "int8") {
            ms = best_ms(iters, [&] { volatile float v = quant.upscale(frame).raw()[0]; (void)v; });
          } else {
            inference.set_precision(std::string(prec) == "fp16"
                                        ? core::InferencePrecision::kFp16
                                        : core::InferencePrecision::kFp32);
            ms = best_ms(iters, [&] {
              volatile float v = (tiled ? core::upscale_tiled(inference, frame, tiling)
                                        : inference.upscale(frame))
                                     .raw()[0];
              (void)v;
            });
          }
          if (std::string(prec) == "fp32") fp32_ms = ms;
          if (std::string(net_name) == "m5" && !tiled && threads == 1) {
            if (std::string(prec) == "fp32") m5_fp32_t1 = ms;
            if (std::string(prec) == "fp16") m5_fp16_t1 = ms;
          }
          std::printf("%-6s %-7s %-6s %8d %10.2f %8.2fx\n", net_name, prec, mode, threads, ms,
                      fp32_ms / ms);
          json.add(std::string(net_name) + "/" + prec + "/" + mode + "/t" +
                       std::to_string(threads),
                   ms * 1e6, 0.0, threads);
        }
      }
    }
    inference.set_precision(core::InferencePrecision::kFp32);
  }
  ThreadPool::set_global_threads(1);
  std::printf(
      "\nSESR-M5 x2 full-frame single-thread: fp16 %.2f ms vs fp32 %.2f ms = %.2fx "
      "(target >= 1.3x on AVX2+F16C hosts)\n",
      m5_fp16_t1, m5_fp32_t1, m5_fp32_t1 / m5_fp16_t1);
  return 0;
}
