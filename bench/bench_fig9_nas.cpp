// Reproduces Fig. 9 / Section 5.6's NAS study: latency-constrained search over
// the SESR block space (even/asymmetric kernels, width, depth) on the
// 200x200 -> 400x400 task. Two searches, mirroring Fig. 9(b) and 9(c):
//   (1) budget = 85% of SESR-M5's simulated latency — the paper's NAS found a
//       net ~15% faster than SESR-M5 at matched PSNR;
//   (2) budget = 50% of SESR-M5's latency — the paper's result matches
//       SESR-M3 quality while being faster than SESR-M3.
#include <cstdio>

#include "bench_common.hpp"
#include "core/macs.hpp"
#include "core/paper_reference.hpp"
#include "nas/dnas.hpp"
#include "nas/evolution.hpp"

using namespace sesr;

namespace {
nas::Genome sesr_genome(std::int64_t m) {
  nas::Genome g;
  g.f = 16;
  g.scale = 2;
  g.first = {5, 5};
  g.last = {5, 5};
  g.blocks.assign(static_cast<std::size_t>(m), nas::KernelChoice{3, 3});
  return g;
}
}  // namespace

int main() {
  bench::print_header("Fig. 9 / Sec. 5.6 — NAS over the SESR space (200x200 -> 400x400)",
                      "Bhardwaj et al., MLSys 2022, Figure 9, Section 5.6");
  const hw::NpuConfig npu = hw::ethos_n78_like();
  Rng data_rng(5);
  data::SrDataset corpus =
      data::SrDataset::synthetic_corpus(bench::fast_mode() ? 4 : 8, 48, 48, 2, data_rng);

  const std::int64_t lat_h = 200;
  const std::int64_t lat_w = 200;
  const double m5_latency = nas::candidate_latency_ms(sesr_genome(5), npu, lat_h, lat_w);
  const double m3_latency = nas::candidate_latency_ms(sesr_genome(3), npu, lat_h, lat_w);
  std::printf("reference latencies: SESR-M5 %.3f ms, SESR-M3 %.3f ms\n\n", m5_latency, m3_latency);

  nas::SearchOptions options;
  options.population = bench::fast_mode() ? 4 : 8;
  options.generations = bench::fast_mode() ? 2 : 4;
  options.keep_top = options.population / 4 + 1;
  options.latency_h = lat_h;
  options.latency_w = lat_w;
  options.proxy_steps = static_cast<std::int64_t>(bench::scaled_steps(40));
  options.proxy_expand = 32;
  options.proxy_crop = 12;
  options.eval_images = 2;
  options.min_depth = 3;
  options.max_depth = 9;

  // Reference proxy PSNRs under the identical training budget.
  Rng oracle_rng(17);
  const double m5_psnr = nas::candidate_proxy_psnr(sesr_genome(5), corpus, options, oracle_rng);
  const double m3_psnr = nas::candidate_proxy_psnr(sesr_genome(3), corpus, options, oracle_rng);
  std::printf("reference proxy PSNR: SESR-M5 %.2f dB, SESR-M3 %.2f dB\n\n", m5_psnr, m3_psnr);

  struct Study {
    const char* label;
    double budget_fraction;
    double reference_psnr;
    const char* paper_claim;
  };
  const Study studies[] = {
      {"Fig. 9(b): budget 85% of SESR-M5", 0.85, m5_psnr,
       "paper: 15% lower latency than SESR-M5 at matched PSNR"},
      {"Fig. 9(c): budget 50% of SESR-M5", 0.50, m3_psnr,
       "paper: matches SESR-M3 PSNR at lower latency than SESR-M3"},
  };
  for (const Study& study : studies) {
    options.latency_limit_ms = m5_latency * study.budget_fraction;
    options.seed = 0x9a5'0002 + static_cast<std::uint64_t>(study.budget_fraction * 100);
    const nas::SearchResult result = nas::evolutionary_search(corpus, npu, options);
    std::printf("%s (limit %.3f ms)\n", study.label, options.latency_limit_ms);
    std::printf("  best: %s\n", result.best.genome.describe().c_str());
    std::printf("  latency %.3f ms (%.0f%% of SESR-M5)  proxy PSNR %.2f dB (ref %.2f dB)  "
                "params %.2fK  feasible=%d\n",
                result.best.latency_ms, 100.0 * result.best.latency_ms / m5_latency,
                result.best.psnr, study.reference_psnr,
                static_cast<double>(result.best.genome.parameter_count()) * 1e-3,
                result.best.feasible ? 1 : 0);
    std::printf("  %s\n", study.paper_claim);
    int even_or_asym = 0;
    for (const auto& k : result.best.genome.blocks) {
      if (!k.odd() || k.kh != k.kw) ++even_or_asym;
    }
    std::printf("  even/asymmetric kernels in the found net: %d of %zu blocks "
                "(paper's Fig. 9(b) net uses them in 7 of 8)\n\n",
                even_or_asym, result.best.genome.blocks.size());
  }

  // --- DNAS (the paper's actual method) --------------------------------------
  std::printf("Differentiable NAS (the paper's Section 3.4 method):\n");
  nas::DnasOptions dnas;
  dnas.slots = 7;
  dnas.f = 16;
  dnas.expand = 32;
  dnas.scale = 2;
  dnas.steps = bench::scaled_steps(120);
  dnas.latency_h = lat_h;
  dnas.latency_w = lat_w;
  dnas.latency_weight = 0.01;  // hardware-aware penalty (mild: keep accuracy in charge)
  const nas::DnasResult dresult = nas::dnas_search(corpus, npu, dnas);
  std::printf("  decoded: %s\n", dresult.genome.describe().c_str());
  std::printf("  supernet final L1 %.4f, relaxed E[latency] %.3f ms, decoded latency %.3f ms "
              "(%.0f%% of SESR-M5)\n",
              dresult.supernet_final_loss, dresult.expected_latency_ms,
              dresult.decoded_latency_ms, 100.0 * dresult.decoded_latency_ms / m5_latency);
  Rng drng(23);
  const double dnas_psnr = nas::candidate_proxy_psnr(dresult.genome, corpus, options, drng);
  std::printf("  proxy PSNR after retraining: %.2f dB (SESR-M5 ref %.2f dB)\n", dnas_psnr,
              m5_psnr);
  int even_or_asym = 0;
  for (const auto& k : dresult.genome.blocks) {
    if (!k.odd() || k.kh != k.kw) ++even_or_asym;
  }
  std::printf("  even/asymmetric kernels: %d of %zu blocks (paper: 7 of 8)\n", even_or_asym,
              dresult.genome.blocks.size());
  return 0;
}
