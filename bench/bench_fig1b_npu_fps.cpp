// Reproduces Fig. 1(b): theoretical FPS of SISR models performing 1080p -> 4K
// (x2) on a commercial 4-TOP/s mobile NPU. The paper's claims: most published
// models land below 3 FPS, FSRCNN manages ~37 FPS *best case* (compute-bound
// bound; its measured Table-3 number is ~6 FPS), and three of five SESR
// configurations reach ~60 FPS or more in the best case.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/macs.hpp"
#include "hw/network_ir.hpp"
#include "hw/npu_simulator.hpp"

using namespace sesr;

int main() {
  bench::print_header("Fig. 1(b) — FPS on a 4-TOP/s mobile NPU, 1080p->4K (x2)",
                      "Bhardwaj et al., MLSys 2022, Figure 1(b)");
  const hw::NpuConfig npu = hw::ethos_n78_like();
  constexpr std::int64_t kH = 1080;
  constexpr std::int64_t kW = 1920;

  struct Row {
    std::string name;
    hw::NetworkIr ir;
    double paper_fps;  // approximate values read off Fig. 1(b); 0 = not shown
  };
  std::vector<Row> rows;
  rows.push_back({"VDSR", hw::vdsr_ir(kH, kW, 2), 0.1});
  rows.push_back({"CARN-M (budget-matched)",
                  hw::generic_residual_ir("CARN-M", kH, kW, 2, 64, 91'200'000'000LL * 9), 0.5});
  rows.push_back({"LapSRN (budget-matched)",
                  hw::generic_residual_ir("LapSRN", kH, kW, 2, 64, 29'900'000'000LL * 9), 1.5});
  rows.push_back({"TPSR-NoGAN (budget-matched)",
                  hw::generic_residual_ir("TPSR", kH, kW, 2, 18, 14'000'000'000LL * 9), 0.0});
  rows.push_back({"FSRCNN", hw::fsrcnn_ir(kH, kW, 2), 6.0});
  for (const auto& cfg : {core::sesr_m3(2), core::sesr_m5(2), core::sesr_m7(2),
                          core::sesr_m11(2), core::sesr_xl(2)}) {
    rows.push_back({cfg.describe(), hw::sesr_ir(core::hardware_variant(cfg), kH, kW), 0.0});
  }

  std::printf("%-34s %10s %10s %10s %12s\n", "model", "GMACs", "runtime", "FPS",
              "best-case FPS");
  std::printf("%-34s %10s %10s %10s %12s\n", "", "", "(ms)", "(simulated)",
              "(compute only)");
  int sesr_over_30 = 0;
  for (const Row& row : rows) {
    const hw::PerfReport r = hw::simulate(row.ir, npu);
    // "Best case, 100% utilization" FPS as the paper plots in Fig. 1(b).
    const double best_fps =
        1.0 / (static_cast<double>(r.macs) / (npu.tops * 1e12 / 2.0));
    std::printf("%-34s %9.1fG %9.2fms %10.2f %12.1f", row.name.c_str(),
                static_cast<double>(r.macs) * 1e-9, r.runtime_ms, r.fps, best_fps);
    if (row.paper_fps > 0.0) std::printf("   (paper ~%.1f FPS)", row.paper_fps);
    std::printf("\n");
    if (row.name.rfind("SESR", 0) == 0 && best_fps >= 50.0) ++sesr_over_30;
  }
  std::printf("\npaper: 'three out of five SESR CNNs theoretically achieve nearly 60 FPS or\n"
              "more' (best-case, 100%% utilization); here %d of 5 SESR configs reach >= 50\n"
              "best-case FPS, and the big published CNNs stay below 3 FPS either way.\n",
              sesr_over_30);
  return 0;
}
