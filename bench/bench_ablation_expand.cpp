// Ablation: the expansion width p inside collapsible linear blocks.
//
// The paper fixes p = 256 ("p >> x", Section 5.1) without an ablation; this
// bench supplies one. Expectation from the Section 4 analysis: larger p gives
// more overparameterized (more adaptive) dynamics and better PSNR at a fixed
// budget, with diminishing returns — while the *deployed* network is identical
// (same collapsed parameter count) for every p, which the bench also asserts.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/sesr_inference.hpp"
#include "core/sesr_network.hpp"
#include "core/training_macs.hpp"

using namespace sesr;

int main() {
  bench::print_header("Ablation — expansion width p inside linear blocks",
                      "design choice from Sec. 3.1/5.1 (paper fixes p=256)");
  data::SrDataset corpus = bench::training_corpus(2);
  bench::TrainSpec spec;

  std::printf("%-10s %16s %14s %20s\n", "p", "collapsed params", "val PSNR",
              "collapse MACs/step");
  std::int64_t deployed_params_at_16 = -1;
  for (const std::int64_t p : std::vector<std::int64_t>{16, 64, 128, 256}) {
    core::SesrConfig cfg = core::sesr_m5(2);
    cfg.expand = p;
    Rng rng(7);
    core::SesrNetwork net(cfg, rng);
    bench::train_model(net, corpus, spec);
    const double psnr = bench::validation_psnr(net, corpus);
    core::SesrInference deployed(net);
    const core::TrainingMacReport macs =
        core::training_forward_macs(cfg, spec.batch, spec.crop, spec.crop);
    std::printf("%-10lld %16lld %11.2f dB %17.2fM\n", static_cast<long long>(p),
                static_cast<long long>(deployed.parameter_count()), psnr,
                static_cast<double>(macs.collapse_macs) * 1e-6);
    if (deployed_params_at_16 < 0) deployed_params_at_16 = deployed.parameter_count();
    if (deployed.parameter_count() != deployed_params_at_16) {
      std::printf("  ERROR: deployed parameter count changed with p!\n");
      return 1;
    }
  }
  std::printf("\nall values of p collapse to the identical 13520-parameter deployment\n"
              "network; p only changes the training dynamics (and the tiny per-step\n"
              "Algorithm-1 cost), which is the method's central property.\n");
  return 0;
}
