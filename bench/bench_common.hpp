// Shared plumbing for the reproduction benches: environment knobs, the
// common train-and-evaluate loop, and paper-vs-measured printing.
//
// Knobs:
//   SESR_BENCH_FAST=1    — quarter the training budget and shrink eval sets
//                          (CI mode; orderings still hold, margins shrink).
//   SESR_BENCH_STEPS=N   — override the training-step budget exactly.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "data/benchmark_sets.hpp"
#include "data/dataset.hpp"
#include "metrics/evaluate.hpp"
#include "metrics/psnr.hpp"
#include "train/trainer.hpp"

namespace sesr::bench {

inline bool fast_mode() {
  const char* v = std::getenv("SESR_BENCH_FAST");
  return v != nullptr && std::string(v) != "0";
}

// Scales a full-budget step count by the environment knobs.
inline std::int64_t scaled_steps(std::int64_t full) {
  if (const char* v = std::getenv("SESR_BENCH_STEPS")) {
    const long n = std::strtol(v, nullptr, 10);
    if (n > 0) return n;
  }
  return fast_mode() ? std::max<std::int64_t>(10, full / 4) : full;
}

// Standard training corpus for all quality benches (stands in for DIV2K).
inline data::SrDataset training_corpus(std::int64_t scale, std::uint64_t seed = 0xD112'0001) {
  Rng rng(seed);
  const std::int64_t count = fast_mode() ? 8 : 16;
  return data::SrDataset::synthetic_corpus(count, 64, 64, scale, rng);
}

struct TrainSpec {
  std::int64_t steps = 400;
  std::int64_t batch = 4;
  std::int64_t crop = 16;  // LR crop; paper uses 64 on DIV2K
  float lr = 5e-4F;        // paper: Adam, constant 5e-4
};

// Trains a model with the paper's protocol (Adam, constant LR, L1 loss) on
// random LR/HR patches and returns the history.
inline train::TrainHistory train_model(train::Model& model, const data::SrDataset& dataset,
                                       const TrainSpec& spec, std::uint64_t batch_seed = 7) {
  train::Adam adam(spec.lr);
  train::ConstantLr schedule(spec.lr);
  train::Trainer trainer(model, adam, schedule, train::l1_loss);
  Rng batch_rng(batch_seed);
  train::TrainOptions options;
  options.steps = scaled_steps(spec.steps);
  return trainer.run(
      [&](std::int64_t) { return dataset.sample_batch(spec.batch, spec.crop, batch_rng); },
      options);
}

// Mean PSNR of a model over the training corpus' held-out full images
// (our "DIV2K validation" for the Section 5.4/5.5 studies).
inline double validation_psnr(train::Model& model, const data::SrDataset& dataset,
                              std::size_t images = 4) {
  double total = 0.0;
  const std::size_t count = std::min(images, dataset.size());
  for (std::size_t i = 0; i < count; ++i) {
    auto [lr_img, hr_img] = dataset.image_pair(i);
    total += metrics::psnr_shaved(model.predict(lr_img), hr_img, dataset.scale());
  }
  return total / static_cast<double>(count);
}

inline std::vector<data::BenchmarkSet> eval_sets() {
  return data::make_benchmark_sets(fast_mode() ? 48 : 64, /*reduced=*/true);
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("mode: %s (SESR_BENCH_FAST=%d)\n", fast_mode() ? "fast/CI" : "full", fast_mode());
  std::printf("================================================================\n");
}

inline void print_quality_row(const std::string& model, double params_k, double macs_g,
                              const std::vector<metrics::QualityScore>& scores) {
  std::printf("%-28s %9.2fK %8.2fG", model.c_str(), params_k, macs_g);
  for (const auto& s : scores) std::printf("  %6.2f/%.4f", s.psnr, s.ssim);
  std::printf("\n");
}

}  // namespace sesr::bench
