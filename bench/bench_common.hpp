// Shared plumbing for the reproduction benches: environment knobs, the
// common train-and-evaluate loop, and paper-vs-measured printing.
//
// Knobs:
//   SESR_BENCH_FAST=1    — quarter the training budget and shrink eval sets
//                          (CI mode; orderings still hold, margins shrink).
//   SESR_BENCH_STEPS=N   — override the training-step budget exactly.
//   SESR_BENCH_JSON=dir  — also write machine-readable results to
//                          <dir>/BENCH_<bench-name>.json (see BenchJson).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "data/benchmark_sets.hpp"
#include "data/dataset.hpp"
#include "metrics/evaluate.hpp"
#include "metrics/psnr.hpp"
#include "nn/gemm.hpp"
#include "tensor/fp16.hpp"
#include "train/trainer.hpp"

namespace sesr::bench {

inline bool fast_mode() {
  const char* v = std::getenv("SESR_BENCH_FAST");
  return v != nullptr && std::string(v) != "0";
}

// Scales a full-budget step count by the environment knobs.
inline std::int64_t scaled_steps(std::int64_t full) {
  if (const char* v = std::getenv("SESR_BENCH_STEPS")) {
    const long n = std::strtol(v, nullptr, 10);
    if (n > 0) return n;
  }
  return fast_mode() ? std::max<std::int64_t>(10, full / 4) : full;
}

// Standard training corpus for all quality benches (stands in for DIV2K).
inline data::SrDataset training_corpus(std::int64_t scale, std::uint64_t seed = 0xD112'0001) {
  Rng rng(seed);
  const std::int64_t count = fast_mode() ? 8 : 16;
  return data::SrDataset::synthetic_corpus(count, 64, 64, scale, rng);
}

struct TrainSpec {
  std::int64_t steps = 400;
  std::int64_t batch = 4;
  std::int64_t crop = 16;  // LR crop; paper uses 64 on DIV2K
  float lr = 5e-4F;        // paper: Adam, constant 5e-4
};

// Trains a model with the paper's protocol (Adam, constant LR, L1 loss) on
// random LR/HR patches and returns the history.
inline train::TrainHistory train_model(train::Model& model, const data::SrDataset& dataset,
                                       const TrainSpec& spec, std::uint64_t batch_seed = 7) {
  train::Adam adam(spec.lr);
  train::ConstantLr schedule(spec.lr);
  train::Trainer trainer(model, adam, schedule, train::l1_loss);
  Rng batch_rng(batch_seed);
  train::TrainOptions options;
  options.steps = scaled_steps(spec.steps);
  return trainer.run(
      [&](std::int64_t) { return dataset.sample_batch(spec.batch, spec.crop, batch_rng); },
      options);
}

// Mean PSNR of a model over the training corpus' held-out full images
// (our "DIV2K validation" for the Section 5.4/5.5 studies).
inline double validation_psnr(train::Model& model, const data::SrDataset& dataset,
                              std::size_t images = 4) {
  double total = 0.0;
  const std::size_t count = std::min(images, dataset.size());
  for (std::size_t i = 0; i < count; ++i) {
    auto [lr_img, hr_img] = dataset.image_pair(i);
    total += metrics::psnr_shaved(model.predict(lr_img), hr_img, dataset.scale());
  }
  return total / static_cast<double>(count);
}

inline std::vector<data::BenchmarkSet> eval_sets() {
  return data::make_benchmark_sets(fast_mode() ? 48 : 64, /*reduced=*/true);
}

// The vector ISA the kernels actually dispatch to on this host (what a
// BENCH_*.json consumer needs to compare runs across machines).
inline std::string host_isa_string() {
  std::string isa = nn::gemm_avx2_supported() ? "avx2" : "generic";
  if (fp16::f16c_supported()) isa += "+f16c";
  return isa;
}

// Escapes a string for embedding inside a JSON string literal: backslash and
// double quote are backslash-escaped, control characters (< 0x20) become
// \n/\t/\r/\b/\f or \u00XX. Bench and case names routinely carry user input
// (paths, shape specs), so emitting them raw would produce invalid JSON.
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned char>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Machine-readable bench results. Rows accumulate in memory; if the
// SESR_BENCH_JSON=<dir> knob is set, the destructor writes them to
// <dir>/BENCH_<bench-name>.json so CI can track the perf trajectory. With the
// knob unset this is a no-op and benches print their usual tables only.
class BenchJson {
 public:
  explicit BenchJson(std::string bench_name) : name_(std::move(bench_name)) {}

  BenchJson(const BenchJson&) = delete;
  BenchJson& operator=(const BenchJson&) = delete;

  // gb_per_s <= 0 means "not a bandwidth-style measurement" (emitted as null).
  void add(const std::string& case_name, double ns_per_op, double gb_per_s, int threads) {
    rows_.push_back({case_name, ns_per_op, gb_per_s, threads});
  }

  ~BenchJson() {
    const char* dir = std::getenv("SESR_BENCH_JSON");
    if (dir == nullptr || *dir == '\0' || rows_.empty()) return;
    const std::string path = std::string(dir) + "/BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "BenchJson: cannot write %s\n", path.c_str());
      return;
    }
    const std::string isa = json_escape(host_isa_string());
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"isa\": \"%s\",\n  \"results\": [\n",
                 json_escape(name_).c_str(), isa.c_str());
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      std::fprintf(f, "    {\"name\": \"%s\", \"ns_per_op\": %.3f, \"gb_per_s\": ",
                   json_escape(r.name).c_str(), r.ns_per_op);
      if (r.gb_per_s > 0.0) {
        std::fprintf(f, "%.3f", r.gb_per_s);
      } else {
        std::fprintf(f, "null");
      }
      std::fprintf(f, ", \"threads\": %d, \"isa\": \"%s\"}%s\n", r.threads, isa.c_str(),
                   i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s (%zu rows)\n", path.c_str(), rows_.size());
  }

 private:
  struct Row {
    std::string name;
    double ns_per_op;
    double gb_per_s;
    int threads;
  };
  std::string name_;
  std::vector<Row> rows_;
};

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("mode: %s (SESR_BENCH_FAST=%d)\n", fast_mode() ? "fast/CI" : "full", fast_mode());
  std::printf("================================================================\n");
}

inline void print_quality_row(const std::string& model, double params_k, double macs_g,
                              const std::vector<metrics::QualityScore>& scores) {
  std::printf("%-28s %9.2fK %8.2fG", model.c_str(), params_k, macs_g);
  for (const auto& s : scores) std::printf("  %6.2f/%.4f", s.psnr, s.ssim);
  std::printf("\n");
}

}  // namespace sesr::bench
