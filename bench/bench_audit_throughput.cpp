// Microbenchmarks of the numerical-audit trials themselves.
//
// The audit sweeps (tools/sesr-audit, the sesr_audit_quick ctest) spend most
// of their time in the double-precision references, which are deliberately
// naive. These benchmarks track the per-trial cost of the heavyweight pairs
// so a reference rewrite or a new expensive pair shows up as a wall-clock
// regression in CI budgets rather than a mysteriously slow audit.
#include <benchmark/benchmark.h>

#include <string>

#include "check/audit.hpp"

namespace {

void run_pair_trials(benchmark::State& state, const std::string& name) {
  const sesr::check::AuditPair* pair = sesr::check::find_pair(name);
  if (pair == nullptr) {
    state.SkipWithError(("unknown audit pair: " + name).c_str());
    return;
  }
  std::uint64_t index = 0;
  for (auto _ : state) {
    const std::uint64_t seed = sesr::check::trial_seed(0x5E5A0D17ULL, pair->name,
                                                       static_cast<int>(index++ % 32));
    sesr::check::TrialResult result = pair->trial(seed);
    benchmark::DoNotOptimize(result.stats.max_ulp);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_AuditTrial_GemmScalar(benchmark::State& state) {
  run_pair_trials(state, "gemm_scalar");
}
void BM_AuditTrial_Conv2dStriped(benchmark::State& state) {
  run_pair_trials(state, "conv2d_striped");
}
void BM_AuditTrial_Winograd(benchmark::State& state) {
  run_pair_trials(state, "conv2d_winograd");
}
void BM_AuditTrial_Int8Conv(benchmark::State& state) {
  run_pair_trials(state, "conv2d_int8");
}
void BM_AuditTrial_QuantizedSesr(benchmark::State& state) {
  run_pair_trials(state, "quantized_sesr");
}
void BM_AuditTrial_ResizeBicubic(benchmark::State& state) {
  run_pair_trials(state, "resize_bicubic");
}

BENCHMARK(BM_AuditTrial_GemmScalar)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AuditTrial_Conv2dStriped)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AuditTrial_Winograd)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AuditTrial_Int8Conv)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AuditTrial_QuantizedSesr)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_AuditTrial_ResizeBicubic)->Unit(benchmark::kMillisecond);

}  // namespace
