// Robustness study for the NPU model: how the Table 3 runtime inversion
// (FSRCNN/SESR-M5, 2x MACs -> ~6x runtime) depends on the simulator's
// calibrated constants. The claim should be a property of the architecture
// pair, not of one lucky parameter point — this sweep shows the inversion
// holds across a wide band of DRAM bandwidths and SRAM budgets, and shows
// where it finally collapses (bandwidth so high that both nets go
// compute-bound, where the ratio approaches the 1.9x MAC ratio).
#include <cstdio>

#include "bench_common.hpp"
#include "hw/network_ir.hpp"
#include "hw/npu_simulator.hpp"

using namespace sesr;

int main() {
  bench::print_header("NPU-model sensitivity — Table 3 inversion vs hardware constants",
                      "robustness of the Section 5.6 reproduction");
  const hw::NetworkIr fsrcnn = hw::fsrcnn_ir(1080, 1920, 2);
  const hw::NetworkIr sesr = hw::sesr_ir(core::hardware_variant(core::sesr_m5(2)), 1080, 1920);

  std::printf("DRAM bandwidth sweep (cascade 1 MiB, line buffer 512 KiB):\n");
  std::printf("%12s %14s %14s %12s\n", "GB/s", "FSRCNN (ms)", "SESR-M5 (ms)", "ratio");
  for (const double gbps : {2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 256.0}) {
    hw::NpuConfig cfg = hw::ethos_n78_like();
    cfg.dram_gbps = gbps;
    const auto f = hw::simulate(fsrcnn, cfg);
    const auto s = hw::simulate(sesr, cfg);
    std::printf("%12.0f %14.2f %14.2f %11.2fx\n", gbps, f.runtime_ms, s.runtime_ms,
                f.runtime_ms / s.runtime_ms);
  }
  std::printf("(as bandwidth -> inf both nets become compute-bound and the ratio falls to\n"
              " the 1.93x MAC ratio; at mobile-class bandwidths the inversion dominates)\n\n");

  std::printf("Cascade-SRAM sweep (8 GB/s DRAM):\n");
  std::printf("%12s %10s %10s %14s %14s %12s\n", "SRAM KiB", "casc F", "casc S", "FSRCNN (ms)",
              "SESR-M5 (ms)", "ratio");
  for (const std::int64_t kib : {64, 128, 256, 512, 1024, 2048, 8192}) {
    hw::NpuConfig cfg = hw::ethos_n78_like();
    cfg.cascade_buffer_bytes = kib * 1024;
    cfg.line_buffer_bytes = kib * 512;  // keep the 2:1 proportion
    const auto f = hw::simulate(fsrcnn, cfg);
    const auto s = hw::simulate(sesr, cfg);
    std::printf("%12lld %10zu %10zu %14.2f %14.2f %11.2fx\n", static_cast<long long>(kib),
                f.cascades.size(), s.cascades.size(), f.runtime_ms, s.runtime_ms,
                f.runtime_ms / s.runtime_ms);
  }
  std::printf("(tiny SRAM fragments BOTH nets; huge SRAM fuses both; in between — where\n"
              " real NPUs live — only the 16-channel SESR fits, which is the paper's point)\n\n");

  std::printf("Utilization sweep (does compute efficiency change the story?):\n");
  std::printf("%12s %14s %14s %12s\n", "util", "FSRCNN (ms)", "SESR-M5 (ms)", "ratio");
  for (const double util : {0.3, 0.55, 0.8, 1.0}) {
    hw::NpuConfig cfg = hw::ethos_n78_like();
    cfg.utilization = util;
    const auto f = hw::simulate(fsrcnn, cfg);
    const auto s = hw::simulate(sesr, cfg);
    std::printf("%12.2f %14.2f %14.2f %11.2fx\n", util, f.runtime_ms, s.runtime_ms,
                f.runtime_ms / s.runtime_ms);
  }
  return 0;
}
