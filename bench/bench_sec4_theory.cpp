// Reproduces the Section 4 theory as numerics: gradient-update trajectories of
// the four overparameterization schemes on the scalar l2 regression problem,
// plus the vanishing-gradient depth probe behind Fig. 4's narrative.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "theory/overparam.hpp"

using namespace sesr;

int main() {
  bench::print_header("Section 4 — overparameterization gradient dynamics",
                      "Bhardwaj et al., MLSys 2022, Eqs. (3)-(5), Sec. 4.1-4.3");

  constexpr double kSxx = 1.0;
  constexpr double kSxy = 3.0;  // optimum beta* = 3
  constexpr double kEta = 0.01;
  constexpr std::int64_t kSteps = 300;
  const double beta0 = 0.2;

  const auto vgg = theory::train_scalar(theory::Scheme::kVgg, beta0, 0.0, kSxx, kSxy, kEta, kSteps);
  const auto vgg2 =
      theory::train_scalar(theory::Scheme::kVgg, beta0, 0.0, kSxx, kSxy, 2 * kEta, kSteps);
  const auto repvgg = theory::train_scalar(theory::Scheme::kRepVgg, (beta0 - 1) / 2,
                                           (beta0 - 1) / 2, kSxx, kSxy, kEta, kSteps);
  const auto expand =
      theory::train_scalar(theory::Scheme::kExpandNet, beta0, 1.0, kSxx, kSxy, kEta, kSteps);
  const auto sesr =
      theory::train_scalar(theory::Scheme::kSesr, beta0 - 1.0, 1.0, kSxx, kSxy, kEta, kSteps);

  std::printf("collapsed weight beta(t) — all schemes start at beta=%.2f, target %.2f:\n", beta0,
              kSxy / kSxx);
  std::printf("%6s %10s %12s %12s %12s %12s\n", "step", "VGG", "VGG(2*eta)", "RepVGG",
              "ExpandNet", "SESR");
  for (const std::int64_t t : {0L, 10L, 25L, 50L, 100L, 200L, 300L}) {
    const auto i = static_cast<std::size_t>(t);
    std::printf("%6lld %10.5f %12.5f %12.5f %12.5f %12.5f\n", static_cast<long long>(t), vgg[i],
                vgg2[i], repvgg[i], expand[i], sesr[i]);
  }

  double max_rep_vs_vgg2 = 0.0;
  for (std::size_t t = 0; t < repvgg.size(); ++t) {
    max_rep_vs_vgg2 = std::max(max_rep_vs_vgg2, std::fabs(repvgg[t] - vgg2[t]));
  }
  std::printf("\nmax |RepVGG - VGG(lambda=2*eta)| over %lld steps: %.2e  (paper Eq. 5: exactly 0)\n",
              static_cast<long long>(kSteps), max_rep_vs_vgg2);

  std::printf("\nVanishing-gradient depth probe, |d(beta)/d(w_1)| at |w| = 0.5:\n");
  std::printf("%8s %22s %22s\n", "depth", "no skips (ExpandNet)", "with skips (SESR)");
  for (const std::int64_t depth : {1L, 4L, 13L, 26L, 52L}) {
    std::printf("%8lld %22.3e %22.3e\n", static_cast<long long>(depth),
                theory::chain_gradient_no_skip(0.5, depth),
                theory::chain_gradient_with_skip(0.5, depth));
  }
  std::printf("\npaper Sec. 4.3: a 13-layer net expanded to 26 layers without short residuals\n"
              "is hard to train (gradient ~ %.1e); SESR's skips keep it O(1).\n",
              theory::chain_gradient_no_skip(0.5, 13));
  return 0;
}
