// Reproduces Table 2: x4 SISR quality on six benchmark sets. Exercises the
// paper's x4 head: ONE 5x5xfx16 conv + depth-to-space applied twice (instead
// of repeated upsampling blocks), which is why SESR's x4 MACs shrink so much
// relative to FSRCNN (whose deconv runs at full HR resolution).
#include <cstdio>
#include <memory>

#include "baselines/fsrcnn.hpp"
#include "bench_common.hpp"
#include "core/macs.hpp"
#include "core/paper_reference.hpp"
#include "core/sesr_inference.hpp"
#include "data/resize.hpp"

using namespace sesr;

namespace {
void print_paper_row(const core::paper::QualityRow& row) {
  std::printf("%-28s %9.2fK %8.2fG", (std::string("  paper: ") + std::string(row.model)).c_str(),
              row.parameters_k, row.macs_g);
  for (const auto& e : row.sets) {
    if (e.present()) std::printf("  %6.2f/%.4f", e.psnr, e.ssim);
    else std::printf("  %13s", "-/-");
  }
  std::printf("\n");
}

const core::paper::QualityRow* find_paper_row(const char* model) {
  for (const auto& row : core::paper::kTable2X4) {
    if (row.model == model) return &row;
  }
  return nullptr;
}
}  // namespace

int main() {
  bench::print_header("Table 2 — x4 SISR quality across six benchmark sets",
                      "Bhardwaj et al., MLSys 2022, Table 2");
  const auto sets = bench::eval_sets();
  data::SrDataset corpus = bench::training_corpus(4);
  const std::int64_t lr_h = core::lr_extent_for(720, 4);
  const std::int64_t lr_w = core::lr_extent_for(1280, 4);

  std::printf("%-28s %10s %9s", "model", "params", "MACs@720p");
  for (const auto& s : sets) std::printf("  %13s", s.name.c_str());
  std::printf("\n");

  {
    const auto scores = metrics::evaluate_on_sets(
        [](const Tensor& lr_img) { return data::upscale_bicubic(lr_img, 4); }, sets, 4);
    bench::print_quality_row("Bicubic", 0.0, 0.0, scores);
    print_paper_row(core::paper::kTable2X4[0]);
  }

  {
    Rng rng(21);
    baselines::FsrcnnConfig fcfg;
    fcfg.scale = 4;
    auto model = baselines::make_fsrcnn(fcfg, rng);
    bench::TrainSpec spec;
    spec.crop = 12;  // x4 HR crops are 4x the LR crop edge
    bench::train_model(*model, corpus, spec);
    const auto scores = metrics::evaluate_on_sets(
        [&](const Tensor& lr_img) { return model->predict(lr_img); }, sets, 4);
    const core::MacReport mac = core::fsrcnn_macs(lr_h, lr_w, 4);
    bench::print_quality_row("FSRCNN (ours)", mac.kilo_parameters(), mac.giga_macs(), scores);
    print_paper_row(*find_paper_row("FSRCNN (authors' setup)"));
  }

  std::vector<core::SesrConfig> zoo{core::sesr_m3(4), core::sesr_m5(4), core::sesr_m7(4),
                                    core::sesr_m11(4)};
  if (!bench::fast_mode()) zoo.push_back(core::sesr_xl(4));
  const char* paper_names[] = {"SESR-M3", "SESR-M5", "SESR-M7", "SESR-M11", "SESR-XL"};
  for (std::size_t i = 0; i < zoo.size(); ++i) {
    Rng rng(200 + static_cast<std::uint64_t>(i));
    core::SesrNetwork net(zoo[i], rng);
    bench::TrainSpec spec;
    spec.crop = 12;
    bench::train_model(net, corpus, spec);
    core::SesrInference deployed(net);
    const auto scores = metrics::evaluate_on_sets(
        [&](const Tensor& lr_img) { return deployed.upscale(lr_img); }, sets, 4);
    const core::MacReport mac = core::sesr_macs(zoo[i], lr_h, lr_w);
    bench::print_quality_row(paper_names[i], mac.kilo_parameters(), mac.giga_macs(), scores);
    if (const auto* row = find_paper_row(paper_names[i])) print_paper_row(*row);
  }

  std::printf("\nheadline checks (paper Sec. 5.2):\n");
  std::printf("  SESR-M5 vs FSRCNN x4 MACs: %.1fx fewer (paper 4.4x: 1.05G vs 4.63G)\n",
              core::fsrcnn_macs(lr_h, lr_w, 4).giga_macs() /
                  core::sesr_macs(core::sesr_m5(4), lr_h, lr_w).giga_macs());
  std::printf("  SESR-M11 vs VDSR x4 MACs: %.0fx fewer (paper 331x)\n",
              612.6 / core::sesr_macs(core::sesr_m11(4), lr_h, lr_w).giga_macs());
  return 0;
}
