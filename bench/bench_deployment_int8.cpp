// Deployment study: what actually ships to the NPU.
//
// Extends the paper's Table 3 premise (the Ethos-N78 executes int8) with the
// functional counterparts the paper does not spell out:
//   1. post-training int8 quantization of the collapsed SESR — PSNR loss vs
//      the float network;
//   2. functional tiling (Section 5.6): exactness with a full halo, the
//      compute overhead of that halo, and quality with truncated halos;
//   3. the Winograd 3x3 fast path as a CPU deployment option.
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "core/hybrid_plan.hpp"
#include "core/quantize.hpp"
#include "core/sesr_inference.hpp"
#include "core/tiled_inference.hpp"
#include "data/synthetic.hpp"
#include "metrics/psnr.hpp"
#include "nn/winograd.hpp"
#include "tensor/tensor_ops.hpp"

using namespace sesr;

namespace {

// Best-of-N wall time per call, in milliseconds.
template <typename Fn>
double best_ms(int iters, Fn&& fn) {
  double best = 1e300;
  for (int i = 0; i < iters; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const double ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0).count();
    if (ms < best) best = ms;
  }
  return best;
}

}  // namespace

int main() {
  bench::print_header("Deployment — int8 quantization, functional tiling, Winograd",
                      "Table 3 premise + Section 5.6 boundary-correctness remark");
  data::SrDataset corpus = bench::training_corpus(2);
  Rng rng(7);
  core::SesrNetwork net(core::sesr_m5(2), rng);
  bench::TrainSpec spec;
  bench::train_model(net, corpus, spec);
  core::SesrInference deployed(net);

  // Evaluation image and calibration set.
  Rng irng(11);
  Tensor image = data::synthesize_image(data::ImageFamily::kNatural, 96, 96, irng);
  std::vector<Tensor> calib;
  for (int i = 0; i < 3; ++i) {
    calib.push_back(data::synthesize_image(data::ImageFamily::kObjects, 48, 48, irng));
  }
  auto [lr_img, hr_img] = corpus.image_pair(0);

  // --- int8 ------------------------------------------------------------------
  core::QuantizedSesr quant(deployed, calib);
  const Tensor float_out = deployed.upscale(lr_img);
  const Tensor int8_out = quant.upscale(lr_img);
  std::printf("int8 weights: %lld bytes (float: %lld)\n",
              static_cast<long long>(quant.weight_bytes()),
              static_cast<long long>(deployed.parameter_count() * 4));
  std::printf("PSNR vs ground truth:  float %.2f dB   int8 %.2f dB   (delta %+.3f dB)\n",
              metrics::psnr_shaved(float_out, hr_img, 2),
              metrics::psnr_shaved(int8_out, hr_img, 2),
              metrics::psnr_shaved(int8_out, hr_img, 2) -
                  metrics::psnr_shaved(float_out, hr_img, 2));
  std::printf("int8-vs-float agreement: %.1f dB\n\n", metrics::psnr(int8_out, float_out));

  // --- fp16 ------------------------------------------------------------------
  deployed.set_precision(core::InferencePrecision::kFp16);
  const Tensor fp16_out = deployed.upscale(lr_img);
  deployed.set_precision(core::InferencePrecision::kFp32);
  const double fp16_delta = metrics::psnr_shaved(fp16_out, hr_img, 2) -
                            metrics::psnr_shaved(float_out, hr_img, 2);
  std::printf("fp16 weights: %lld bytes (binary16 storage, fp32 accumulate)\n",
              static_cast<long long>(deployed.parameter_count() * 2));
  std::printf("PSNR vs ground truth:  float %.2f dB   fp16 %.2f dB   (delta %+.3f dB; "
              "budget |delta| <= 0.05)\n",
              metrics::psnr_shaved(float_out, hr_img, 2),
              metrics::psnr_shaved(fp16_out, hr_img, 2), fp16_delta);
  std::printf("fp16-vs-float agreement: %.1f dB\n\n", metrics::psnr(fp16_out, float_out));

  // --- native int8 / hybrid serving path -------------------------------------
  // The serving-path counterpart of the legacy QuantizedSesr study above:
  // calibrated per-tensor activation scales, per-channel s8 weights, and the
  // packed u8 x s8 GEMM behind SesrInference::set_precision. Two bars ride in
  // the JSON rows:
  //   int8  — full-frame single-thread SESR-M5 x2 >= 1.8x fp32;
  //   hybrid — planner-reported Y-PSNR drop <= 0.3 dB at the default budget.
  bench::BenchJson json("deployment_int8");
  deployed.calibrate_int8(calib);
  std::vector<Tensor> plan_lr;
  std::vector<Tensor> plan_hr;
  for (std::size_t i = 0; i < std::min<std::size_t>(3, corpus.size()); ++i) {
    auto [lr, hr] = corpus.image_pair(i);
    plan_lr.push_back(std::move(lr));
    plan_hr.push_back(std::move(hr));
  }
  const core::HybridPlanReport plan = core::plan_hybrid_precision(deployed, plan_lr, plan_hr);
  std::printf("hybrid plan: %lld/%zu int8 layers, Y-PSNR drop %.3f dB "
              "(budget 0.3, %lld plans scored)\n",
              static_cast<long long>(plan.int8_layers), plan.plan.size(), plan.drop_db,
              static_cast<long long>(plan.evaluated));
  json.add("m5_x2/hybrid_psnr_drop_db", plan.drop_db, 0.0, 1);

  const int prec_iters = bench::fast_mode() ? 2 : 5;
  const Tensor timing_frame = image;  // 96x96 natural, full-frame
  double fp32_ms = 0.0;
  double int8_ms = 0.0;
  std::printf("%-7s %10s %9s %16s\n", "prec", "ms/frame", "vs fp32", "PSNR vs fp32 (dB)");
  for (const char* prec : {"fp32", "fp16", "int8", "hybrid"}) {
    const std::string p(prec);
    deployed.set_precision(p == "fp16"   ? core::InferencePrecision::kFp16
                           : p == "int8" ? core::InferencePrecision::kInt8
                           : p == "hybrid" ? core::InferencePrecision::kHybrid
                                           : core::InferencePrecision::kFp32);
    const double ms = best_ms(prec_iters, [&] {
      volatile float v = deployed.upscale(timing_frame).raw()[0];
      (void)v;
    });
    const Tensor out = deployed.upscale(lr_img);
    if (p == "fp32") fp32_ms = ms;
    if (p == "int8") int8_ms = ms;
    std::printf("%-7s %10.2f %8.2fx %16.1f\n", prec, ms, fp32_ms / ms,
                p == "fp32" ? 99.0 : metrics::psnr(out, float_out));
    json.add(std::string("m5_x2/") + prec + "/full/t1", ms * 1e6, 0.0, 1);
  }
  deployed.set_precision(core::InferencePrecision::kFp32);
  json.add("m5_x2/int8_speedup_vs_fp32", fp32_ms / int8_ms, 0.0, 1);
  std::printf("SESR-M5 x2 full-frame single-thread: int8 %.2f ms vs fp32 %.2f ms = %.2fx "
              "(target >= 1.8x)\n\n",
              int8_ms, fp32_ms, fp32_ms / int8_ms);

  // --- tiling ----------------------------------------------------------------
  const Tensor full = deployed.upscale(image);
  const std::int64_t radius = core::receptive_field_radius(deployed);
  std::printf("receptive-field radius: %lld px -> exact-tiling halo\n",
              static_cast<long long>(radius));
  std::printf("%8s %10s %18s %14s\n", "halo", "max|err|", "agreement (dB)", "LR overhead");
  for (const std::int64_t halo : {radius, radius / 2, std::int64_t{2}, std::int64_t{0}}) {
    core::TilingOptions options;
    options.tile_h = options.tile_w = 32;
    options.halo = halo;
    const Tensor tiled = core::upscale_tiled(deployed, image, options);
    const float err = max_abs_diff(tiled, full);
    std::printf("%8lld %10.2e %18.1f %13.2fx\n", static_cast<long long>(halo),
                static_cast<double>(err), err == 0.0F ? 99.0 : metrics::psnr(tiled, full),
                core::tiling_compute_overhead(image.shape().h(), image.shape().w(), options,
                                              halo));
  }
  std::printf("(paper Sec. 5.6: tiling needs 'boundary overhead ... to maintain the\n"
              " functional correctness' — the halo column quantifies it.)\n\n");

  // --- Winograd --------------------------------------------------------------
  Rng wrng(13);
  Tensor x(1, 64, 64, 16);
  x.fill_uniform(wrng, -1.0F, 1.0F);
  Tensor w3 = deployed.convolutions()[1].weight;  // a real collapsed 3x3 kernel
  const auto time_ms = [](auto&& fn) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < 5; ++i) fn();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count() / 5 * 1e3;
  };
  const double ms_im2col =
      time_ms([&] { volatile float v = nn::conv2d(x, w3, nn::Padding::kSame).raw()[0]; (void)v; });
  Tensor u = nn::winograd_weight_transform(w3);
  const double ms_winograd = time_ms([&] {
    volatile float v = nn::conv2d_winograd_3x3_pretransformed(x, u, 16).raw()[0];
    (void)v;
  });
  std::printf("3x3 conv, 64x64x16: im2col %.2f ms, Winograd F(2,3) %.2f ms (%.2fx; 2.25x\n"
              "fewer multiplies in theory, transform overhead eats part of it)\n",
              ms_im2col, ms_winograd, ms_im2col / ms_winograd);
  return 0;
}
