// Operator microbenchmarks (google-benchmark): the kernels every experiment
// rides on — GEMM, im2col convolution (vs the naive reference), Algorithm-1
// collapse, residual folding, depth-to-space, and one collapsed SESR-M5
// inference step on a 360p frame.
#include <benchmark/benchmark.h>

#include "core/collapse.hpp"
#include "core/linear_block.hpp"
#include "core/sesr_inference.hpp"
#include "core/sesr_network.hpp"
#include "nn/conv2d.hpp"
#include "nn/depth_to_space.hpp"
#include "nn/gemm.hpp"
#include "nn/init.hpp"

namespace {

using namespace sesr;

void BM_Gemm(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(1);
  std::vector<float> a(static_cast<std::size_t>(n * n));
  std::vector<float> b(static_cast<std::size_t>(n * n));
  std::vector<float> c(static_cast<std::size_t>(n * n));
  for (float& v : a) v = rng.uniform(-1.0F, 1.0F);
  for (float& v : b) v = rng.uniform(-1.0F, 1.0F);
  for (auto _ : state) {
    nn::gemm(a, b, c, n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_Conv2dGemmPath(benchmark::State& state) {
  const auto hw = state.range(0);
  Rng rng(2);
  Tensor x(1, hw, hw, 16);
  x.fill_uniform(rng, -1.0F, 1.0F);
  Tensor w = nn::he_normal_kernel(3, 3, 16, 16, rng);
  for (auto _ : state) {
    Tensor y = nn::conv2d(x, w, nn::Padding::kSame);
    benchmark::DoNotOptimize(y.raw());
  }
  state.SetItemsProcessed(state.iterations() * hw * hw * 9 * 16 * 16);
}
BENCHMARK(BM_Conv2dGemmPath)->Arg(32)->Arg(64)->Arg(128);

void BM_Conv2dNaive(benchmark::State& state) {
  const auto hw = state.range(0);
  Rng rng(3);
  Tensor x(1, hw, hw, 16);
  x.fill_uniform(rng, -1.0F, 1.0F);
  Tensor w = nn::he_normal_kernel(3, 3, 16, 16, rng);
  for (auto _ : state) {
    Tensor y = nn::conv2d_naive(x, w, nn::Padding::kSame);
    benchmark::DoNotOptimize(y.raw());
  }
  state.SetItemsProcessed(state.iterations() * hw * hw * 9 * 16 * 16);
}
BENCHMARK(BM_Conv2dNaive)->Arg(32)->Arg(64);

void BM_CollapseLinearBlock(benchmark::State& state) {
  // Algorithm 1 on the paper's production geometry: 3x3, 16 -> 256 -> 16.
  Rng rng(4);
  Tensor w1 = nn::he_normal_kernel(3, 3, 16, 256, rng);
  Tensor w2 = nn::he_normal_kernel(1, 1, 256, 16, rng);
  const std::array<Tensor, 2> weights{w1, w2};
  for (auto _ : state) {
    Tensor wc = core::collapse_conv_sequence(weights);
    benchmark::DoNotOptimize(wc.raw());
  }
}
BENCHMARK(BM_CollapseLinearBlock);

void BM_CollapseFirst5x5(benchmark::State& state) {
  Rng rng(5);
  Tensor w1 = nn::he_normal_kernel(5, 5, 1, 256, rng);
  Tensor w2 = nn::he_normal_kernel(1, 1, 256, 16, rng);
  const std::array<Tensor, 2> weights{w1, w2};
  for (auto _ : state) {
    Tensor wc = core::collapse_conv_sequence(weights);
    benchmark::DoNotOptimize(wc.raw());
  }
}
BENCHMARK(BM_CollapseFirst5x5);

void BM_ResidualFold(benchmark::State& state) {
  Rng rng(6);
  for (auto _ : state) {
    Tensor w = nn::he_normal_kernel(3, 3, 16, 16, rng);
    core::add_residual_identity(w);
    benchmark::DoNotOptimize(w.raw());
  }
}
BENCHMARK(BM_ResidualFold);

void BM_DepthToSpace(benchmark::State& state) {
  const auto hw = state.range(0);
  Rng rng(7);
  Tensor x(1, hw, hw, 4);
  x.fill_uniform(rng, 0.0F, 1.0F);
  for (auto _ : state) {
    Tensor y = nn::depth_to_space(x, 2);
    benchmark::DoNotOptimize(y.raw());
  }
  state.SetItemsProcessed(state.iterations() * x.numel());
}
BENCHMARK(BM_DepthToSpace)->Arg(180)->Arg(360);

void BM_SesrM5Inference360p(benchmark::State& state) {
  // One collapsed SESR-M5 x2 pass over a 640x360 frame (the Fig. 1(a) task).
  Rng rng(8);
  core::SesrNetwork net(core::sesr_m5(2), rng);
  core::SesrInference deployed(net);
  Rng xrng(9);
  Tensor x(1, 360, 640, 1);
  x.fill_uniform(xrng, 0.0F, 1.0F);
  for (auto _ : state) {
    Tensor y = deployed.upscale(x);
    benchmark::DoNotOptimize(y.raw());
  }
  state.SetItemsProcessed(state.iterations() * 13520LL * 360 * 640);
}
BENCHMARK(BM_SesrM5Inference360p)->Unit(benchmark::kMillisecond);

void BM_TrainingStepCollapsedMode(benchmark::State& state) {
  Rng rng(10);
  core::SesrConfig cfg = core::sesr_m5(2);
  cfg.mode = core::BlockMode::kCollapsedForward;
  core::SesrNetwork net(cfg, rng);
  Rng xrng(11);
  Tensor x(2, 16, 16, 1);
  x.fill_uniform(xrng, 0.0F, 1.0F);
  Tensor g(2, 32, 32, 1);
  g.fill_uniform(xrng, -1.0F, 1.0F);
  for (auto _ : state) {
    nn::zero_gradients(net.parameters());
    Tensor y = net.forward(x, true);
    net.backward(g);
    benchmark::DoNotOptimize(y.raw());
  }
}
BENCHMARK(BM_TrainingStepCollapsedMode)->Unit(benchmark::kMillisecond);

}  // namespace
