// Operator microbenchmarks (google-benchmark): the kernels every experiment
// rides on — GEMM, im2col convolution (vs the naive reference), Algorithm-1
// collapse, residual folding, depth-to-space, and one collapsed SESR-M5
// inference step on a 360p frame.
//
// Machine-readable output: pass `--benchmark_format=json` (optionally
// `--benchmark_out=<file> --benchmark_out_format=json`) — the GFLOP/s and
// img/s figures below are emitted as per-benchmark counters in that JSON.
// Thread-count cases read SESR_NUM_THREADS at process start, so run e.g.
// `SESR_NUM_THREADS=4 bench_micro_kernels` to measure the striped conv paths.
#include <benchmark/benchmark.h>

#include "core/collapse.hpp"
#include "core/linear_block.hpp"
#include "core/sesr_inference.hpp"
#include "core/sesr_network.hpp"
#include "nn/conv2d.hpp"
#include "nn/depth_to_space.hpp"
#include "nn/gemm.hpp"
#include "nn/init.hpp"
#include "tensor/thread_pool.hpp"

namespace {

using namespace sesr;

void set_gflops_counter(benchmark::State& state, double flops_per_iter) {
  state.counters["GFLOP/s"] = benchmark::Counter(flops_per_iter * state.iterations(),
                                                 benchmark::Counter::kIsRate,
                                                 benchmark::Counter::kIs1000);
}

void BM_Gemm(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(1);
  std::vector<float> a(static_cast<std::size_t>(n * n));
  std::vector<float> b(static_cast<std::size_t>(n * n));
  std::vector<float> c(static_cast<std::size_t>(n * n));
  for (float& v : a) v = rng.uniform(-1.0F, 1.0F);
  for (float& v : b) v = rng.uniform(-1.0F, 1.0F);
  for (auto _ : state) {
    nn::gemm(a, b, c, n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

// The SESR-typical GEMM: one 3x3 16->16 conv layer on a 64x64 patch after
// im2col is m = 64*64 = 4096 rows, k = 9*16 = 144, n = 16. Dense tiled kernel
// vs the zero-skip kernel (kept for Algorithm-1 identity probes) on the same
// dense operands — the gap is the cost the old default paid on real data.
void BM_GemmSesrShape(benchmark::State& state) {
  const std::int64_t m = 4096, k = 144, n = 16;
  Rng rng(21);
  std::vector<float> a(static_cast<std::size_t>(m * k));
  std::vector<float> b(static_cast<std::size_t>(k * n));
  std::vector<float> c(static_cast<std::size_t>(m * n));
  for (float& v : a) v = rng.uniform(-1.0F, 1.0F);
  for (float& v : b) v = rng.uniform(-1.0F, 1.0F);
  for (auto _ : state) {
    nn::gemm(a, b, c, m, k, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * m * k * n);
  set_gflops_counter(state, 2.0 * static_cast<double>(m * k * n));
}
BENCHMARK(BM_GemmSesrShape);

void BM_GemmZeroSkipSesrShape(benchmark::State& state) {
  const std::int64_t m = 4096, k = 144, n = 16;
  Rng rng(22);
  std::vector<float> a(static_cast<std::size_t>(m * k));
  std::vector<float> b(static_cast<std::size_t>(k * n));
  std::vector<float> c(static_cast<std::size_t>(m * n));
  for (float& v : a) v = rng.uniform(-1.0F, 1.0F);
  for (float& v : b) v = rng.uniform(-1.0F, 1.0F);
  for (auto _ : state) {
    nn::gemm_zero_skip(a, b, c, m, k, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * m * k * n);
  set_gflops_counter(state, 2.0 * static_cast<double>(m * k * n));
}
BENCHMARK(BM_GemmZeroSkipSesrShape);

void BM_Conv2dGemmPath(benchmark::State& state) {
  const auto hw = state.range(0);
  Rng rng(2);
  Tensor x(1, hw, hw, 16);
  x.fill_uniform(rng, -1.0F, 1.0F);
  Tensor w = nn::he_normal_kernel(3, 3, 16, 16, rng);
  for (auto _ : state) {
    Tensor y = nn::conv2d(x, w, nn::Padding::kSame);
    benchmark::DoNotOptimize(y.raw());
  }
  state.SetItemsProcessed(state.iterations() * hw * hw * 9 * 16 * 16);
}
BENCHMARK(BM_Conv2dGemmPath)->Arg(32)->Arg(64)->Arg(128);

void BM_Conv2dNaive(benchmark::State& state) {
  const auto hw = state.range(0);
  Rng rng(3);
  Tensor x(1, hw, hw, 16);
  x.fill_uniform(rng, -1.0F, 1.0F);
  Tensor w = nn::he_normal_kernel(3, 3, 16, 16, rng);
  for (auto _ : state) {
    Tensor y = nn::conv2d_naive(x, w, nn::Padding::kSame);
    benchmark::DoNotOptimize(y.raw());
  }
  state.SetItemsProcessed(state.iterations() * hw * hw * 9 * 16 * 16);
}
BENCHMARK(BM_Conv2dNaive)->Arg(32)->Arg(64);

// 1x1 stride-1 convs skip im2col entirely (NHWC makes the lowered matrix the
// input itself). This is the expand layer of every linear block.
void BM_Conv1x1FastPath(benchmark::State& state) {
  const auto hw = state.range(0);
  Rng rng(23);
  Tensor x(1, hw, hw, 64);
  x.fill_uniform(rng, -1.0F, 1.0F);
  Tensor w = nn::he_normal_kernel(1, 1, 64, 16, rng);
  Tensor bias(1, 1, 1, 16);
  bias.fill_uniform(rng, -0.1F, 0.1F);
  for (auto _ : state) {
    Tensor y = nn::conv2d_bias(x, w, bias, nn::Padding::kSame);
    benchmark::DoNotOptimize(y.raw());
  }
  state.SetItemsProcessed(state.iterations() * hw * hw * 64 * 16);
  set_gflops_counter(state, 2.0 * static_cast<double>(hw * hw * 64 * 16));
  state.counters["img/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Conv1x1FastPath)->Arg(64)->Arg(180);

// Single-image (N=1) 3x3 conv on a 360p frame: the latency-critical inference
// case the row-striped im2col path exists for. Run with SESR_NUM_THREADS=1
// and =4 and compare img/s — the stripes give intra-image scaling where the
// old per-image parallelism had nothing to hand out at N=1.
void BM_ConvStripedN1(benchmark::State& state) {
  Rng rng(24);
  Tensor x(1, 360, 640, 16);
  x.fill_uniform(rng, -1.0F, 1.0F);
  Tensor w = nn::he_normal_kernel(3, 3, 16, 16, rng);
  for (auto _ : state) {
    Tensor y = nn::conv2d(x, w, nn::Padding::kSame);
    benchmark::DoNotOptimize(y.raw());
  }
  const double macs = 360.0 * 640.0 * 9.0 * 16.0 * 16.0;
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(macs));
  set_gflops_counter(state, 2.0 * macs);
  state.counters["img/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  state.counters["threads"] = static_cast<double>(ThreadPool::global().worker_count() + 1);
}
BENCHMARK(BM_ConvStripedN1)->Unit(benchmark::kMillisecond);

void BM_CollapseLinearBlock(benchmark::State& state) {
  // Algorithm 1 on the paper's production geometry: 3x3, 16 -> 256 -> 16.
  Rng rng(4);
  Tensor w1 = nn::he_normal_kernel(3, 3, 16, 256, rng);
  Tensor w2 = nn::he_normal_kernel(1, 1, 256, 16, rng);
  const std::array<Tensor, 2> weights{w1, w2};
  for (auto _ : state) {
    Tensor wc = core::collapse_conv_sequence(weights);
    benchmark::DoNotOptimize(wc.raw());
  }
}
BENCHMARK(BM_CollapseLinearBlock);

void BM_CollapseFirst5x5(benchmark::State& state) {
  Rng rng(5);
  Tensor w1 = nn::he_normal_kernel(5, 5, 1, 256, rng);
  Tensor w2 = nn::he_normal_kernel(1, 1, 256, 16, rng);
  const std::array<Tensor, 2> weights{w1, w2};
  for (auto _ : state) {
    Tensor wc = core::collapse_conv_sequence(weights);
    benchmark::DoNotOptimize(wc.raw());
  }
}
BENCHMARK(BM_CollapseFirst5x5);

void BM_ResidualFold(benchmark::State& state) {
  Rng rng(6);
  for (auto _ : state) {
    Tensor w = nn::he_normal_kernel(3, 3, 16, 16, rng);
    core::add_residual_identity(w);
    benchmark::DoNotOptimize(w.raw());
  }
}
BENCHMARK(BM_ResidualFold);

void BM_DepthToSpace(benchmark::State& state) {
  const auto hw = state.range(0);
  Rng rng(7);
  Tensor x(1, hw, hw, 4);
  x.fill_uniform(rng, 0.0F, 1.0F);
  for (auto _ : state) {
    Tensor y = nn::depth_to_space(x, 2);
    benchmark::DoNotOptimize(y.raw());
  }
  state.SetItemsProcessed(state.iterations() * x.numel());
}
BENCHMARK(BM_DepthToSpace)->Arg(180)->Arg(360);

void BM_SesrM5Inference360p(benchmark::State& state) {
  // One collapsed SESR-M5 x2 pass over a 640x360 frame (the Fig. 1(a) task).
  Rng rng(8);
  core::SesrNetwork net(core::sesr_m5(2), rng);
  core::SesrInference deployed(net);
  Rng xrng(9);
  Tensor x(1, 360, 640, 1);
  x.fill_uniform(xrng, 0.0F, 1.0F);
  for (auto _ : state) {
    Tensor y = deployed.upscale(x);
    benchmark::DoNotOptimize(y.raw());
  }
  state.SetItemsProcessed(state.iterations() * 13520LL * 360 * 640);
}
BENCHMARK(BM_SesrM5Inference360p)->Unit(benchmark::kMillisecond);

void BM_TrainingStepCollapsedMode(benchmark::State& state) {
  Rng rng(10);
  core::SesrConfig cfg = core::sesr_m5(2);
  cfg.mode = core::BlockMode::kCollapsedForward;
  core::SesrNetwork net(cfg, rng);
  Rng xrng(11);
  Tensor x(2, 16, 16, 1);
  x.fill_uniform(xrng, 0.0F, 1.0F);
  Tensor g(2, 32, 32, 1);
  g.fill_uniform(xrng, -1.0F, 1.0F);
  for (auto _ : state) {
    nn::zero_gradients(net.parameters());
    Tensor y = net.forward(x, true);
    net.backward(g);
    benchmark::DoNotOptimize(y.raw());
  }
}
BENCHMARK(BM_TrainingStepCollapsedMode)->Unit(benchmark::kMillisecond);

}  // namespace
