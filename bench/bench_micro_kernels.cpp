// Operator microbenchmarks (google-benchmark): the kernels every experiment
// rides on — GEMM, im2col convolution (vs the naive reference), Algorithm-1
// collapse, residual folding, depth-to-space, and one collapsed SESR-M5
// inference step on a 360p frame.
//
// Machine-readable output: pass `--benchmark_format=json` (optionally
// `--benchmark_out=<file> --benchmark_out_format=json`) — the GFLOP/s and
// img/s figures below are emitted as per-benchmark counters in that JSON.
// Thread-count cases read SESR_NUM_THREADS at process start, so run e.g.
// `SESR_NUM_THREADS=4 bench_micro_kernels` to measure the striped conv paths.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/collapse.hpp"
#include "core/linear_block.hpp"
#include "core/sesr_inference.hpp"
#include "core/sesr_network.hpp"
#include "nn/conv2d.hpp"
#include "nn/depth_to_space.hpp"
#include "nn/gemm.hpp"
#include "nn/init.hpp"
#include "tensor/thread_pool.hpp"

namespace {

using namespace sesr;

void set_gflops_counter(benchmark::State& state, double flops_per_iter) {
  state.counters["GFLOP/s"] = benchmark::Counter(flops_per_iter * state.iterations(),
                                                 benchmark::Counter::kIsRate,
                                                 benchmark::Counter::kIs1000);
}

void BM_Gemm(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(1);
  std::vector<float> a(static_cast<std::size_t>(n * n));
  std::vector<float> b(static_cast<std::size_t>(n * n));
  std::vector<float> c(static_cast<std::size_t>(n * n));
  for (float& v : a) v = rng.uniform(-1.0F, 1.0F);
  for (float& v : b) v = rng.uniform(-1.0F, 1.0F);
  for (auto _ : state) {
    nn::gemm(a, b, c, n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

// The SESR-typical GEMM: one 3x3 16->16 conv layer on a 64x64 patch after
// im2col is m = 64*64 = 4096 rows, k = 9*16 = 144, n = 16. Dense tiled kernel
// vs the zero-skip kernel (kept for Algorithm-1 identity probes) on the same
// dense operands — the gap is the cost the old default paid on real data.
void BM_GemmSesrShape(benchmark::State& state) {
  const std::int64_t m = 4096, k = 144, n = 16;
  Rng rng(21);
  std::vector<float> a(static_cast<std::size_t>(m * k));
  std::vector<float> b(static_cast<std::size_t>(k * n));
  std::vector<float> c(static_cast<std::size_t>(m * n));
  for (float& v : a) v = rng.uniform(-1.0F, 1.0F);
  for (float& v : b) v = rng.uniform(-1.0F, 1.0F);
  for (auto _ : state) {
    nn::gemm(a, b, c, m, k, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * m * k * n);
  set_gflops_counter(state, 2.0 * static_cast<double>(m * k * n));
}
BENCHMARK(BM_GemmSesrShape);

void BM_GemmZeroSkipSesrShape(benchmark::State& state) {
  const std::int64_t m = 4096, k = 144, n = 16;
  Rng rng(22);
  std::vector<float> a(static_cast<std::size_t>(m * k));
  std::vector<float> b(static_cast<std::size_t>(k * n));
  std::vector<float> c(static_cast<std::size_t>(m * n));
  for (float& v : a) v = rng.uniform(-1.0F, 1.0F);
  for (float& v : b) v = rng.uniform(-1.0F, 1.0F);
  for (auto _ : state) {
    nn::gemm_zero_skip(a, b, c, m, k, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * m * k * n);
  set_gflops_counter(state, 2.0 * static_cast<double>(m * k * n));
}
BENCHMARK(BM_GemmZeroSkipSesrShape);

void BM_Conv2dGemmPath(benchmark::State& state) {
  const auto hw = state.range(0);
  Rng rng(2);
  Tensor x(1, hw, hw, 16);
  x.fill_uniform(rng, -1.0F, 1.0F);
  Tensor w = nn::he_normal_kernel(3, 3, 16, 16, rng);
  for (auto _ : state) {
    Tensor y = nn::conv2d(x, w, nn::Padding::kSame);
    benchmark::DoNotOptimize(y.raw());
  }
  state.SetItemsProcessed(state.iterations() * hw * hw * 9 * 16 * 16);
}
BENCHMARK(BM_Conv2dGemmPath)->Arg(32)->Arg(64)->Arg(128);

void BM_Conv2dNaive(benchmark::State& state) {
  const auto hw = state.range(0);
  Rng rng(3);
  Tensor x(1, hw, hw, 16);
  x.fill_uniform(rng, -1.0F, 1.0F);
  Tensor w = nn::he_normal_kernel(3, 3, 16, 16, rng);
  for (auto _ : state) {
    Tensor y = nn::conv2d_naive(x, w, nn::Padding::kSame);
    benchmark::DoNotOptimize(y.raw());
  }
  state.SetItemsProcessed(state.iterations() * hw * hw * 9 * 16 * 16);
}
BENCHMARK(BM_Conv2dNaive)->Arg(32)->Arg(64);

// 1x1 stride-1 convs skip im2col entirely (NHWC makes the lowered matrix the
// input itself). This is the expand layer of every linear block.
void BM_Conv1x1FastPath(benchmark::State& state) {
  const auto hw = state.range(0);
  Rng rng(23);
  Tensor x(1, hw, hw, 64);
  x.fill_uniform(rng, -1.0F, 1.0F);
  Tensor w = nn::he_normal_kernel(1, 1, 64, 16, rng);
  Tensor bias(1, 1, 1, 16);
  bias.fill_uniform(rng, -0.1F, 0.1F);
  for (auto _ : state) {
    Tensor y = nn::conv2d_bias(x, w, bias, nn::Padding::kSame);
    benchmark::DoNotOptimize(y.raw());
  }
  state.SetItemsProcessed(state.iterations() * hw * hw * 64 * 16);
  set_gflops_counter(state, 2.0 * static_cast<double>(hw * hw * 64 * 16));
  state.counters["img/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Conv1x1FastPath)->Arg(64)->Arg(180);

// Single-image (N=1) 3x3 conv on a 360p frame: the latency-critical inference
// case the row-striped im2col path exists for. Run with SESR_NUM_THREADS=1
// and =4 and compare img/s — the stripes give intra-image scaling where the
// old per-image parallelism had nothing to hand out at N=1.
void BM_ConvStripedN1(benchmark::State& state) {
  Rng rng(24);
  Tensor x(1, 360, 640, 16);
  x.fill_uniform(rng, -1.0F, 1.0F);
  Tensor w = nn::he_normal_kernel(3, 3, 16, 16, rng);
  for (auto _ : state) {
    Tensor y = nn::conv2d(x, w, nn::Padding::kSame);
    benchmark::DoNotOptimize(y.raw());
  }
  const double macs = 360.0 * 640.0 * 9.0 * 16.0 * 16.0;
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(macs));
  set_gflops_counter(state, 2.0 * macs);
  state.counters["img/s"] =
      benchmark::Counter(static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  state.counters["threads"] = static_cast<double>(ThreadPool::global().worker_count() + 1);
}
BENCHMARK(BM_ConvStripedN1)->Unit(benchmark::kMillisecond);

void BM_CollapseLinearBlock(benchmark::State& state) {
  // Algorithm 1 on the paper's production geometry: 3x3, 16 -> 256 -> 16.
  Rng rng(4);
  Tensor w1 = nn::he_normal_kernel(3, 3, 16, 256, rng);
  Tensor w2 = nn::he_normal_kernel(1, 1, 256, 16, rng);
  const std::array<Tensor, 2> weights{w1, w2};
  for (auto _ : state) {
    Tensor wc = core::collapse_conv_sequence(weights);
    benchmark::DoNotOptimize(wc.raw());
  }
}
BENCHMARK(BM_CollapseLinearBlock);

void BM_CollapseFirst5x5(benchmark::State& state) {
  Rng rng(5);
  Tensor w1 = nn::he_normal_kernel(5, 5, 1, 256, rng);
  Tensor w2 = nn::he_normal_kernel(1, 1, 256, 16, rng);
  const std::array<Tensor, 2> weights{w1, w2};
  for (auto _ : state) {
    Tensor wc = core::collapse_conv_sequence(weights);
    benchmark::DoNotOptimize(wc.raw());
  }
}
BENCHMARK(BM_CollapseFirst5x5);

void BM_ResidualFold(benchmark::State& state) {
  Rng rng(6);
  for (auto _ : state) {
    Tensor w = nn::he_normal_kernel(3, 3, 16, 16, rng);
    core::add_residual_identity(w);
    benchmark::DoNotOptimize(w.raw());
  }
}
BENCHMARK(BM_ResidualFold);

void BM_DepthToSpace(benchmark::State& state) {
  const auto hw = state.range(0);
  Rng rng(7);
  Tensor x(1, hw, hw, 4);
  x.fill_uniform(rng, 0.0F, 1.0F);
  for (auto _ : state) {
    Tensor y = nn::depth_to_space(x, 2);
    benchmark::DoNotOptimize(y.raw());
  }
  state.SetItemsProcessed(state.iterations() * x.numel());
}
BENCHMARK(BM_DepthToSpace)->Arg(180)->Arg(360);

void BM_SesrM5Inference360p(benchmark::State& state) {
  // One collapsed SESR-M5 x2 pass over a 640x360 frame (the Fig. 1(a) task).
  Rng rng(8);
  core::SesrNetwork net(core::sesr_m5(2), rng);
  core::SesrInference deployed(net);
  Rng xrng(9);
  Tensor x(1, 360, 640, 1);
  x.fill_uniform(xrng, 0.0F, 1.0F);
  for (auto _ : state) {
    Tensor y = deployed.upscale(x);
    benchmark::DoNotOptimize(y.raw());
  }
  state.SetItemsProcessed(state.iterations() * 13520LL * 360 * 640);
}
BENCHMARK(BM_SesrM5Inference360p)->Unit(benchmark::kMillisecond);

void BM_TrainingStepCollapsedMode(benchmark::State& state) {
  Rng rng(10);
  core::SesrConfig cfg = core::sesr_m5(2);
  cfg.mode = core::BlockMode::kCollapsedForward;
  core::SesrNetwork net(cfg, rng);
  Rng xrng(11);
  Tensor x(2, 16, 16, 1);
  x.fill_uniform(xrng, 0.0F, 1.0F);
  Tensor g(2, 32, 32, 1);
  g.fill_uniform(xrng, -1.0F, 1.0F);
  for (auto _ : state) {
    nn::zero_gradients(net.parameters());
    Tensor y = net.forward(x, true);
    net.backward(g);
    benchmark::DoNotOptimize(y.raw());
  }
}
BENCHMARK(BM_TrainingStepCollapsedMode)->Unit(benchmark::kMillisecond);

// --- fp16 conversion + GEMM --------------------------------------------------

void BM_Fp16ConvertToHalf(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(12);
  std::vector<float> src(static_cast<std::size_t>(n));
  std::vector<fp16::Half> dst(src.size());
  for (float& v : src) v = rng.uniform(-4.0F, 4.0F);
  for (auto _ : state) {
    fp16::convert_to_half(src.data(), dst.data(), n);
    benchmark::DoNotOptimize(dst.data());
  }
  // 4 bytes read + 2 written per element.
  state.SetBytesProcessed(state.iterations() * n * 6);
}
BENCHMARK(BM_Fp16ConvertToHalf)->Arg(4096)->Arg(1 << 20);

void BM_Fp16ConvertToFloat(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(13);
  std::vector<float> tmp(static_cast<std::size_t>(n));
  std::vector<fp16::Half> src(tmp.size());
  std::vector<float> dst(tmp.size());
  for (float& v : tmp) v = rng.uniform(-4.0F, 4.0F);
  fp16::convert_to_half(tmp.data(), src.data(), n);
  for (auto _ : state) {
    fp16::convert_to_float(src.data(), dst.data(), n);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(state.iterations() * n * 6);
}
BENCHMARK(BM_Fp16ConvertToFloat)->Arg(4096)->Arg(1 << 20);

void BM_GemmFp16wSesrShape(benchmark::State& state) {
  // The fp16-storage counterpart of BM_GemmSesrShape: same flops, half the
  // operand bytes, staging through the F16C widening kernels.
  const std::int64_t m = 4096, k = 144, n = 16;
  Rng rng(23);
  std::vector<float> af(static_cast<std::size_t>(m * k));
  std::vector<float> bf(static_cast<std::size_t>(k * n));
  for (float& v : af) v = rng.uniform(-1.0F, 1.0F);
  for (float& v : bf) v = rng.uniform(-1.0F, 1.0F);
  std::vector<fp16::Half> a(af.size());
  std::vector<fp16::Half> b(bf.size());
  fp16::convert_to_half(af.data(), a.data(), static_cast<std::int64_t>(af.size()));
  fp16::convert_to_half(bf.data(), b.data(), static_cast<std::int64_t>(bf.size()));
  std::vector<float> c(static_cast<std::size_t>(m * n));
  for (auto _ : state) {
    nn::gemm_fp16w(a, b, {}, c, m, k, n, nn::Epilogue{});
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * m * k * n);
  set_gflops_counter(state, 2.0 * static_cast<double>(m * k * n));
}
BENCHMARK(BM_GemmFp16wSesrShape);

void BM_SesrM5Fp16Inference360p(benchmark::State& state) {
  Rng rng(14);
  core::SesrNetwork net(core::sesr_m5(2), rng);
  core::SesrInference deployed(net);
  deployed.set_precision(core::InferencePrecision::kFp16);
  Rng xrng(15);
  Tensor x(1, 360, 640, 1);
  x.fill_uniform(xrng, 0.0F, 1.0F);
  for (auto _ : state) {
    Tensor y = deployed.upscale(x);
    benchmark::DoNotOptimize(y.raw());
  }
  state.SetItemsProcessed(state.iterations() * 13520LL * 360 * 640);
}
BENCHMARK(BM_SesrM5Fp16Inference360p)->Unit(benchmark::kMillisecond);

// Console output as usual, plus a BenchJson row per run so SESR_BENCH_JSON
// captures ns/op (and GB/s where SetBytesProcessed is in play) — the reason
// this binary has its own main instead of benchmark::benchmark_main.
class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonCaptureReporter(sesr::bench::BenchJson* json, int threads)
      : json_(json), threads_(threads) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    ConsoleReporter::ReportRuns(reports);
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      const double ns_per_op =
          run.iterations > 0
              ? run.real_accumulated_time / static_cast<double>(run.iterations) * 1e9
              : 0.0;
      const auto bytes = run.counters.find("bytes_per_second");
      const double gb_per_s = bytes != run.counters.end() ? bytes->second.value / 1e9 : 0.0;
      json_->add(run.benchmark_name(), ns_per_op, gb_per_s, threads_);
    }
  }

 private:
  sesr::bench::BenchJson* json_;
  int threads_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  int threads = 1;
  if (const char* env = std::getenv("SESR_NUM_THREADS")) {
    const long t = std::strtol(env, nullptr, 10);
    if (t > 0) threads = static_cast<int>(t);
  }
  sesr::bench::BenchJson json("micro_kernels");
  JsonCaptureReporter reporter(&json, threads);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
