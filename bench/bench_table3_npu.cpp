// Reproduces Table 3: hardware performance on the (simulated) Arm Ethos-N78
// 4-TOP/s mobile NPU — MACs, DRAM traffic, runtime and FPS for FSRCNN x2,
// SESR-M5 x2, tiled x2 (400x300), SESR-M5 x4 (1080p -> 8K) and tiled x4.
// Models use the paper's hardware variant (ReLU, no input residual; both nets
// lose ~0.1 dB, Section 5.5).
#include <cstdio>

#include "bench_common.hpp"
#include "core/paper_reference.hpp"
#include "hw/network_ir.hpp"
#include "hw/npu_simulator.hpp"

using namespace sesr;

namespace {
void print_row(const char* label, double macs_g, double dram_mb, double runtime_ms, double fps,
               const core::paper::HardwareRow& paper) {
  std::printf("%-42s %7.2fG %9.1fMB %9.2fms %8.1f\n", label, macs_g, dram_mb, runtime_ms, fps);
  std::printf("%-42s %7.2fG %9.1fMB %9.2fms %8.1f\n", "  (paper)", paper.macs_g, paper.dram_mb,
              paper.runtime_ms, paper.fps);
}
}  // namespace

int main() {
  bench::print_header("Table 3 — NPU hardware performance, 1080p input",
                      "Bhardwaj et al., MLSys 2022, Table 3");
  const hw::NpuConfig npu = hw::ethos_n78_like();
  std::printf("NPU model: %.0f TOP/s, util %.2f, DRAM %.1f GB/s, cascade %lld KiB, "
              "line buffer %lld KiB\n\n",
              npu.tops, npu.utilization, npu.dram_gbps,
              static_cast<long long>(npu.cascade_buffer_bytes / 1024),
              static_cast<long long>(npu.line_buffer_bytes / 1024));
  std::printf("%-42s %8s %11s %11s %8s\n", "model", "MACs", "DRAM", "runtime", "FPS");

  const hw::NetworkIr fsrcnn = hw::fsrcnn_ir(1080, 1920, 2);
  const hw::PerfReport fs = hw::simulate(fsrcnn, npu);
  print_row("FSRCNN (x2) 1080p->4K", fs.macs * 1e-9, fs.dram_traffic_mb, fs.runtime_ms, fs.fps,
            core::paper::kTable3[0]);

  const hw::NetworkIr m5x2 = hw::sesr_ir(core::hardware_variant(core::sesr_m5(2)), 1080, 1920);
  const hw::PerfReport s2 = hw::simulate(m5x2, npu);
  print_row("SESR-M5 (x2) 1080p->4K", s2.macs * 1e-9, s2.dram_traffic_mb, s2.runtime_ms, s2.fps,
            core::paper::kTable3[1]);
  std::printf("  runtime improvement over FSRCNN: %.2fx (paper 6.15x)\n",
              fs.runtime_ms / s2.runtime_ms);

  const hw::TiledReport t2 = hw::simulate_tiled(m5x2, 300, 400, npu);
  print_row("SESR-M5 (tiled x2) 400x300->800x600", t2.tile.macs * 1e-9, t2.tile.dram_traffic_mb,
            t2.tile.runtime_ms, t2.tile.fps, core::paper::kTable3[2]);
  std::printf("  %.2f tiles/frame -> full-frame %.2fms = %.0f FPS (paper ~21.8ms = 46 FPS)\n",
              t2.tile_count, t2.total_runtime_ms, t2.fps);

  const hw::NetworkIr m5x4 = hw::sesr_ir(core::hardware_variant(core::sesr_m5(4)), 1080, 1920);
  const hw::PerfReport s4 = hw::simulate(m5x4, npu);
  print_row("SESR-M5 (x4) 1080p->8K", s4.macs * 1e-9, s4.dram_traffic_mb, s4.runtime_ms, s4.fps,
            core::paper::kTable3[3]);

  const hw::TiledReport t4 = hw::simulate_tiled(m5x4, 300, 400, npu);
  print_row("SESR-M5 (tiled x4) 400x300->1600x1200", t4.tile.macs * 1e-9,
            t4.tile.dram_traffic_mb, t4.tile.runtime_ms, t4.tile.fps, core::paper::kTable3[4]);
  std::printf("  %.2f tiles/frame -> full-frame %.2fms = %.0f FPS (paper -> 27 FPS)\n",
              t4.tile_count, t4.total_runtime_ms, t4.fps);

  std::printf("\nEnergy per frame (%.1f pJ/MAC, %.0f pJ/DRAM byte):\n", npu.pj_per_mac,
              npu.pj_per_dram_byte);
  std::printf("  FSRCNN x2:  %6.1f mJ (compute %5.1f + DRAM %5.1f)\n", fs.energy_mj,
              fs.energy_compute_mj, fs.energy_dram_mj);
  std::printf("  SESR-M5 x2: %6.1f mJ (compute %5.1f + DRAM %5.1f)  -> %.1fx less energy\n",
              s2.energy_mj, s2.energy_compute_mj, s2.energy_dram_mj,
              fs.energy_mj / s2.energy_mj);

  std::printf("\nCascade breakdown (FSRCNN x2) — where the bandwidth goes:\n");
  for (const auto& c : fs.cascades) {
    std::printf("  %-32s macs %6.2fG  dram %8.1fMB  compute %7.2fms  dram %7.2fms\n",
                c.label.c_str(), static_cast<double>(c.macs) * 1e-9,
                static_cast<double>(c.dram_bytes) * 1e-6, c.compute_ms, c.dram_ms);
  }
  std::printf("\nNote: absolute DRAM MB differs from Arm's closed estimator (different\n"
              "fusion policy); the reproduced claims are the MAC counts, the runtime\n"
              "inversion (2x fewer MACs -> ~6x faster) and the FPS bands.\n");
  return 0;
}
