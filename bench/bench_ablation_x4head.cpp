// Ablation: the paper's one-shot x4 head (single conv + double depth-to-space)
// vs the prior-art two-stage head (conv+shuffle, conv+shuffle) — the exact
// variant the paper names as future work in Section 5.2.
//
// Expected shape: the two-stage head spends ~2.4x the MACs (its second stage
// runs at 2x resolution) for a modest PSNR gain — quantifying what the paper's
// single-conv trick saves (Table 2's MAC advantage over TPSR/FSRCNN).
#include <cstdio>

#include "bench_common.hpp"
#include "core/macs.hpp"
#include "core/sesr_network.hpp"
#include "core/two_stage_x4.hpp"

using namespace sesr;

int main() {
  bench::print_header("Ablation — x4 head: one-shot (paper) vs two-stage (prior art)",
                      "Section 5.1/5.2 x4 design + the Section 5.2 future-work variant");
  data::SrDataset corpus = bench::training_corpus(4);
  bench::TrainSpec spec;
  spec.crop = 12;
  const std::int64_t lr_h = core::lr_extent_for(720, 4);
  const std::int64_t lr_w = core::lr_extent_for(1280, 4);

  std::printf("%-40s %10s %12s %12s\n", "variant", "params", "MACs@720p", "val PSNR");
  double one_shot_psnr = 0.0;
  double one_shot_macs = 0.0;
  {
    Rng rng(7);
    core::SesrNetwork net(core::sesr_m5(4), rng);
    bench::train_model(net, corpus, spec);
    one_shot_psnr = bench::validation_psnr(net, corpus);
    one_shot_macs = core::sesr_macs(core::sesr_m5(4), lr_h, lr_w).giga_macs();
    std::printf("%-40s %9.2fK %11.2fG %9.2f dB\n", "SESR-M5 one-shot head (paper)",
                static_cast<double>(net.collapsed_parameter_count()) * 1e-3, one_shot_macs,
                one_shot_psnr);
  }
  {
    Rng rng(7);
    core::SesrTwoStageX4 net(16, 5, 256, rng);
    bench::train_model(net, corpus, spec);
    const double psnr = bench::validation_psnr(net, corpus);
    const double macs = static_cast<double>(net.collapsed_macs(lr_h, lr_w)) * 1e-9;
    std::printf("%-40s %9.2fK %11.2fG %9.2f dB\n", "SESR-M5 two-stage head (future work)",
                static_cast<double>(net.collapsed_parameter_count()) * 1e-3, macs, psnr);
    std::printf("\ntrade-off: %+.2f dB for %.2fx the MACs — the paper's one-shot depth-to-space\n"
                "is what keeps Table 2's x4 MAC budget so small.\n",
                psnr - one_shot_psnr, macs / one_shot_macs);
  }
  return 0;
}
