// Reproduces the Section 5.5 variance remark: "the PSNR increase of even 0.1
// or 0.2 dB over existing models is significant ... since the standard
// deviation for all CNNs is very small (~0.02 dB)". Trains SESR-M3 from
// several weight-init seeds under the identical recipe and reports the spread
// of validation PSNR. At our reduced budget the spread is larger than the
// converged 0.02 dB, but the measurement methodology is identical.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/sesr_network.hpp"
#include "metrics/stats.hpp"

using namespace sesr;

int main() {
  bench::print_header("Seed-variance study — PSNR spread across weight inits",
                      "Bhardwaj et al., MLSys 2022, Section 5.5 (std ~0.02 dB)");
  data::SrDataset corpus = bench::training_corpus(2);
  bench::TrainSpec spec;
  const int seeds = bench::fast_mode() ? 3 : 5;

  std::vector<double> psnr;
  for (int s = 0; s < seeds; ++s) {
    Rng rng(1000 + static_cast<std::uint64_t>(s));
    core::SesrNetwork net(core::sesr_m3(2), rng);
    bench::train_model(net, corpus, spec, /*batch_seed=*/7);  // identical data order
    psnr.push_back(bench::validation_psnr(net, corpus));
    std::printf("  seed %d: %.3f dB\n", s, psnr.back());
  }
  const metrics::SampleStats stats = metrics::compute_stats(psnr);
  std::printf("\nSESR-M3 over %lld seeds: mean %.3f dB, std %.3f dB, range [%.3f, %.3f]\n",
              static_cast<long long>(stats.count), stats.mean, stats.stddev, stats.min,
              stats.max);
  std::printf("paper (converged, DIV2K): std ~0.02 dB — ours is larger because each run is\n"
              "~1000x shorter; the comparison methodology (fixed recipe, seed-only variation)\n"
              "is the paper's.\n");
  return 0;
}
