// Static activation memory plan vs the direct per-layer path: peak
// activation bytes and wall time per frame, SESR-M5 / M11 x2 at 1080p output
// (960x540 LR), fp32 and fp16, at 1 and 4 intra-op threads.
//
// Two claims under test (docs/PERFORMANCE.md, "Execution plans"):
//  1. The liveness planner's packed arena holds peak activation memory to
//     <= 0.5x the direct path's sum of materialized layer outputs (SESR-M5
//     x2: the headline line prints the ratio explicitly).
//  2. Replaying the plan costs nothing: us/frame is within noise of the
//     direct path (the plan makes the identical kernel calls; only the
//     destination bytes differ), while the steady state drops to zero heap
//     allocations (tests/test_alloc.cpp holds it to exactly zero).
//
// Knobs: SESR_BENCH_FAST=1 shrinks the frame and iteration budget;
// SESR_BENCH_JSON=<dir> writes BENCH_memory_plan.json.
#include <chrono>
#include <cstdio>
#include <string>
#include <utility>

#include "bench_common.hpp"
#include "core/plan/execution_plan.hpp"
#include "core/sesr_inference.hpp"
#include "core/sesr_network.hpp"
#include "data/synthetic.hpp"
#include "tensor/thread_pool.hpp"

namespace {

using namespace sesr;
using Clock = std::chrono::steady_clock;

template <typename Fn>
double best_us(int iters, Fn&& fn) {
  double best = 1e300;
  for (int i = 0; i < iters; ++i) {
    const auto t0 = Clock::now();
    fn();
    const double us = std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
    if (us < best) best = us;
  }
  return best;
}

}  // namespace

int main() {
  bench::print_header("memory plan — packed activation arena vs direct per-layer path",
                      "execution-plan compiler study (peak bytes + replay overhead)");
  const std::int64_t lr_h = bench::fast_mode() ? 135 : 540;
  const std::int64_t lr_w = bench::fast_mode() ? 240 : 960;
  const int iters = bench::fast_mode() ? 2 : 5;
  Rng irng(7);
  const Tensor frame = data::synthesize_image(data::ImageFamily::kNatural, lr_h, lr_w, irng);
  std::printf("frame: %lldx%lld LR (%lldx%lld HR), best of %d runs, isa %s\n\n",
              static_cast<long long>(lr_h), static_cast<long long>(lr_w),
              static_cast<long long>(lr_h * 2), static_cast<long long>(lr_w * 2), iters,
              bench::host_isa_string().c_str());
  std::printf("%-6s %-6s %8s %12s %12s %7s %12s %12s %8s\n", "net", "prec", "threads",
              "planned us", "direct us", "delta", "arena KiB", "direct KiB", "ratio");

  bench::BenchJson json("memory_plan");
  double m5_ratio = 0.0;
  double m5_delta = 0.0;

  const std::pair<const char*, core::SesrConfig> nets[] = {{"m5", core::sesr_m5(2)},
                                                           {"m11", core::sesr_m11(2)}};
  for (const auto& [net_name, config] : nets) {
    Rng rng(41);
    core::SesrNetwork network(config, rng);
    core::SesrInference inference(network);
    for (const char* prec : {"fp32", "fp16"}) {
      inference.set_precision(std::string(prec) == "fp16" ? core::InferencePrecision::kFp16
                                                          : core::InferencePrecision::kFp32);
      // Peak bytes are thread- and timing-independent: the compiled plan's
      // packed arena vs materializing every fused step's output at once
      // (what the direct path allocates while a frame is in flight).
      const core::plan::ExecutionPlan plan =
          core::plan::ExecutionPlan::compile(inference, lr_h, lr_w);
      const double planned_bytes = static_cast<double>(plan.peak_activation_bytes());
      std::int64_t direct_elems = 0;
      for (const core::plan::PlanStep& step : plan.steps()) {
        direct_elems += step.op.output_elements();
      }
      // fp16 counts every direct output at 2 bytes although the tail stages
      // stay float — that flatters the direct side, so the ratio printed is
      // an upper bound on the planner's advantage, never an inflated one.
      const double direct_bytes =
          static_cast<double>(direct_elems) * (std::string(prec) == "fp16" ? 2.0 : 4.0);
      const double ratio = planned_bytes / direct_bytes;
      for (const int threads : {1, 4}) {
        ThreadPool::set_global_threads(static_cast<unsigned>(threads));
        inference.set_use_plan(true);
        inference.plan_reserve(lr_h * lr_w);
        const double planned_us = best_us(iters, [&] {
          volatile float v = inference.upscale(frame).raw()[0];
          (void)v;
        });
        const double direct_us = best_us(iters, [&] {
          volatile float v = inference.upscale_direct(frame).raw()[0];
          (void)v;
        });
        const double delta = (direct_us - planned_us) / direct_us * 100.0;
        if (std::string(net_name) == "m5" && std::string(prec) == "fp32" && threads == 1) {
          m5_ratio = ratio;
          m5_delta = delta;
        }
        std::printf("%-6s %-6s %8d %12.0f %12.0f %+5.1f%% %12.0f %12.0f %8.2f\n", net_name, prec,
                    threads, planned_us, direct_us, delta, planned_bytes / 1024.0,
                    direct_bytes / 1024.0, ratio);
        json.add(std::string(net_name) + "/" + prec + "/planned/t" + std::to_string(threads),
                 planned_us * 1e3, 0.0, threads);
        json.add(std::string(net_name) + "/" + prec + "/direct/t" + std::to_string(threads),
                 direct_us * 1e3, 0.0, threads);
      }
      json.add(std::string(net_name) + "/" + prec + "/peak_ratio", ratio, 0.0, 1);
    }
    inference.set_precision(core::InferencePrecision::kFp32);
  }
  ThreadPool::set_global_threads(1);
  std::printf(
      "\nSESR-M5 x2 1080p fp32: planned arena = %.2fx the direct sum of layer outputs "
      "(target <= 0.5x), replay overhead %+.1f%% (target within 2%%)\n",
      m5_ratio, m5_delta);
  return 0;
}
