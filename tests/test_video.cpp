// Deterministic temporal tests for the video delta path.
//
// Three layers, bottom up:
//   1. data/video — the seeded synthetic sequence generator: bitwise
//      reproducible from (options, seed), with each pattern's structural
//      promise (static frames identical, sparkle bounded, cut periodic).
//   2. core/video_session::plan_tile_delta — the halo-dirty rule as a
//      property: a single changed LR pixel dirties EXACTLY the tiles whose
//      haloed footprint contains it, including boundary tiles, halo = 0,
//      tile > image, and non-divisible grids.
//   3. core/video_session::upscale_video_delta — splice + recompute is
//      bit-identical to upscaling the next frame from scratch through the
//      same path, for all four precisions and the streaming pipeline.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/sesr_inference.hpp"
#include "core/sesr_network.hpp"
#include "core/streaming.hpp"
#include "core/tiled_inference.hpp"
#include "core/video_session.hpp"
#include "data/video.hpp"
#include "tensor/rng.hpp"
#include "tensor/tensor.hpp"
#include "tensor/tensor_ops.hpp"

namespace sesr {
namespace {

bool bitwise_equal(const Tensor& a, const Tensor& b) {
  if (!(a.shape() == b.shape())) return false;
  return std::memcmp(a.raw(), b.raw(), static_cast<std::size_t>(a.numel()) * sizeof(float)) == 0;
}

std::size_t count_diff_pixels(const Tensor& a, const Tensor& b) {
  std::size_t n = 0;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    if (a.raw()[i] != b.raw()[i]) ++n;
  }
  return n;
}

// ------------------------------------------------------ synthetic sequences

TEST(VideoSynthesis, DeterministicFromSeed) {
  const data::VideoPattern patterns[] = {data::VideoPattern::kStatic, data::VideoPattern::kPan,
                                         data::VideoPattern::kCut, data::VideoPattern::kSparkle,
                                         data::VideoPattern::kMixed};
  for (const data::VideoPattern pattern : patterns) {
    SCOPED_TRACE(data::to_string(pattern));
    data::VideoSequenceOptions options;
    options.pattern = pattern;
    options.frames = 6;
    options.h = 20;
    options.w = 24;
    const std::vector<Tensor> a = data::synthesize_video(options, 17);
    const std::vector<Tensor> b = data::synthesize_video(options, 17);
    ASSERT_EQ(a.size(), 6U);
    ASSERT_EQ(b.size(), 6U);
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].shape(), Shape(1, 20, 24, 1));
      EXPECT_TRUE(bitwise_equal(a[i], b[i])) << "frame " << i;
    }
    // A different seed must change the content (overwhelmingly likely).
    const std::vector<Tensor> c = data::synthesize_video(options, 18);
    EXPECT_FALSE(bitwise_equal(a[0], c[0]));
  }
}

TEST(VideoSynthesis, StaticFramesAreBitwiseIdentical) {
  data::VideoSequenceOptions options;
  options.pattern = data::VideoPattern::kStatic;
  options.frames = 5;
  options.h = 16;
  options.w = 16;
  const std::vector<Tensor> frames = data::synthesize_video(options, 3);
  for (std::size_t i = 1; i < frames.size(); ++i) {
    EXPECT_TRUE(bitwise_equal(frames[0], frames[i])) << "frame " << i;
  }
}

TEST(VideoSynthesis, SparklePerturbsBoundedPixelCount) {
  data::VideoSequenceOptions options;
  options.pattern = data::VideoPattern::kSparkle;
  options.frames = 6;
  options.h = 20;
  options.w = 20;
  options.sparkle_pixels = 3;
  const std::vector<Tensor> frames = data::synthesize_video(options, 9);
  for (std::size_t i = 1; i < frames.size(); ++i) {
    const std::size_t changed = count_diff_pixels(frames[i - 1], frames[i]);
    EXPECT_GE(changed, 1U) << "frame " << i;  // a sparkle frame must move
    // Each frame re-perturbs <= sparkle_pixels positions and restores the
    // previous frame's perturbations, so consecutive frames differ in at
    // most 2 * sparkle_pixels pixels.
    EXPECT_LE(changed, 2U * 3U) << "frame " << i;
  }
}

TEST(VideoSynthesis, CutChangesSceneOnPeriod) {
  data::VideoSequenceOptions options;
  options.pattern = data::VideoPattern::kCut;
  options.frames = 8;
  options.h = 16;
  options.w = 16;
  options.cut_period = 3;
  const std::vector<Tensor> frames = data::synthesize_video(options, 11);
  for (std::size_t i = 1; i < frames.size(); ++i) {
    const bool cut = i % 3 == 0;
    EXPECT_EQ(!bitwise_equal(frames[i - 1], frames[i]), cut) << "frame " << i;
  }
}

TEST(VideoSynthesis, PanShiftsContent) {
  data::VideoSequenceOptions options;
  options.pattern = data::VideoPattern::kPan;
  options.frames = 4;
  options.h = 16;
  options.w = 16;
  options.pan_step = 2;
  const std::vector<Tensor> frames = data::synthesize_video(options, 5);
  // Frame i+1 is frame i shifted left by pan_step: columns [pan_step, w)
  // of frame i equal columns [0, w - pan_step) of frame i+1.
  for (std::size_t i = 1; i < frames.size(); ++i) {
    for (std::int64_t y = 0; y < 16; ++y) {
      for (std::int64_t x = 0; x < 16 - 2; ++x) {
        ASSERT_EQ(frames[i - 1].raw()[y * 16 + x + 2], frames[i].raw()[y * 16 + x])
            << "frame " << i << " y=" << y << " x=" << x;
      }
    }
    EXPECT_FALSE(bitwise_equal(frames[i - 1], frames[i]));
  }
}

TEST(VideoSynthesis, ParsePatternRoundTrips) {
  const data::VideoPattern patterns[] = {data::VideoPattern::kStatic, data::VideoPattern::kPan,
                                         data::VideoPattern::kCut, data::VideoPattern::kSparkle,
                                         data::VideoPattern::kMixed};
  for (const data::VideoPattern pattern : patterns) {
    EXPECT_EQ(data::parse_video_pattern(data::to_string(pattern)), pattern);
  }
  EXPECT_THROW(data::parse_video_pattern("strobe"), std::invalid_argument);
  EXPECT_THROW(data::parse_video_pattern(""), std::invalid_argument);
}

TEST(VideoSynthesis, RejectsInvalidOptions) {
  data::VideoSequenceOptions options;
  options.frames = 0;
  EXPECT_THROW(data::synthesize_video(options, 1), std::invalid_argument);
}

// ----------------------------------------------------- halo-dirty property

Tensor random_frame(std::uint64_t seed, std::int64_t h, std::int64_t w) {
  Rng rng(seed);
  Tensor frame(1, h, w, 1);
  frame.fill_uniform(rng, 0.0F, 1.0F);
  return frame;
}

// One changed pixel at (y, x): a tile is dirty iff its haloed footprint
// [hy0, hy0+hh) x [hx0, hx0+hw) contains the pixel. Exactness both ways —
// no missed dirty tile (correctness) and no spurious one (efficiency).
void check_single_pixel_dirty(std::int64_t h, std::int64_t w, const core::TilingOptions& options,
                              std::int64_t halo, std::int64_t y, std::int64_t x) {
  const Tensor prev = random_frame(41, h, w);
  Tensor next = prev;
  next.raw()[y * w + x] += 0.25F;
  const core::DeltaPlan plan = core::plan_tile_delta(prev, next, options, halo);
  ASSERT_EQ(plan.tasks.size(), plan.dirty.size());
  ASSERT_EQ(plan.tasks.size(), core::tile_grid(h, w, options, halo).size());
  std::size_t dirty_count = 0;
  for (std::size_t i = 0; i < plan.tasks.size(); ++i) {
    const core::TileTask& t = plan.tasks[i];
    const bool in_footprint =
        y >= t.hy0 && y < t.hy0 + t.hh && x >= t.hx0 && x < t.hx0 + t.hw;
    EXPECT_EQ(plan.dirty[i] != 0, in_footprint)
        << "tile " << i << " at (" << t.y0 << "," << t.x0 << ") halo box (" << t.hy0 << ","
        << t.hx0 << ")+" << t.hh << "x" << t.hw << " pixel (" << y << "," << x << ")";
    if (plan.dirty[i]) ++dirty_count;
  }
  EXPECT_EQ(plan.dirty_count, dirty_count);
  EXPECT_GE(plan.dirty_count, 1U);  // the pixel's own tile is always dirty
}

TEST(TileDeltaPlan, SinglePixelDirtiesExactlyHaloedFootprints) {
  core::TilingOptions options;
  options.tile_h = 4;
  options.tile_w = 4;
  // Interior, tile-corner, and image-boundary pixels on a divisible grid.
  for (const auto& [y, x] : {std::pair<std::int64_t, std::int64_t>{6, 6},
                            {4, 4},
                            {0, 0},
                            {11, 11},
                            {0, 7},
                            {5, 0}}) {
    SCOPED_TRACE("pixel (" + std::to_string(y) + "," + std::to_string(x) + ")");
    check_single_pixel_dirty(12, 12, options, 1, y, x);
  }
}

TEST(TileDeltaPlan, HaloZeroDirtiesOnlyTheOwningTile) {
  core::TilingOptions options;
  options.tile_h = 4;
  options.tile_w = 4;
  const Tensor prev = random_frame(43, 12, 12);
  Tensor next = prev;
  next.raw()[5 * 12 + 6] += 0.5F;  // tile row 1, col 1
  const core::DeltaPlan plan = core::plan_tile_delta(prev, next, options, 0);
  EXPECT_EQ(plan.dirty_count, 1U);
  for (std::size_t i = 0; i < plan.tasks.size(); ++i) {
    EXPECT_EQ(plan.dirty[i] != 0, plan.tasks[i].y0 == 4 && plan.tasks[i].x0 == 4) << i;
  }
}

TEST(TileDeltaPlan, NonDivisibleGridAndWideHalo) {
  core::TilingOptions options;
  options.tile_h = 5;
  options.tile_w = 7;
  for (std::int64_t halo : {0, 2, 3}) {
    for (const auto& [y, x] : {std::pair<std::int64_t, std::int64_t>{0, 0},
                              {12, 16},
                              {9, 13},
                              {4, 6},
                              {5, 7}}) {
      SCOPED_TRACE("halo " + std::to_string(halo) + " pixel (" + std::to_string(y) + "," +
                   std::to_string(x) + ")");
      check_single_pixel_dirty(13, 17, options, halo, y, x);
    }
  }
}

TEST(TileDeltaPlan, TileLargerThanImageIsOneTile) {
  core::TilingOptions options;
  options.tile_h = 64;
  options.tile_w = 64;
  const Tensor prev = random_frame(47, 9, 11);
  Tensor next = prev;
  const core::DeltaPlan clean = core::plan_tile_delta(prev, next, options, 3);
  ASSERT_EQ(clean.tasks.size(), 1U);
  EXPECT_EQ(clean.dirty_count, 0U);
  next.raw()[3] += 1.0F;
  const core::DeltaPlan dirty = core::plan_tile_delta(prev, next, options, 3);
  EXPECT_EQ(dirty.dirty_count, 1U);
}

TEST(TileDeltaPlan, IdenticalFramesAreAllClean) {
  core::TilingOptions options;
  options.tile_h = 4;
  options.tile_w = 4;
  const Tensor prev = random_frame(53, 10, 14);
  const core::DeltaPlan plan = core::plan_tile_delta(prev, prev, options, 2);
  EXPECT_EQ(plan.dirty_count, 0U);
  for (const std::uint8_t d : plan.dirty) EXPECT_EQ(d, 0);
}

TEST(TileDeltaPlan, RejectsMismatchedShapes) {
  core::TilingOptions options;
  EXPECT_THROW(
      core::plan_tile_delta(random_frame(1, 8, 8), random_frame(2, 8, 10), options, 1),
      std::invalid_argument);
  EXPECT_THROW(core::plan_tile_delta(Tensor(2, 8, 8, 1), Tensor(2, 8, 8, 1), options, 1),
               std::invalid_argument);
}

// -------------------------------------------------- splice + delta upscale

TEST(VideoDelta, SpliceCopiesCleanRegionsOnly) {
  core::TilingOptions options;
  options.tile_h = 3;
  options.tile_w = 3;
  const std::int64_t h = 7, w = 8, scale = 2;
  const Tensor prev = random_frame(59, h, w);
  Tensor next = prev;
  next.raw()[0] += 1.0F;  // dirties the top-left neighbourhood
  const core::DeltaPlan plan = core::plan_tile_delta(prev, next, options, 1);
  ASSERT_GT(plan.dirty_count, 0U);
  ASSERT_LT(plan.dirty_count, plan.tasks.size());

  Tensor prev_hr = random_frame(61, h * scale, w * scale);
  Tensor output(1, h * scale, w * scale, 1);
  for (std::int64_t i = 0; i < output.numel(); ++i) output.raw()[i] = -7.0F;  // sentinel
  core::splice_clean_tiles(output, prev_hr, plan, scale);

  for (std::size_t i = 0; i < plan.tasks.size(); ++i) {
    const core::TileTask& t = plan.tasks[i];
    for (std::int64_t y = t.y0 * scale; y < (t.y0 + t.th) * scale; ++y) {
      for (std::int64_t x = t.x0 * scale; x < (t.x0 + t.tw) * scale; ++x) {
        const float got = output.raw()[y * w * scale + x];
        if (plan.dirty[i]) {
          ASSERT_EQ(got, -7.0F) << "dirty tile " << i << " was written";
        } else {
          ASSERT_EQ(got, prev_hr.raw()[y * w * scale + x]) << "clean tile " << i;
        }
      }
    }
  }
}

core::SesrConfig video_config(bool with_bias) {
  core::SesrConfig config;
  config.f = 8;
  config.m = 2;
  config.scale = 2;
  config.expand = 16;
  config.prelu = true;
  config.with_bias = with_bias;
  return config;
}

core::SesrInference make_network(std::uint64_t seed, bool with_bias) {
  Rng rng(seed);
  core::SesrNetwork network(video_config(with_bias), rng);
  core::SesrInference inference(network);
  inference.calibrate_int8({random_frame(seed ^ 0xCA11B0ULL, 12, 12)});
  std::vector<core::LayerPrecision> plan(inference.convolutions().size(),
                                         core::LayerPrecision::kFp16);
  for (std::size_t i = 0; i < plan.size(); i += 2) plan[i] = core::LayerPrecision::kInt8;
  inference.set_hybrid_plan(std::move(plan));
  return inference;
}

// Delta reuse vs from-scratch, tiled path, every precision: recompute dirty
// tiles + splice the rest must equal upscale_tiled of the next frame bitwise.
TEST(VideoDelta, TiledBitIdenticalAllPrecisions) {
  const core::InferencePrecision precisions[] = {
      core::InferencePrecision::kFp32, core::InferencePrecision::kFp16,
      core::InferencePrecision::kInt8, core::InferencePrecision::kHybrid};
  for (const bool with_bias : {false, true}) {
    core::SesrInference net = make_network(71, with_bias);
    core::TilingOptions options;
    options.tile_h = 5;
    options.tile_w = 6;
    // Any halo works for the tiled path (delta recomputes through the same
    // grid as the full pass), and a small one keeps the haloed footprints
    // small enough that sparkle frames actually reuse tiles on this image.
    const std::int64_t halo = 1;
    options.halo = halo;
    data::VideoSequenceOptions vopts;
    vopts.pattern = data::VideoPattern::kSparkle;
    vopts.frames = 4;
    vopts.h = 18;
    vopts.w = 22;
    const std::vector<Tensor> frames = data::synthesize_video(vopts, 73);
    for (const core::InferencePrecision precision : precisions) {
      SCOPED_TRACE("bias=" + std::to_string(with_bias) +
                   " precision=" + std::to_string(static_cast<int>(precision)));
      net.set_precision(precision);
      Tensor prev_hr = core::upscale_tiled(net, frames[0], options);
      for (std::size_t i = 1; i < frames.size(); ++i) {
        std::size_t dirty = 0;
        const Tensor got = core::upscale_video_delta(net, frames[i - 1], prev_hr, frames[i],
                                                     options, halo, /*streaming=*/false, &dirty);
        const Tensor want = core::upscale_tiled(net, frames[i], options);
        ASSERT_EQ(max_abs_diff(got, want), 0.0F) << "frame " << i;
        ASSERT_TRUE(bitwise_equal(got, want)) << "frame " << i;
        // Sparkle touches a handful of pixels; the plan must reuse tiles.
        ASSERT_LT(dirty, core::tile_grid(18, 22, options, halo).size()) << "frame " << i;
        prev_hr = got;  // chain: reuse the delta output as the next prior
      }
    }
  }
}

// Same promise through the streaming pipeline (unbiased networks only — the
// line-buffer pipeline rejects biases by contract).
TEST(VideoDelta, StreamingBitIdenticalAllPrecisions) {
  const core::InferencePrecision precisions[] = {
      core::InferencePrecision::kFp32, core::InferencePrecision::kFp16,
      core::InferencePrecision::kInt8, core::InferencePrecision::kHybrid};
  core::SesrInference net = make_network(79, /*with_bias=*/false);
  core::TilingOptions options;
  options.tile_h = 6;
  options.tile_w = 5;
  const std::int64_t halo = core::receptive_field_radius(net);
  data::VideoSequenceOptions vopts;
  vopts.pattern = data::VideoPattern::kMixed;
  vopts.frames = 5;
  vopts.h = 17;
  vopts.w = 19;
  const std::vector<Tensor> frames = data::synthesize_video(vopts, 83);
  for (const core::InferencePrecision precision : precisions) {
    SCOPED_TRACE("precision=" + std::to_string(static_cast<int>(precision)));
    net.set_precision(precision);
    core::StreamingUpscaler streamer(net);
    Tensor prev_hr = streamer.upscale(frames[0]);
    for (std::size_t i = 1; i < frames.size(); ++i) {
      const Tensor got = core::upscale_video_delta(net, frames[i - 1], prev_hr, frames[i],
                                                   options, halo, /*streaming=*/true);
      const Tensor want = streamer.upscale(frames[i]);
      ASSERT_TRUE(bitwise_equal(got, want)) << "frame " << i;
      prev_hr = got;
    }
  }
}

// A corrupt (stale) prior frame must only cost compute, never correctness:
// byte confirmation marks the mismatching tiles dirty and recomputes them.
TEST(VideoDelta, StaleSnapshotRecomputesNeverSplicesWrong) {
  core::SesrInference net = make_network(89, /*with_bias=*/false);
  core::TilingOptions options;
  options.tile_h = 4;
  options.tile_w = 4;
  const std::int64_t halo = core::receptive_field_radius(net);
  options.halo = halo;
  const Tensor truth_prev = random_frame(97, 12, 12);
  const Tensor next = random_frame(101, 12, 12);
  // The session's LR snapshot disagrees with what produced prev_hr — e.g. a
  // torn update. Every tile whose footprint mismatches must recompute.
  Tensor stale_prev = truth_prev;
  for (std::int64_t i = 0; i < stale_prev.numel(); i += 7) stale_prev.raw()[i] += 0.1F;
  const Tensor prev_hr = core::upscale_tiled(net, truth_prev, options);
  std::size_t dirty = 0;
  const Tensor got = core::upscale_video_delta(net, stale_prev, prev_hr, next, options, halo,
                                               /*streaming=*/false, &dirty);
  const Tensor want = core::upscale_tiled(net, next, options);
  EXPECT_TRUE(bitwise_equal(got, want));
  EXPECT_EQ(dirty, core::tile_grid(12, 12, options, halo).size());  // all dirty
}

}  // namespace
}  // namespace sesr
