// Tests for the Collapsible Linear Block: forward equivalence between
// expanded and collapsed-forward training modes, exact gradient equivalence
// between the two (the paper's Fig. 3 efficient-training claim), residual
// handling, and deployment export.
#include <gtest/gtest.h>

#include <tuple>

#include "core/linear_block.hpp"
#include "nn/conv2d.hpp"
#include "tensor/tensor_ops.hpp"

namespace sesr::core {
namespace {

LinearBlockConfig make_config(std::int64_t kh, std::int64_t kw, std::int64_t in_c,
                              std::int64_t expand, std::int64_t out_c, bool residual,
                              BlockMode mode, bool bias = false) {
  LinearBlockConfig c;
  c.kh = kh;
  c.kw = kw;
  c.in_channels = in_c;
  c.expand_channels = expand;
  c.out_channels = out_c;
  c.short_residual = residual;
  c.with_bias = bias;
  c.mode = mode;
  return c;
}

// Two blocks with identical weights but different modes.
std::pair<std::unique_ptr<LinearBlock>, std::unique_ptr<LinearBlock>> twin_blocks(
    const LinearBlockConfig& base, std::uint64_t seed) {
  Rng rng_a(seed);
  Rng rng_b(seed);
  LinearBlockConfig a = base;
  a.mode = BlockMode::kExpanded;
  LinearBlockConfig b = base;
  b.mode = BlockMode::kCollapsedForward;
  return {std::make_unique<LinearBlock>("lb", a, rng_a),
          std::make_unique<LinearBlock>("lb", b, rng_b)};
}

class BlockGeometry : public ::testing::TestWithParam<std::tuple<int, int, int, bool, bool>> {};

TEST_P(BlockGeometry, ModesProduceIdenticalOutputs) {
  const auto [kh, kw, channels, residual, bias] = GetParam();
  auto cfg = make_config(kh, kw, channels, 48, channels, residual, BlockMode::kExpanded, bias);
  auto [expanded, collapsed] = twin_blocks(cfg, 1000 + kh * 10 + kw);
  Rng rng(5);
  Tensor x(2, 7, 6, channels);
  x.fill_uniform(rng, -1.0F, 1.0F);
  Tensor ya = expanded->forward(x, false);
  Tensor yb = collapsed->forward(x, false);
  EXPECT_LT(max_abs_diff(ya, yb), 2e-4F);
}

INSTANTIATE_TEST_SUITE_P(Space, BlockGeometry,
                         ::testing::Values(std::make_tuple(3, 3, 8, true, false),
                                           std::make_tuple(3, 3, 8, false, false),
                                           std::make_tuple(5, 5, 4, false, false),
                                           std::make_tuple(3, 3, 8, true, true),
                                           std::make_tuple(2, 2, 8, false, false),
                                           std::make_tuple(3, 2, 6, false, true),
                                           std::make_tuple(1, 1, 8, false, false)));

TEST(LinearBlock, EfficientTrainingGradientsMatchExpanded) {
  // The heart of Fig. 3: collapsed-forward training must compute the SAME
  // weight gradients as expanded-space training, to float tolerance.
  auto cfg = make_config(3, 3, 6, 32, 6, /*residual=*/true, BlockMode::kExpanded);
  auto [expanded, collapsed] = twin_blocks(cfg, 42);
  Rng rng(7);
  Tensor x(2, 6, 6, 6);
  x.fill_uniform(rng, -1.0F, 1.0F);
  Tensor grad_out(2, 6, 6, 6);
  grad_out.fill_uniform(rng, -1.0F, 1.0F);

  expanded->forward(x, true);
  nn::zero_gradients(expanded->parameters());
  Tensor gi_a = expanded->backward(grad_out);

  collapsed->forward(x, true);
  nn::zero_gradients(collapsed->parameters());
  Tensor gi_b = collapsed->backward(grad_out);

  EXPECT_LT(max_abs_diff(gi_a, gi_b), 5e-4F) << "input gradients differ across modes";
  EXPECT_LT(max_abs_diff(expanded->expand_weight().grad, collapsed->expand_weight().grad), 5e-3F);
  EXPECT_LT(max_abs_diff(expanded->project_weight().grad, collapsed->project_weight().grad),
            5e-3F);
}

TEST(LinearBlock, EfficientTrainingGradientsMatchExpandedWithBias) {
  auto cfg = make_config(3, 3, 4, 24, 4, /*residual=*/true, BlockMode::kExpanded, /*bias=*/true);
  auto [expanded, collapsed] = twin_blocks(cfg, 43);
  Rng rng(9);
  Tensor x(1, 5, 5, 4);
  x.fill_uniform(rng, -1.0F, 1.0F);
  Tensor grad_out(1, 5, 5, 4);
  grad_out.fill_uniform(rng, -1.0F, 1.0F);

  expanded->forward(x, true);
  nn::zero_gradients(expanded->parameters());
  expanded->backward(grad_out);
  collapsed->forward(x, true);
  nn::zero_gradients(collapsed->parameters());
  collapsed->backward(grad_out);

  auto pa = expanded->parameters();
  auto pb = collapsed->parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_LT(max_abs_diff(pa[i]->grad, pb[i]->grad), 5e-3F) << pa[i]->name;
  }
}

TEST(LinearBlock, ResidualRequiresMatchingChannelsAndOddKernel) {
  Rng rng(11);
  EXPECT_THROW(LinearBlock("bad", make_config(3, 3, 4, 16, 8, true, BlockMode::kExpanded), rng),
               std::invalid_argument);
  EXPECT_THROW(LinearBlock("bad", make_config(2, 2, 4, 16, 4, true, BlockMode::kExpanded), rng),
               std::invalid_argument);
}

TEST(LinearBlock, ResidualForwardAddsInput) {
  Rng rng_a(21);
  Rng rng_b(21);
  auto with = LinearBlock("lb", make_config(3, 3, 5, 20, 5, true, BlockMode::kExpanded), rng_a);
  auto without = LinearBlock("lb", make_config(3, 3, 5, 20, 5, false, BlockMode::kExpanded), rng_b);
  Rng rng(3);
  Tensor x(1, 5, 5, 5);
  x.fill_uniform(rng, -1.0F, 1.0F);
  Tensor diff = sub(with.forward(x, false), without.forward(x, false));
  EXPECT_LT(max_abs_diff(diff, x), 1e-5F);
}

TEST(LinearBlock, CollapsedWeightFoldsResidual) {
  Rng rng(31);
  LinearBlock block("lb", make_config(3, 3, 4, 16, 4, true, BlockMode::kCollapsedForward), rng);
  Tensor w = block.collapsed_weight();
  Rng xrng(1);
  Tensor x(1, 6, 6, 4);
  x.fill_uniform(xrng, -1.0F, 1.0F);
  Tensor via_weight = nn::conv2d(x, w, nn::Padding::kSame);
  Tensor via_forward = block.forward(x, false);
  EXPECT_LT(max_abs_diff(via_weight, via_forward), 1e-5F);
}

TEST(LinearBlock, CollapsedParameterCount) {
  Rng rng(33);
  LinearBlock block("lb", make_config(3, 3, 16, 256, 16, true, BlockMode::kExpanded), rng);
  EXPECT_EQ(block.collapsed_parameter_count(), 3 * 3 * 16 * 16);
  LinearBlock biased("lb2", make_config(5, 5, 1, 256, 16, false, BlockMode::kExpanded, true), rng);
  EXPECT_EQ(biased.collapsed_parameter_count(), 5 * 5 * 16 + 16);
}

TEST(LinearBlock, ParameterListSize) {
  Rng rng(35);
  LinearBlock plain("a", make_config(3, 3, 4, 16, 4, false, BlockMode::kExpanded), rng);
  EXPECT_EQ(plain.parameters().size(), 2U);
  LinearBlock biased("b", make_config(3, 3, 4, 16, 4, false, BlockMode::kExpanded, true), rng);
  EXPECT_EQ(biased.parameters().size(), 4U);
}

TEST(LinearBlock, BackwardBeforeForwardThrows) {
  Rng rng(37);
  LinearBlock block("lb", make_config(3, 3, 4, 16, 4, false, BlockMode::kCollapsedForward), rng);
  Tensor g(1, 4, 4, 4);
  EXPECT_THROW(block.backward(g), std::logic_error);
}

TEST(LinearBlock, InputChannelMismatchThrows) {
  Rng rng(39);
  LinearBlock block("lb", make_config(3, 3, 4, 16, 4, false, BlockMode::kExpanded), rng);
  Tensor x(1, 4, 4, 3);
  EXPECT_THROW(block.forward(x, false), std::invalid_argument);
}

TEST(LinearBlock, TrainingReducesLossInBothModes) {
  // One-block regression: learn y = 2x. Both modes should fit it; their loss
  // trajectories must agree step for step (same updates).
  for (const BlockMode mode : {BlockMode::kExpanded, BlockMode::kCollapsedForward}) {
    Rng rng(55);
    LinearBlock block("lb", make_config(3, 3, 2, 16, 2, true, mode), rng);
    Rng data_rng(66);
    float first_loss = 0.0F;
    float last_loss = 0.0F;
    const float lr = 0.005F;  // expanded parameterization amplifies raw SGD steps
    for (int step = 0; step < 200; ++step) {
      Tensor x(1, 6, 6, 2);
      x.fill_uniform(data_rng, -1.0F, 1.0F);
      Tensor target = scale(x, 2.0F);
      Tensor y = block.forward(x, true);
      Tensor diff = sub(y, target);
      const float loss = l2_norm(diff);
      if (step == 0) first_loss = loss;
      last_loss = loss;
      nn::zero_gradients(block.parameters());
      block.backward(scale(diff, 2.0F / static_cast<float>(diff.numel())));
      for (nn::Parameter* p : block.parameters()) axpy_inplace(p->value, p->grad, -lr);
    }
    EXPECT_LT(last_loss, first_loss * 0.5F) << "mode " << static_cast<int>(mode);
  }
}

}  // namespace
}  // namespace sesr::core
