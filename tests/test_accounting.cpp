// Accounting tests: parameter counts and MAC counts must reproduce the
// paper's published numbers exactly (Tables 1 and 2 columns, Fig. 3 training
// costs, Table 3 MAC rows). These are closed-form identities, so exact
// integer equality is asserted.
#include <gtest/gtest.h>

#include "core/macs.hpp"
#include "core/paper_reference.hpp"
#include "core/training_macs.hpp"

namespace sesr::core {
namespace {

TEST(Parameters, SesrX2MatchesPaperTable1) {
  EXPECT_EQ(sesr_parameter_count(sesr_m3(2)), 8912);     // 8.91K
  EXPECT_EQ(sesr_parameter_count(sesr_m5(2)), 13520);    // 13.52K
  EXPECT_EQ(sesr_parameter_count(sesr_m7(2)), 18128);    // 18.12K
  EXPECT_EQ(sesr_parameter_count(sesr_m11(2)), 27344);   // 27.34K
  EXPECT_EQ(sesr_parameter_count(sesr_xl(2)), 105376);   // 105.37K
}

TEST(Parameters, SesrX4MatchesPaperTable2) {
  EXPECT_EQ(sesr_parameter_count(sesr_m3(4)), 13712);    // 13.71K
  EXPECT_EQ(sesr_parameter_count(sesr_m5(4)), 18320);    // 18.32K
  EXPECT_EQ(sesr_parameter_count(sesr_m7(4)), 22928);    // 22.92K
  EXPECT_EQ(sesr_parameter_count(sesr_m11(4)), 32144);   // 32.14K
  EXPECT_EQ(sesr_parameter_count(sesr_xl(4)), 114976);   // 114.97K
}

TEST(Parameters, FsrcnnMatchesPaper) {
  EXPECT_EQ(fsrcnn_parameter_count(), 12464);  // 12.46K
}

TEST(Macs, SesrX2To720pMatchesPaperTable1) {
  // Table 1 reports MACs to produce a 1280x720 output via x2 (LR = 640x360).
  const std::int64_t h = lr_extent_for(720, 2);
  const std::int64_t w = lr_extent_for(1280, 2);
  EXPECT_NEAR(sesr_macs(sesr_m3(2), h, w).giga_macs(), 2.05, 0.01);
  EXPECT_NEAR(sesr_macs(sesr_m5(2), h, w).giga_macs(), 3.11, 0.01);
  EXPECT_NEAR(sesr_macs(sesr_m7(2), h, w).giga_macs(), 4.17, 0.01);
  EXPECT_NEAR(sesr_macs(sesr_m11(2), h, w).giga_macs(), 6.30, 0.01);
  EXPECT_NEAR(sesr_macs(sesr_xl(2), h, w).giga_macs(), 24.27, 0.02);
}

TEST(Macs, SesrX4To720pMatchesPaperTable2) {
  const std::int64_t h = lr_extent_for(720, 4);
  const std::int64_t w = lr_extent_for(1280, 4);
  EXPECT_NEAR(sesr_macs(sesr_m3(4), h, w).giga_macs(), 0.79, 0.01);
  EXPECT_NEAR(sesr_macs(sesr_m5(4), h, w).giga_macs(), 1.05, 0.01);
  EXPECT_NEAR(sesr_macs(sesr_m7(4), h, w).giga_macs(), 1.32, 0.01);
  EXPECT_NEAR(sesr_macs(sesr_m11(4), h, w).giga_macs(), 1.85, 0.01);
  EXPECT_NEAR(sesr_macs(sesr_xl(4), h, w).giga_macs(), 6.62, 0.01);
}

TEST(Macs, FsrcnnTo720pMatchesPaper) {
  EXPECT_NEAR(fsrcnn_macs(360, 640, 2).giga_macs(), 6.00, 0.01);   // Table 1
  EXPECT_NEAR(fsrcnn_macs(180, 320, 4).giga_macs(), 4.63, 0.01);   // Table 2
}

TEST(Macs, Table3FullHdRows) {
  // Table 3: FSRCNN x2 at 1080p = 54G; SESR-M5 x2 = 28G; x4 = 38G;
  // tiled 400x300 x2 = 1.62G, x4 = 2.19G.
  EXPECT_NEAR(fsrcnn_macs(1080, 1920, 2).giga_macs(), 54.0, 0.5);
  EXPECT_NEAR(sesr_macs(sesr_m5(2), 1080, 1920).giga_macs(), 28.0, 0.1);
  EXPECT_NEAR(sesr_macs(sesr_m5(4), 1080, 1920).giga_macs(), 38.0, 0.1);
  EXPECT_NEAR(sesr_macs(sesr_m5(2), 300, 400).giga_macs(), 1.62, 0.01);
  EXPECT_NEAR(sesr_macs(sesr_m5(4), 300, 400).giga_macs(), 2.19, 0.01);
}

TEST(Macs, PaperHeadlineRatios) {
  // "SESR-M11 ... 331x fewer MACs than VDSR" (x4) and "97x" (x2).
  const double vdsr = 612.6;  // GMACs, from the paper's tables
  const double m11_x2 = sesr_macs(sesr_m11(2), 360, 640).giga_macs();
  const double m11_x4 = sesr_macs(sesr_m11(4), 180, 320).giga_macs();
  EXPECT_NEAR(vdsr / m11_x2, 97.0, 2.0);
  EXPECT_NEAR(vdsr / m11_x4, 331.0, 5.0);
}

TEST(Macs, LrExtentValidation) {
  EXPECT_EQ(lr_extent_for(720, 2), 360);
  EXPECT_THROW(lr_extent_for(721, 2), std::invalid_argument);
}

TEST(TrainingMacs, Fig3NumbersReproduceExactly) {
  // Fig. 3: SESR-M5, batch 32 of 64x64 crops: 41.77B expanded vs 1.84B
  // collapsed-forward per forward pass.
  const TrainingMacReport r = training_forward_macs(sesr_m5(2), 32, 64, 64);
  EXPECT_NEAR(static_cast<double>(r.expanded_forward_macs) * 1e-9, 41.77, 0.01);
  EXPECT_NEAR(static_cast<double>(r.efficient_total()) * 1e-9, 1.84, 0.01);
  EXPECT_GT(r.speedup(), 20.0);
  // The per-step collapse itself is tiny relative to the narrow forward.
  EXPECT_LT(r.collapse_macs, r.collapsed_forward_macs / 10);
}

TEST(TrainingMacs, CollapseCostIndependentOfBatchAndImage) {
  const TrainingMacReport small = training_forward_macs(sesr_m5(2), 1, 16, 16);
  const TrainingMacReport large = training_forward_macs(sesr_m5(2), 32, 64, 64);
  EXPECT_EQ(small.collapse_macs, large.collapse_macs);
  EXPECT_LT(small.collapsed_forward_macs, large.collapsed_forward_macs);
}

TEST(PaperReference, TablesAreWellFormed) {
  for (const auto& row : paper::kTable1X2) {
    EXPECT_FALSE(row.model.empty());
    for (const auto& entry : row.sets) {
      if (entry.present()) {
        EXPECT_GT(entry.psnr, 20.0);
        EXPECT_LT(entry.psnr, 45.0);
      }
    }
  }
  // SESR-M11 dominates TPSR-NoGAN in the paper's medium regime on Set5.
  const auto& tpsr = paper::kTable1X2[7];
  const auto& m11 = paper::kTable1X2[8];
  EXPECT_EQ(tpsr.model, "TPSR-NoGAN");
  EXPECT_EQ(m11.model, "SESR-M11");
  EXPECT_GT(m11.sets[0].psnr, tpsr.sets[0].psnr);
  EXPECT_LT(m11.macs_g, tpsr.macs_g);
}

}  // namespace
}  // namespace sesr::core
