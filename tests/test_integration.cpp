// End-to-end integration tests: the full train -> collapse -> deploy ->
// evaluate pipeline on synthetic data, checkpointing through the filesystem,
// and the cross-model training harness used by the Section 5.4 bench.
#include <gtest/gtest.h>

#include <filesystem>

#include "baselines/fsrcnn.hpp"
#include "core/sesr_inference.hpp"
#include "core/sesr_network.hpp"
#include "data/dataset.hpp"
#include "data/image_io.hpp"
#include "data/resize.hpp"
#include "metrics/evaluate.hpp"
#include "metrics/psnr.hpp"
#include "tensor/tensor_ops.hpp"
#include "train/trainer.hpp"

namespace sesr {
namespace {

core::SesrConfig tiny_sesr() {
  core::SesrConfig c;
  c.f = 8;
  c.m = 2;
  c.scale = 2;
  c.expand = 32;
  return c;
}

TEST(Integration, TrainCollapseDeployEvaluate) {
  Rng rng(1);
  data::SrDataset dataset = data::SrDataset::synthetic_corpus(6, 48, 48, 2, rng);
  Rng net_rng(2);
  core::SesrNetwork net(tiny_sesr(), net_rng);

  // PSNR of the untrained network on a validation image.
  auto [val_lr, val_hr] = dataset.image_pair(0);
  const double psnr_before = metrics::psnr_shaved(net.predict(val_lr), val_hr, 2);

  train::Adam adam(5e-4F);  // the paper's optimizer and LR
  train::ConstantLr schedule(5e-4F);
  train::Trainer trainer(net, adam, schedule, train::l1_loss);
  Rng batch_rng(3);
  train::TrainOptions options;
  options.steps = 120;
  const train::TrainHistory history = trainer.run(
      [&](std::int64_t) { return dataset.sample_batch(4, 12, batch_rng); }, options);

  // Loss went down and PSNR went up.
  EXPECT_LT(history.mean_tail_loss(20), history.loss.front());
  const double psnr_after = metrics::psnr_shaved(net.predict(val_lr), val_hr, 2);
  EXPECT_GT(psnr_after, psnr_before + 1.0) << "training produced < 1 dB improvement";

  // Collapse and verify the deployed network is numerically the same model.
  core::SesrInference deployed(net);
  EXPECT_LT(max_abs_diff(deployed.upscale(val_lr), net.predict(val_lr)), 1e-3F);

  // Full evaluation plumbing runs on the deployed model.
  const auto set = data::make_benchmark_set("Set5", 48, true);
  const metrics::QualityScore score = metrics::evaluate_on_set(
      [&](const Tensor& lr_img) { return deployed.upscale(lr_img); }, set, 2);
  EXPECT_GT(score.psnr, 15.0);
}

TEST(Integration, CheckpointSurvivesProcessBoundarySimulation) {
  // Train a little, save the *expanded* model, reload into a fresh network,
  // and verify identical predictions; then save the collapsed deployment.
  Rng rng(5);
  data::SrDataset dataset = data::SrDataset::synthetic_corpus(2, 32, 32, 2, rng);
  Rng net_rng(6);
  core::SesrNetwork net(tiny_sesr(), net_rng);
  train::Adam adam(1e-3F);
  train::ConstantLr schedule(1e-3F);
  train::Trainer trainer(net, adam, schedule, train::l1_loss);
  Rng batch_rng(7);
  train::TrainOptions options;
  options.steps = 10;
  trainer.run([&](std::int64_t) { return dataset.sample_batch(2, 8, batch_rng); }, options);

  const auto dir = std::filesystem::temp_directory_path();
  const std::string expanded_path = (dir / "sesr_expanded.ckpt").string();
  save_tensors(expanded_path, nn::parameters_to_map(net.parameters()));

  Rng fresh_rng(99);  // different init — must be fully overwritten by the load
  core::SesrNetwork restored(tiny_sesr(), fresh_rng);
  nn::load_parameters_from_map(restored.parameters(), load_tensors(expanded_path));

  auto [lr_img, hr_img] = dataset.image_pair(0);
  EXPECT_EQ(max_abs_diff(net.predict(lr_img), restored.predict(lr_img)), 0.0F);

  const std::string collapsed_path = (dir / "sesr_collapsed.ckpt").string();
  core::SesrInference deployed(net);
  save_tensors(collapsed_path, deployed.to_tensor_map());
  core::SesrInference redeployed(load_tensors(collapsed_path));
  EXPECT_EQ(max_abs_diff(deployed.upscale(lr_img), redeployed.upscale(lr_img)), 0.0F);

  std::filesystem::remove(expanded_path);
  std::filesystem::remove(collapsed_path);
}

TEST(Integration, ImageFileUpscalePipeline) {
  // PGM in -> Y upscale -> PGM out, the quickstart example's exact flow.
  Rng rng(11);
  Tensor hr = data::synthesize_image(data::ImageFamily::kObjects, 32, 32, rng);
  Tensor lr_img = data::downscale_bicubic(hr, 2);
  const auto dir = std::filesystem::temp_directory_path();
  const std::string in_path = (dir / "sesr_in.pgm").string();
  data::write_pnm(in_path, lr_img);

  Rng net_rng(12);
  core::SesrInference net{core::SesrNetwork(tiny_sesr(), net_rng)};
  Tensor loaded = data::read_pnm(in_path);
  Tensor up = net.upscale(loaded);
  EXPECT_EQ(up.shape(), hr.shape());

  const std::string out_path = (dir / "sesr_out.pgm").string();
  // Outputs may exceed [0,1] slightly; write_pnm clamps.
  data::write_pnm(out_path, up);
  Tensor reread = data::read_pnm(out_path);
  EXPECT_EQ(reread.shape(), up.shape());
  std::filesystem::remove(in_path);
  std::filesystem::remove(out_path);
}

TEST(Integration, X4PathTrainsAndCollapses) {
  Rng rng(13);
  data::SrDataset dataset = data::SrDataset::synthetic_corpus(3, 48, 48, 4, rng);
  core::SesrConfig cfg = tiny_sesr();
  cfg.scale = 4;
  Rng net_rng(14);
  core::SesrNetwork net(cfg, net_rng);
  train::Adam adam(5e-4F);
  train::ConstantLr schedule(5e-4F);
  train::Trainer trainer(net, adam, schedule, train::l1_loss);
  Rng batch_rng(15);
  train::TrainOptions options;
  options.steps = 20;
  const auto history = trainer.run(
      [&](std::int64_t) { return dataset.sample_batch(2, 6, batch_rng); }, options);
  EXPECT_LT(history.mean_tail_loss(5), history.loss.front() * 1.5F);  // sane, not diverging
  core::SesrInference deployed(net);
  auto [lr_img, hr_img] = dataset.image_pair(0);
  Tensor up = deployed.upscale(lr_img);
  EXPECT_EQ(up.shape(), hr_img.shape());
  EXPECT_LT(max_abs_diff(up, net.predict(lr_img)), 1e-3F);
}

TEST(Integration, FsrcnnSharesTheTrainingHarness) {
  // The Section 5.2 bench trains FSRCNN with the same Trainer; smoke-check it.
  Rng rng(17);
  data::SrDataset dataset = data::SrDataset::synthetic_corpus(2, 32, 32, 2, rng);
  Rng net_rng(18);
  baselines::FsrcnnConfig cfg;
  cfg.d = 12;
  cfg.s = 6;
  cfg.m = 1;
  auto model = baselines::make_fsrcnn(cfg, net_rng);
  train::Adam adam(1e-3F);
  train::ConstantLr schedule(1e-3F);
  train::Trainer trainer(*model, adam, schedule, train::l1_loss);
  Rng batch_rng(19);
  train::TrainOptions options;
  options.steps = 25;
  const auto history = trainer.run(
      [&](std::int64_t) { return dataset.sample_batch(2, 8, batch_rng); }, options);
  EXPECT_LT(history.mean_tail_loss(5), history.loss.front());
}

}  // namespace
}  // namespace sesr
