// Tests for the binary16 conversion module and the fp16 inference path.
//
// The conversion proofs are exhaustive where the domain allows it: every one
// of the 65536 half bit patterns must survive half->float->half unchanged
// (NaNs may only be quietened), and the F16C kernels must agree bit-for-bit
// with the scalar reference on the full half domain plus randomized and
// golden float inputs. The inference-path tests pin the determinism
// guarantees the serving layer relies on: thread-count invariance and
// tiled == full-frame bit-identity in fp16 mode.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <thread>
#include <vector>

#include "core/sesr_inference.hpp"
#include "core/sesr_network.hpp"
#include "core/tiled_inference.hpp"
#include "nn/conv2d.hpp"
#include "nn/init.hpp"
#include "tensor/fp16.hpp"
#include "tensor/tensor_ops.hpp"
#include "tensor/thread_pool.hpp"

namespace sesr::fp16 {
namespace {

bool half_is_nan(std::uint16_t h) { return (h & 0x7c00U) == 0x7c00U && (h & 0x3ffU) != 0; }

// Restores the dispatch (and lets a test skip cleanly when F16C is absent).
class IsaGuard {
 public:
  explicit IsaGuard(F16cIsa isa) : ok_(set_f16c_isa(isa)) {}
  ~IsaGuard() { set_f16c_isa(F16cIsa::kAuto); }
  bool ok() const { return ok_; }

 private:
  bool ok_;
};

// ------------------------------------------------- scalar conversion proofs

TEST(Fp16Scalar, ExhaustiveRoundTripAllHalfPatterns) {
  // Every half value is exactly representable in fp32, so converting back
  // must reproduce the original bits. NaNs are the one exception: the
  // float->half direction quietens them (sets the top mantissa bit), matching
  // VCVTPS2PH, so compare with the quiet bit forced on both sides.
  for (std::uint32_t h = 0; h <= 0xffffU; ++h) {
    const auto bits = static_cast<std::uint16_t>(h);
    const float f = half_bits_to_float(bits);
    const std::uint16_t back = float_to_half_bits(f);
    if (half_is_nan(bits)) {
      ASSERT_TRUE(std::isnan(f)) << std::hex << h;
      ASSERT_EQ(back | 0x0200U, bits | 0x0200U) << std::hex << h;
    } else {
      ASSERT_EQ(back, bits) << std::hex << h;
    }
  }
}

TEST(Fp16Scalar, GoldenHalfToFloat) {
  EXPECT_EQ(half_bits_to_float(0x0000), 0.0F);
  EXPECT_TRUE(std::signbit(half_bits_to_float(0x8000)));
  EXPECT_EQ(half_bits_to_float(0x3c00), 1.0F);
  EXPECT_EQ(half_bits_to_float(0xc000), -2.0F);
  EXPECT_EQ(half_bits_to_float(0x3555), 0.333251953125F);
  EXPECT_EQ(half_bits_to_float(0x7bff), 65504.0F);   // largest finite half
  EXPECT_EQ(half_bits_to_float(0x0400), 0x1.0p-14F); // smallest normal
  EXPECT_EQ(half_bits_to_float(0x03ff), 0x1.ff8p-15F); // largest subnormal
  EXPECT_EQ(half_bits_to_float(0x0001), 0x1.0p-24F); // smallest subnormal
  EXPECT_EQ(half_bits_to_float(0x7c00), std::numeric_limits<float>::infinity());
  EXPECT_EQ(half_bits_to_float(0xfc00), -std::numeric_limits<float>::infinity());
  EXPECT_TRUE(std::isnan(half_bits_to_float(0x7e00)));
  EXPECT_TRUE(std::isnan(half_bits_to_float(0xfdab)));
}

TEST(Fp16Scalar, GoldenFloatToHalfRoundToNearestEven) {
  EXPECT_EQ(float_to_half_bits(0.0F), 0x0000);
  EXPECT_EQ(float_to_half_bits(-0.0F), 0x8000);
  EXPECT_EQ(float_to_half_bits(1.0F), 0x3c00);
  EXPECT_EQ(float_to_half_bits(-2.0F), 0xc000);
  // One half-ULP above 1.0 is a tie: rounds to the even mantissa (1.0).
  EXPECT_EQ(float_to_half_bits(1.0F + 0x1.0p-11F), 0x3c00);
  // Just past the tie rounds up.
  EXPECT_EQ(float_to_half_bits(1.0F + 0x1.2p-11F), 0x3c01);
  // Tie with an odd low mantissa bit rounds up to even.
  EXPECT_EQ(float_to_half_bits(1.0F + 0x1.8p-10F), 0x3c02);
  EXPECT_EQ(float_to_half_bits(65504.0F), 0x7bff);
  // 65520 is the tie between 65504 and 2^16; the carry overflows to inf.
  EXPECT_EQ(float_to_half_bits(65520.0F), 0x7c00);
  EXPECT_EQ(float_to_half_bits(65536.0F), 0x7c00);
  EXPECT_EQ(float_to_half_bits(-1.0e9F), 0xfc00);
  // Smallest subnormal and the underflow ties around it.
  EXPECT_EQ(float_to_half_bits(0x1.0p-24F), 0x0001);
  EXPECT_EQ(float_to_half_bits(0x1.0p-25F), 0x0000);  // tie -> even (zero)
  EXPECT_EQ(float_to_half_bits(0x1.8p-25F), 0x0001);  // past the tie
  EXPECT_EQ(float_to_half_bits(-0x1.0p-26F), 0x8000); // deep underflow keeps sign
  // Subnormal -> normal promotion via mantissa carry.
  EXPECT_EQ(float_to_half_bits(0x1.ffcp-15F), 0x0400);
  EXPECT_EQ(float_to_half_bits(std::numeric_limits<float>::infinity()), 0x7c00);
  EXPECT_EQ(float_to_half_bits(-std::numeric_limits<float>::infinity()), 0xfc00);
  const std::uint16_t nan_bits = float_to_half_bits(std::numeric_limits<float>::quiet_NaN());
  EXPECT_TRUE(half_is_nan(nan_bits));
  EXPECT_EQ(nan_bits & 0x0200U, 0x0200U);  // quietened
}

// ------------------------------------------------- F16C vs scalar identity

TEST(Fp16F16c, HalfToFloatBitIdenticalToScalarExhaustive) {
  IsaGuard guard(F16cIsa::kF16c);
  if (!guard.ok()) GTEST_SKIP() << "F16C unavailable on this host";
  std::vector<Half> src(0x10000);
  for (std::uint32_t h = 0; h <= 0xffffU; ++h) src[h].bits = static_cast<std::uint16_t>(h);
  std::vector<float> got(src.size());
  convert_to_float(src.data(), got.data(), static_cast<std::int64_t>(src.size()));
  for (std::uint32_t h = 0; h <= 0xffffU; ++h) {
    const float want = half_bits_to_float(static_cast<std::uint16_t>(h));
    std::uint32_t gb = 0;
    std::uint32_t wb = 0;
    std::memcpy(&gb, &got[h], 4);
    std::memcpy(&wb, &want, 4);
    ASSERT_EQ(gb, wb) << "half bits 0x" << std::hex << h;
  }
}

TEST(Fp16F16c, FloatToHalfBitIdenticalToScalar) {
  IsaGuard guard(F16cIsa::kF16c);
  if (!guard.ok()) GTEST_SKIP() << "F16C unavailable on this host";
  // Every representable half (exact cases), plus randomized floats across
  // the regimes where rounding differs, plus the golden edge values.
  std::vector<float> src;
  for (std::uint32_t h = 0; h <= 0xffffU; ++h) {
    const float f = half_bits_to_float(static_cast<std::uint16_t>(h));
    if (!std::isnan(f)) src.push_back(f);
  }
  Rng rng(7);
  for (int i = 0; i < 100000; ++i) {
    const float mag = std::exp(rng.uniform(-20.0F, 12.0F));  // ~2^-29 .. 2^17
    src.push_back(rng.uniform(-1.0F, 1.0F) * mag);
  }
  src.insert(src.end(), {0.0F, -0.0F, 65519.9F, 65520.0F, 0x1.0p-25F, -0x1.0p-25F,
                         std::numeric_limits<float>::infinity(),
                         -std::numeric_limits<float>::infinity()});
  std::vector<Half> got(src.size());
  convert_to_half(src.data(), got.data(), static_cast<std::int64_t>(src.size()));
  for (std::size_t i = 0; i < src.size(); ++i) {
    ASSERT_EQ(got[i].bits, float_to_half_bits(src[i])) << "input " << src[i];
  }
}

// ------------------------------------------------------- HalfTensor helpers

TEST(HalfTensor, RoundTripMatchesRoundThroughHalf) {
  Rng rng(11);
  Tensor t(2, 5, 7, 3);
  t.fill_uniform(rng, -4.0F, 4.0F);
  const Tensor round_tripped = HalfTensor::from_float(t).to_float();
  Tensor want = t;
  round_through_half(want.raw(), want.numel());
  EXPECT_EQ(max_abs_diff(round_tripped, want), 0.0F);
  // Rounding is idempotent: a second projection changes nothing.
  Tensor again = want;
  round_through_half(again.raw(), again.numel());
  EXPECT_EQ(max_abs_diff(again, want), 0.0F);
}

TEST(HalfTensor, AddInplaceRoundsOncePerElement) {
  Rng rng(13);
  Tensor a(1, 4, 4, 8);
  Tensor b(1, 4, 4, 8);
  a.fill_uniform(rng, -2.0F, 2.0F);
  b.fill_uniform(rng, -2.0F, 2.0F);
  HalfTensor ha = HalfTensor::from_float(a);
  const HalfTensor hb = HalfTensor::from_float(b);
  const Tensor fa = ha.to_float();
  const Tensor fb = hb.to_float();
  add_inplace(ha, hb);
  const Tensor got = ha.to_float();
  for (std::int64_t i = 0; i < got.numel(); ++i) {
    const float want = half_to_float(float_to_half(fa.raw()[i] + fb.raw()[i]));
    ASSERT_EQ(got.raw()[i], want) << "index " << i;
  }
  EXPECT_THROW(add_inplace(ha, HalfTensor(1, 2, 2, 8)), std::invalid_argument);
}

// ------------------------------------------------------- fp16 conv/network

core::SesrConfig small_config() {
  core::SesrConfig config;
  config.f = 8;
  config.m = 2;
  config.scale = 2;
  config.expand = 16;
  config.prelu = true;
  config.with_bias = false;
  return config;
}

TEST(Fp16Conv, CloseToFp32OnRoundedOperands) {
  Rng rng(17);
  Tensor x(1, 12, 14, 6);
  x.fill_uniform(rng, -1.0F, 1.0F);
  Tensor w = nn::he_normal_kernel(3, 3, 6, 8, rng);
  round_through_half(x.raw(), x.numel());
  round_through_half(w.raw(), w.numel());
  const Tensor want = nn::conv2d(x, w, nn::Padding::kSame);
  const Tensor got =
      nn::conv2d_fp16(HalfTensor::from_float(x), HalfTensor::from_float(w), nullptr,
                      nn::Epilogue{}, nn::Padding::kSame)
          .to_float();
  // One output rounding on top of an fp32-accumulated dot product of rounded
  // operands: the only divergence is the final binary16 store.
  EXPECT_LT(max_abs_diff(got, want), 2e-2F);
}

TEST(Fp16Network, TiledBitIdenticalToFullFrame) {
  Rng rng(19);
  core::SesrNetwork network(small_config(), rng);
  core::SesrInference inference(network);
  inference.set_precision(core::InferencePrecision::kFp16);
  Tensor frame(1, 21, 17, 1);
  frame.fill_uniform(rng, 0.0F, 1.0F);
  const Tensor full = inference.upscale(frame);
  core::TilingOptions options;
  options.tile_h = options.tile_w = 8;
  const Tensor tiled = core::upscale_tiled(inference, frame, options);
  // Fixed stripe boundaries and k-block order make per-pixel fp32
  // accumulation identical for any spatial partition; the per-stripe binary16
  // rounding is elementwise, so exact-halo tiles agree bit for bit.
  EXPECT_EQ(max_abs_diff(tiled, full), 0.0F);
}

TEST(Fp16Network, BitIdenticalAcrossThreadCounts) {
  Rng rng(23);
  core::SesrNetwork network(small_config(), rng);
  core::SesrInference inference(network);
  inference.set_precision(core::InferencePrecision::kFp16);
  Tensor frame(1, 19, 23, 1);
  frame.fill_uniform(rng, 0.0F, 1.0F);
  ThreadPool::set_global_threads(1);
  const Tensor serial = inference.upscale(frame);
  ThreadPool::set_global_threads(4);
  const Tensor threaded = inference.upscale(frame);
  unsigned restore = std::thread::hardware_concurrency();
  if (const char* env = std::getenv("SESR_NUM_THREADS")) {
    const long t = std::strtol(env, nullptr, 10);
    restore = t > 0 ? static_cast<unsigned>(t) : 1U;
  }
  ThreadPool::set_global_threads(restore > 0 ? restore : 1U);
  EXPECT_EQ(max_abs_diff(serial, threaded), 0.0F);
}

TEST(Fp16Network, PrecisionSwitchRoundTripsAndStaysClose) {
  Rng rng(29);
  core::SesrNetwork network(small_config(), rng);
  core::SesrInference inference(network);
  Tensor frame(1, 16, 16, 1);
  frame.fill_uniform(rng, 0.0F, 1.0F);
  const Tensor fp32_out = inference.upscale(frame);
  inference.set_precision(core::InferencePrecision::kFp16);
  EXPECT_EQ(inference.precision(), core::InferencePrecision::kFp16);
  const Tensor fp16_out = inference.upscale(frame);
  EXPECT_LT(max_abs_diff(fp16_out, fp32_out), 1e-2F);
  // Switching back restores the exact fp32 result.
  inference.set_precision(core::InferencePrecision::kFp32);
  EXPECT_EQ(max_abs_diff(inference.upscale(frame), fp32_out), 0.0F);
}

}  // namespace
}  // namespace sesr::fp16
