// Tests for the int8 serving path: the canonical quantizer, the packed
// u8 x s8 GEMM micro-kernels (every ISA build against an int64 reference and
// against each other), the fused conv2d_s8 layer, end-to-end calibrated
// inference (kInt8 / kHybrid), checkpoint round-trips, the hybrid-precision
// planner, and the cross-mode bit-exactness promise (full-frame == tiled ==
// streaming for pure int8).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "check/reference.hpp"
#include "core/hybrid_plan.hpp"
#include "core/sesr_inference.hpp"
#include "core/sesr_network.hpp"
#include "core/streaming.hpp"
#include "core/tiled_inference.hpp"
#include "metrics/psnr.hpp"
#include "nn/conv2d_s8.hpp"
#include "nn/gemm_s8.hpp"
#include "tensor/rng.hpp"
#include "tensor/tensor.hpp"
#include "tensor/tensor_ops.hpp"

namespace sesr {
namespace {

core::SesrConfig small_config(bool with_bias = false, bool prelu = true) {
  core::SesrConfig config;
  config.f = 8;
  config.m = 2;
  config.scale = 2;
  config.expand = 16;
  config.prelu = prelu;
  config.with_bias = with_bias;
  return config;
}

core::SesrInference make_inference(std::uint64_t seed,
                                   const core::SesrConfig& config = small_config()) {
  Rng rng(seed);
  core::SesrNetwork network(config, rng);
  return core::SesrInference(network);
}

Tensor make_frame(std::uint64_t seed, std::int64_t h, std::int64_t w) {
  Rng rng(seed);
  Tensor frame(1, h, w, 1);
  frame.fill_uniform(rng, 0.0F, 1.0F);
  return frame;
}

std::vector<Tensor> make_calibration(std::uint64_t seed, int frames = 3) {
  std::vector<Tensor> calib;
  for (int i = 0; i < frames; ++i) {
    calib.push_back(make_frame(seed + static_cast<std::uint64_t>(i), 14, 14));
  }
  return calib;
}

// ----------------------------------------------------------- quantize_value

TEST(QuantizeValue, RoundsHalfAwayFromZeroAndClamps) {
  EXPECT_EQ(nn::quantize_value(0.0F, 1.0F), 0);
  EXPECT_EQ(nn::quantize_value(0.5F, 1.0F), 1);
  EXPECT_EQ(nn::quantize_value(-0.5F, 1.0F), -1);
  EXPECT_EQ(nn::quantize_value(1.49F, 1.0F), 1);
  EXPECT_EQ(nn::quantize_value(2.5F, 1.0F), 3);
  EXPECT_EQ(nn::quantize_value(-2.5F, 1.0F), -3);
  // Saturation: anything past the symmetric range pins at +/-127.
  EXPECT_EQ(nn::quantize_value(1000.0F, 1.0F), 127);
  EXPECT_EQ(nn::quantize_value(-1000.0F, 1.0F), -127);
  EXPECT_EQ(nn::quantize_value(127.49F, 1.0F), 127);
  // inv_scale applies before rounding.
  EXPECT_EQ(nn::quantize_value(0.5F, 2.0F), 1);
}

TEST(QuantizeValue, MatchesStdRoundOverTheRepresentableRange) {
  Rng rng(11);
  for (int i = 0; i < 20000; ++i) {
    const float v = rng.uniform(-130.0F, 130.0F);
    const float clamped = v < -127.0F ? -127.0F : (v > 127.0F ? 127.0F : v);
    EXPECT_EQ(nn::quantize_value(v, 1.0F),
              static_cast<std::int8_t>(std::lround(clamped)))
        << "v=" << v;
  }
}

// ----------------------------------------------------- quantize_conv_weights

TEST(QuantizeConvWeights, PerChannelScalesAndColumnSums) {
  Rng rng(5);
  Tensor weight(3, 3, 4, 6);  // HWIO
  weight.fill_uniform(rng, -0.8F, 0.8F);
  const nn::S8ConvWeights q = nn::quantize_conv_weights(weight);
  ASSERT_EQ(q.scale.size(), 6U);
  ASSERT_EQ(q.colsum.size(), 6U);
  ASSERT_EQ(q.values.size(), static_cast<std::size_t>(weight.numel()));
  const std::int64_t k = 3 * 3 * 4;
  for (std::int64_t oc = 0; oc < 6; ++oc) {
    // scale = per-channel max|w| / 127.
    float max_abs_w = 0.0F;
    for (std::int64_t p = 0; p < k; ++p) {
      max_abs_w = std::max(max_abs_w, std::fabs(weight.raw()[p * 6 + oc]));
    }
    EXPECT_FLOAT_EQ(q.scale[static_cast<std::size_t>(oc)], max_abs_w / 127.0F);
    // Every value rounds through the canonical quantizer; colsum matches.
    std::int32_t sum = 0;
    for (std::int64_t p = 0; p < k; ++p) {
      const std::int8_t want = nn::quantize_value(
          weight.raw()[p * 6 + oc], 1.0F / q.scale[static_cast<std::size_t>(oc)]);
      EXPECT_EQ(q.values[static_cast<std::size_t>(p * 6 + oc)], want);
      sum += want;
    }
    EXPECT_EQ(q.colsum[static_cast<std::size_t>(oc)], sum);
  }
}

TEST(QuantizeConvWeights, AllZeroChannelGetsDegenerateScale) {
  Tensor weight(1, 1, 2, 2);
  weight.raw()[0] = 0.0F;  // oc 0 all-zero
  weight.raw()[1] = 0.5F;
  weight.raw()[2] = 0.0F;
  weight.raw()[3] = -0.25F;
  const nn::S8ConvWeights q = nn::quantize_conv_weights(weight);
  EXPECT_FLOAT_EQ(q.scale[0], nn::kDegenerateQuantScale);
  EXPECT_EQ(q.values[0], 0);
  EXPECT_EQ(q.values[2], 0);
  EXPECT_EQ(q.colsum[0], 0);
}

// ----------------------------------------------------------------- GEMM core

std::vector<std::int32_t> naive_s8_i32(const std::vector<std::uint8_t>& a,
                                       const std::vector<std::int8_t>& b, std::int64_t m,
                                       std::int64_t k, std::int64_t n) {
  std::vector<std::int32_t> c(static_cast<std::size_t>(m * n));
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      std::int64_t acc = 0;
      for (std::int64_t p = 0; p < k; ++p) {
        acc += (static_cast<std::int64_t>(a[static_cast<std::size_t>(i * k + p)]) - 128) *
               static_cast<std::int64_t>(b[static_cast<std::size_t>(p * n + j)]);
      }
      c[static_cast<std::size_t>(i * n + j)] = static_cast<std::int32_t>(acc);
    }
  }
  return c;
}

void fill_random_s8(Rng& rng, std::vector<std::uint8_t>& a, std::vector<std::int8_t>& b) {
  for (std::uint8_t& v : a) v = static_cast<std::uint8_t>(rng.uniform_int(-127, 127) + 128);
  for (std::int8_t& v : b) v = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
}

class S8IsaGuard {
 public:
  explicit S8IsaGuard(nn::GemmS8Isa isa) { ok_ = nn::set_gemm_s8_isa(isa); }
  ~S8IsaGuard() { nn::set_gemm_s8_isa(nn::GemmS8Isa::kAuto); }
  bool ok() const { return ok_; }

 private:
  bool ok_ = false;
};

void check_gemm_s8_shapes(nn::GemmS8Isa isa) {
  S8IsaGuard guard(isa);
  if (!guard.ok()) GTEST_SKIP() << "ISA unsupported on this CPU";
  // Edge shapes straddling the 6x8 micro-tile and the 4-wide k-groups.
  const std::int64_t shapes[][3] = {{1, 1, 1},   {6, 4, 8},   {7, 5, 9},  {5, 3, 7},
                                    {12, 16, 8}, {13, 17, 9}, {6, 160, 8}, {40, 33, 25}};
  std::uint64_t seed = 100;
  for (const auto& s : shapes) {
    const std::int64_t m = s[0];
    const std::int64_t k = s[1];
    const std::int64_t n = s[2];
    Rng rng(seed++);
    std::vector<std::uint8_t> a(static_cast<std::size_t>(m * k));
    std::vector<std::int8_t> b(static_cast<std::size_t>(k * n));
    fill_random_s8(rng, a, b);
    const std::vector<std::int32_t> colsum = nn::s8_column_sums(b, k, n);
    std::vector<std::int32_t> got(static_cast<std::size_t>(m * n));
    nn::gemm_s8_i32(a, b, colsum, got, m, k, n);
    EXPECT_EQ(got, naive_s8_i32(a, b, m, k, n)) << "m=" << m << " k=" << k << " n=" << n;
  }
}

TEST(GemmS8, GenericMatchesInt64Reference) { check_gemm_s8_shapes(nn::GemmS8Isa::kGeneric); }
TEST(GemmS8, Avx2MatchesInt64Reference) { check_gemm_s8_shapes(nn::GemmS8Isa::kAvx2); }
TEST(GemmS8, VnniMatchesInt64Reference) { check_gemm_s8_shapes(nn::GemmS8Isa::kVnni); }

TEST(GemmS8, AllIsaBuildsBitIdentical) {
  Rng rng(42);
  const std::int64_t m = 23;
  const std::int64_t k = 71;
  const std::int64_t n = 19;
  std::vector<std::uint8_t> a(static_cast<std::size_t>(m * k));
  std::vector<std::int8_t> b(static_cast<std::size_t>(k * n));
  fill_random_s8(rng, a, b);
  const std::vector<std::int32_t> colsum = nn::s8_column_sums(b, k, n);
  std::vector<float> scale(static_cast<std::size_t>(n));
  std::vector<float> bias(static_cast<std::size_t>(n));
  std::vector<float> alpha(static_cast<std::size_t>(n));
  for (std::int64_t j = 0; j < n; ++j) {
    scale[static_cast<std::size_t>(j)] = rng.uniform(1e-4F, 1e-2F);
    bias[static_cast<std::size_t>(j)] = rng.uniform(-0.1F, 0.1F);
    alpha[static_cast<std::size_t>(j)] = rng.uniform(0.01F, 0.5F);
  }
  nn::S8Epilogue epi;
  epi.scale = scale.data();
  epi.bias = bias.data();
  epi.act = nn::Epilogue::Act::kPRelu;
  epi.prelu_alpha = alpha.data();
  std::vector<std::vector<float>> outs;
  for (const nn::GemmS8Isa isa :
       {nn::GemmS8Isa::kGeneric, nn::GemmS8Isa::kAvx2, nn::GemmS8Isa::kVnni}) {
    S8IsaGuard guard(isa);
    if (!guard.ok()) continue;
    std::vector<float> c(static_cast<std::size_t>(m * n));
    nn::gemm_s8(a, b, colsum, c, m, k, n, epi);
    outs.push_back(std::move(c));
  }
  ASSERT_GE(outs.size(), 1U);
  for (std::size_t i = 1; i < outs.size(); ++i) EXPECT_EQ(outs[i], outs[0]);
}

TEST(GemmS8, EpilogueMatchesScalarFmafExpression) {
  Rng rng(8);
  const std::int64_t m = 9;
  const std::int64_t k = 27;
  const std::int64_t n = 11;
  std::vector<std::uint8_t> a(static_cast<std::size_t>(m * k));
  std::vector<std::int8_t> b(static_cast<std::size_t>(k * n));
  fill_random_s8(rng, a, b);
  const std::vector<std::int32_t> colsum = nn::s8_column_sums(b, k, n);
  const std::vector<std::int32_t> acc = naive_s8_i32(a, b, m, k, n);
  std::vector<float> scale(static_cast<std::size_t>(n));
  std::vector<float> bias(static_cast<std::size_t>(n));
  for (std::int64_t j = 0; j < n; ++j) {
    scale[static_cast<std::size_t>(j)] = rng.uniform(1e-4F, 1e-2F);
    bias[static_cast<std::size_t>(j)] = rng.uniform(-0.1F, 0.1F);
  }
  nn::S8Epilogue epi;
  epi.scale = scale.data();
  epi.bias = bias.data();
  epi.act = nn::Epilogue::Act::kRelu;
  std::vector<float> got(static_cast<std::size_t>(m * n));
  nn::gemm_s8(a, b, colsum, got, m, k, n, epi);
  for (std::int64_t i = 0; i < m * n; ++i) {
    const std::size_t j = static_cast<std::size_t>(i % n);
    // The documented store: one fmaf, then the activation.
    float want = std::fmaf(static_cast<float>(acc[static_cast<std::size_t>(i)]), scale[j],
                           bias[j]);
    want = want > 0.0F ? want : 0.0F;
    EXPECT_EQ(got[static_cast<std::size_t>(i)], want) << "i=" << i;
  }
}

// ----------------------------------------------------------------- conv2d_s8

TEST(Conv2dS8, BitExactAgainstInt64Reference) {
  Rng rng(21);
  for (int trial = 0; trial < 8; ++trial) {
    const std::int64_t kk = 1 + 2 * rng.uniform_int(0, 2);  // 1, 3, 5
    const std::int64_t in_c = rng.uniform_int(1, 6);
    const std::int64_t out_c = rng.uniform_int(1, 6);
    Tensor input(1, rng.uniform_int(5, 14), rng.uniform_int(5, 14), in_c);
    input.fill_uniform(rng, -1.0F, 1.0F);
    Tensor weight(kk, kk, in_c, out_c);
    weight.fill_uniform(rng, -0.6F, 0.6F);
    const nn::S8ConvWeights q = nn::quantize_conv_weights(weight);
    const float act_scale = max_abs(input) > 0.0F ? max_abs(input) / 127.0F
                                                  : nn::kDegenerateQuantScale;
    Tensor bias(1, 1, 1, out_c);
    bias.fill_uniform(rng, -0.2F, 0.2F);
    nn::Epilogue epi;
    epi.act = nn::Epilogue::Act::kRelu;
    const Tensor got = nn::conv2d_s8(input, act_scale, q, &bias, epi, nn::Padding::kSame);
    const Tensor want = check::ref_conv2d_s8(input, act_scale, q, &bias, epi);
    EXPECT_EQ(max_abs_diff(got, want), 0.0F) << "trial=" << trial;
  }
}

// -------------------------------------------------------- end-to-end network

TEST(Int8Network, UncalibratedPrecisionSwitchThrows) {
  core::SesrInference net = make_inference(3);
  EXPECT_THROW(net.set_precision(core::InferencePrecision::kInt8), std::logic_error);
  EXPECT_THROW(net.set_precision(core::InferencePrecision::kHybrid), std::logic_error);
  net.calibrate_int8(make_calibration(30));
  net.set_precision(core::InferencePrecision::kInt8);
  // Calibrated but no plan: hybrid still refuses.
  EXPECT_THROW(net.set_precision(core::InferencePrecision::kHybrid), std::logic_error);
  EXPECT_THROW(net.set_hybrid_plan({core::LayerPrecision::kInt8}), std::invalid_argument);
  net.set_hybrid_plan(std::vector<core::LayerPrecision>(net.convolutions().size(),
                                                        core::LayerPrecision::kInt8));
  net.set_precision(core::InferencePrecision::kHybrid);
}

TEST(Int8Network, CalibratedInt8StaysCloseToFp32) {
  core::SesrInference net = make_inference(4, small_config(/*with_bias=*/true));
  net.calibrate_int8(make_calibration(40));
  const Tensor frame = make_frame(41, 20, 20);
  const Tensor fp32 = net.upscale(frame);
  net.set_precision(core::InferencePrecision::kInt8);
  const Tensor int8 = net.upscale(frame);
  EXPECT_EQ(int8.shape(), fp32.shape());
  // Freshly initialized nets quantize well: the calibrated path should sit
  // far above any visually meaningful threshold.
  EXPECT_GT(metrics::psnr(int8, fp32), 40.0);
}

TEST(Int8Network, HybridAllFp16PlanMatchesFp16Path) {
  // A plan with zero int8 layers must reproduce the kFp16 path bit-exactly —
  // the hybrid executor's fp16 arm is the same arithmetic. The input residual
  // is the one documented divergence (hybrid adds the raw input, pure fp16
  // the binary16-rounded input), so this net drops it.
  core::SesrConfig config = small_config();
  config.input_residual = false;
  core::SesrInference net = make_inference(5, config);
  net.calibrate_int8(make_calibration(50));
  net.set_hybrid_plan(std::vector<core::LayerPrecision>(net.convolutions().size(),
                                                        core::LayerPrecision::kFp16));
  const Tensor frame = make_frame(51, 16, 16);
  net.set_precision(core::InferencePrecision::kFp16);
  const Tensor fp16 = net.upscale(frame);
  net.set_precision(core::InferencePrecision::kHybrid);
  const Tensor hybrid = net.upscale(frame);
  EXPECT_EQ(max_abs_diff(hybrid, fp16), 0.0F);
}

TEST(Int8Network, CheckpointRoundTripBitExact) {
  core::SesrInference net = make_inference(6, small_config(/*with_bias=*/true));
  net.calibrate_int8(make_calibration(60));
  std::vector<core::LayerPrecision> plan(net.convolutions().size(),
                                         core::LayerPrecision::kFp16);
  plan[0] = core::LayerPrecision::kInt8;
  net.set_hybrid_plan(plan);
  core::SesrInference restored(net.to_tensor_map());
  ASSERT_TRUE(restored.int8_calibrated());
  EXPECT_EQ(restored.activation_scales(), net.activation_scales());
  ASSERT_EQ(restored.hybrid_plan().size(), plan.size());
  for (std::size_t i = 0; i < plan.size(); ++i) EXPECT_EQ(restored.hybrid_plan()[i], plan[i]);
  const Tensor frame = make_frame(61, 18, 13);
  for (const core::InferencePrecision prec :
       {core::InferencePrecision::kInt8, core::InferencePrecision::kHybrid}) {
    net.set_precision(prec);
    restored.set_precision(prec);
    EXPECT_EQ(max_abs_diff(restored.upscale(frame), net.upscale(frame)), 0.0F);
  }
}

TEST(Int8Network, PureInt8BitIdenticalAcrossExecutionModes) {
  // The tentpole exactness claim: fixed scales + elementwise quantization +
  // order-independent integer accumulation => cropping commutes with every
  // quantized layer, so tiled and streaming runs reproduce the full frame
  // bitwise.
  core::SesrInference net = make_inference(7);
  net.calibrate_int8(make_calibration(70));
  net.set_precision(core::InferencePrecision::kInt8);
  const Tensor frame = make_frame(71, 21, 17);
  const Tensor full = net.upscale(frame);
  core::TilingOptions tiling;
  tiling.tile_h = 6;
  tiling.tile_w = 7;
  EXPECT_EQ(max_abs_diff(core::upscale_tiled(net, frame, tiling), full), 0.0F);
  core::StreamingUpscaler streamer(net);
  EXPECT_EQ(max_abs_diff(streamer.upscale(frame), full), 0.0F);
}

TEST(Int8Network, HybridStreamingMatchesFullFrame) {
  core::SesrInference net = make_inference(8);
  net.calibrate_int8(make_calibration(80));
  std::vector<core::LayerPrecision> plan(net.convolutions().size(),
                                         core::LayerPrecision::kFp16);
  for (std::size_t i = 0; i < plan.size(); i += 2) plan[i] = core::LayerPrecision::kInt8;
  net.set_hybrid_plan(std::move(plan));
  net.set_precision(core::InferencePrecision::kHybrid);
  const Tensor frame = make_frame(81, 19, 23);
  const Tensor full = net.upscale(frame);
  core::StreamingUpscaler streamer(net);
  // Hybrid interleaves fp16 layers, whose row arithmetic is identical in both
  // executors; in practice the match is exact, but the contract is float
  // tolerance, not bitwise.
  EXPECT_LT(max_abs_diff(streamer.upscale(frame), full), 1e-5F);
}

// -------------------------------------------------------------- hybrid plan

TEST(HybridPlanner, ExhaustiveSearchRespectsBudgetAndPicksMaxInt8) {
  core::SesrInference net = make_inference(9);
  const std::vector<Tensor> lr = make_calibration(90, 2);
  // HR targets = fp32 outputs + noise: exact outputs would peg the fp32
  // baseline at the identical-image PSNR cap and make every budget
  // infeasible.
  std::vector<Tensor> hr;
  Rng noise_rng(91);
  for (const Tensor& f : lr) {
    Tensor out = net.upscale(f);
    Tensor noise(out.shape());
    noise.fill_uniform(noise_rng, -0.005F, 0.005F);
    for (std::int64_t i = 0; i < out.numel(); ++i) out.raw()[i] += noise.raw()[i];
    hr.push_back(std::move(out));
  }
  net.calibrate_int8(lr);
  const core::HybridPlanReport report = core::plan_hybrid_precision(net, lr, hr, 0.3);
  const std::size_t n_layers = net.convolutions().size();
  ASSERT_LE(n_layers, static_cast<std::size_t>(core::kExhaustiveLayers));
  EXPECT_EQ(report.evaluated, static_cast<std::int64_t>(1) << n_layers);
  EXPECT_EQ(report.plan.size(), n_layers);
  EXPECT_LE(report.drop_db, 0.3);
  std::int64_t int8_layers = 0;
  for (const core::LayerPrecision p : report.plan) {
    int8_layers += p == core::LayerPrecision::kInt8 ? 1 : 0;
  }
  EXPECT_EQ(int8_layers, report.int8_layers);
  // The plan is installed on the network and the precision restored.
  EXPECT_EQ(net.hybrid_plan().size(), n_layers);
  EXPECT_EQ(net.precision(), core::InferencePrecision::kFp32);
}

TEST(HybridPlanner, ImpossibleBudgetFallsBackToBestPsnrPlan) {
  core::SesrInference net = make_inference(10);
  const std::vector<Tensor> lr = make_calibration(100, 2);
  // Exact fp32 outputs as HR: baseline hits the identical-image cap, so no
  // quantized plan can stay within any finite budget. The planner must still
  // return (and install) the best-PSNR plan rather than throw.
  std::vector<Tensor> hr;
  for (const Tensor& f : lr) hr.push_back(net.upscale(f));
  net.calibrate_int8(lr);
  const core::HybridPlanReport report = core::plan_hybrid_precision(net, lr, hr, 0.05);
  EXPECT_GT(report.drop_db, 0.05);  // infeasible — fallback taken
  EXPECT_EQ(report.plan.size(), net.convolutions().size());
  EXPECT_EQ(net.hybrid_plan().size(), net.convolutions().size());
}

TEST(HybridPlanner, RequiresCalibrationAndMatchingPairs) {
  core::SesrInference net = make_inference(12);
  const std::vector<Tensor> lr = make_calibration(120, 2);
  std::vector<Tensor> hr;
  for (const Tensor& f : lr) hr.push_back(net.upscale(f));
  EXPECT_THROW(core::plan_hybrid_precision(net, lr, hr), std::logic_error);
  net.calibrate_int8(lr);
  std::vector<Tensor> short_hr(hr.begin(), hr.end() - 1);
  EXPECT_THROW(core::plan_hybrid_precision(net, lr, short_hr), std::invalid_argument);
  EXPECT_THROW(core::plan_hybrid_precision(net, {}, {}), std::invalid_argument);
}

}  // namespace
}  // namespace sesr
