// Tests for the TCP front end (src/serve/net): wire framing as pure
// byte-level round trips, and the socket server end-to-end over loopback.
//
// The load-bearing promises:
//   1. encode/decode round-trips exactly; truncated, trailing-garbage, and
//      bad-magic inputs are rejected rather than misread.
//   2. Responses over the socket are BIT-IDENTICAL to an in-process submit
//      against the same server.
//   3. One misbehaving connection (malformed frame, mid-request disconnect)
//      never takes down the server or its other connections.
//   4. NetServer::shutdown flushes every in-flight response before closing.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <thread>
#include <vector>

#include "core/sesr_inference.hpp"
#include "core/sesr_network.hpp"
#include "serve/net/client.hpp"
#include "serve/net/server.hpp"
#include "serve/net/wire.hpp"
#include "serve/registry.hpp"
#include "serve/sharded_server.hpp"
#include "tensor/tensor_ops.hpp"

namespace sesr::serve::net {
namespace {

core::SesrConfig small_config() {
  core::SesrConfig config;
  config.f = 8;
  config.m = 2;
  config.scale = 2;
  config.expand = 16;
  return config;
}

core::SesrInference make_inference(std::uint64_t seed) {
  Rng rng(seed);
  core::SesrNetwork network(small_config(), rng);
  return core::SesrInference(network);
}

Tensor make_frame(std::uint64_t seed, std::int64_t h, std::int64_t w) {
  Rng rng(seed);
  Tensor frame(1, h, w, 1);
  frame.fill_uniform(rng, 0.0F, 1.0F);
  return frame;
}

std::vector<std::uint8_t> payload_of(const std::vector<std::uint8_t>& frame_bytes) {
  return {frame_bytes.begin() + 8, frame_bytes.end()};
}

// ------------------------------------------------------------ wire framing

TEST(Wire, RequestRoundTripsExactly) {
  WireRequest request;
  request.id = 0xDEADBEEFCAFE0001ULL;
  request.deadline_us = 250'000;
  request.route = "m5:2:fp32";
  request.h = 3;
  request.w = 4;
  request.pixels = {0.0F, 0.25F, -1.5F, 3.25F, 1e-7F, 42.0F,
                    7.0F, 8.0F,  9.0F,  10.0F, 11.0F, 12.0F};
  const std::vector<std::uint8_t> bytes = encode_request(request);
  // Prefix: magic then payload length.
  ASSERT_GE(bytes.size(), 8U);
  EXPECT_EQ(bytes[0], 'S');
  EXPECT_EQ(bytes[1], 'E');
  EXPECT_EQ(bytes[2], 'S');
  EXPECT_EQ(bytes[3], 'R');
  const auto decoded = decode_request(payload_of(bytes));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->id, request.id);
  EXPECT_EQ(decoded->deadline_us, request.deadline_us);
  EXPECT_EQ(decoded->route, request.route);
  EXPECT_EQ(decoded->h, request.h);
  EXPECT_EQ(decoded->w, request.w);
  EXPECT_EQ(decoded->pixels, request.pixels);  // bit-exact floats
}

TEST(Wire, ResponseRoundTripsOkAndError) {
  WireResponse ok;
  ok.id = 7;
  ok.status = Status::kOk;
  ok.flags = kFlagDegraded | kFlagTwoStage;
  ok.route = "m5:2:fp16";
  ok.h = 2;
  ok.w = 2;
  ok.pixels = {1.0F, 2.0F, 3.0F, 4.0F};
  auto decoded = decode_response(payload_of(encode_response(ok)));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->id, 7U);
  EXPECT_EQ(decoded->status, Status::kOk);
  EXPECT_EQ(decoded->flags, ok.flags);
  EXPECT_EQ(decoded->route, ok.route);
  EXPECT_EQ(decoded->pixels, ok.pixels);

  WireResponse error;
  error.id = 8;
  error.status = Status::kOverloaded;
  error.route = "m5:2:fp32";
  error.message = "eval server: shed (estimated 900us over budget 100us)";
  decoded = decode_response(payload_of(encode_response(error)));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->status, Status::kOverloaded);
  EXPECT_EQ(decoded->h, 0);
  EXPECT_EQ(decoded->w, 0);
  EXPECT_TRUE(decoded->pixels.empty());
  EXPECT_EQ(decoded->message, error.message);
}

TEST(Wire, DecodeRejectsTruncatedAndTrailingBytes) {
  WireRequest request;
  request.id = 1;
  request.route = "m5:2:fp32";
  request.h = 2;
  request.w = 2;
  request.pixels = {1.0F, 2.0F, 3.0F, 4.0F};
  const std::vector<std::uint8_t> payload = payload_of(encode_request(request));
  // Every strict prefix must fail to decode, never misread.
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    const std::vector<std::uint8_t> truncated(payload.begin(),
                                              payload.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(decode_request(truncated).has_value()) << "cut=" << cut;
  }
  // Trailing garbage (payload longer than h*w pixels) must fail too: a length
  // mismatch means the framing is corrupt.
  std::vector<std::uint8_t> trailing = payload;
  trailing.push_back(0xAB);
  EXPECT_FALSE(decode_request(trailing).has_value());
  // Empty route and zero-dimension frames are invalid.
  WireRequest bad = request;
  bad.route.clear();
  EXPECT_FALSE(decode_request(payload_of(encode_request(bad))).has_value());
}

TEST(Wire, FrameReaderReassemblesByteDribbledFrames) {
  WireRequest request;
  request.id = 42;
  request.route = "a:2:fp32";
  request.h = 2;
  request.w = 3;
  request.pixels = {1, 2, 3, 4, 5, 6};
  std::vector<std::uint8_t> stream = encode_request(request);
  const std::vector<std::uint8_t> second = encode_request(request);
  stream.insert(stream.end(), second.begin(), second.end());

  FrameReader reader;
  // Worst-case TCP segmentation: one byte at a time. Both frames must come
  // out whole and in order.
  std::vector<std::vector<std::uint8_t>> payloads;
  for (const std::uint8_t byte : stream) {
    reader.feed(&byte, 1);
    while (auto payload = reader.next()) payloads.push_back(std::move(*payload));
  }
  ASSERT_EQ(payloads.size(), 2U);
  for (const auto& payload : payloads) {
    const auto decoded = decode_request(payload);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->id, 42U);
    EXPECT_EQ(decoded->pixels, request.pixels);
  }
  EXPECT_FALSE(reader.poisoned());
}

TEST(Wire, FrameReaderPoisonsPermanentlyOnBadMagicAndOversizedLength) {
  FrameReader bad_magic;
  const std::uint8_t garbage[8] = {0xDE, 0xAD, 0xBE, 0xEF, 4, 0, 0, 0};
  bad_magic.feed(garbage, sizeof(garbage));
  EXPECT_TRUE(bad_magic.poisoned());
  EXPECT_EQ(bad_magic.next(), std::nullopt);
  // Even a pristine frame afterwards stays unread: framing lost sync.
  WireRequest request;
  request.id = 1;
  request.route = "a:2:fp32";
  request.h = 1;
  request.w = 1;
  request.pixels = {1.0F};
  const std::vector<std::uint8_t> clean = encode_request(request);
  bad_magic.feed(clean.data(), clean.size());
  EXPECT_EQ(bad_magic.next(), std::nullopt);

  FrameReader oversized(/*max_payload=*/64);
  std::uint8_t huge[8] = {'S', 'E', 'S', 'R', 0, 0, 0, 0};
  huge[4] = 65;  // length 65 > max 64
  oversized.feed(huge, sizeof(huge));
  EXPECT_TRUE(oversized.poisoned());
}

TEST(Wire, PixelHelpersRoundTripTheYPlane) {
  const Tensor frame = make_frame(5, 6, 7);
  const std::vector<float> pixels = frame_to_pixels(frame);
  ASSERT_EQ(pixels.size(), 42U);
  const Tensor back = pixels_to_frame(6, 7, pixels);
  EXPECT_EQ(back.shape(), frame.shape());
  EXPECT_EQ(max_abs_diff(back, frame), 0.0F);
}

// -------------------------------------------------------- socket end-to-end

struct NetFixture {
  NetFixture() : inference(make_inference(90)) {
    NetworkRegistry registry;
    registry.add(RouteKey{"m5", 2, core::InferencePrecision::kFp32}, inference);
    ServeOptions options;
    options.workers = 2;
    server = std::make_unique<ShardedServer>(registry, options);
    net = std::make_unique<NetServer>(*server, NetServerOptions{});  // ephemeral port
  }
  ~NetFixture() {
    net->shutdown();
    server->shutdown();
  }
  core::SesrInference inference;
  std::unique_ptr<ShardedServer> server;
  std::unique_ptr<NetServer> net;
};

TEST(NetServer, UpscaleOverLoopbackBitIdenticalToInProcess) {
  NetFixture fx;
  NetClient client("127.0.0.1", fx.net->port());
  const Tensor frame = make_frame(91, 12, 16);
  const WireResponse response = client.upscale("m5:2:fp32", frame);
  ASSERT_EQ(response.status, Status::kOk);
  EXPECT_EQ(response.route, "m5:2:fp32");
  EXPECT_EQ(response.flags, 0);
  const Tensor got = pixels_to_frame(response.h, response.w, response.pixels);
  // The wire carries raw f32 bit patterns: the socket path must be
  // bit-identical to submitting in-process (itself bit-identical to the
  // single-threaded reference).
  EXPECT_EQ(max_abs_diff(got, fx.server->submit(RouteKey{"m5", 2, core::InferencePrecision::kFp32},
                                                frame)
                                  .get()),
            0.0F);
  EXPECT_EQ(max_abs_diff(got, fx.inference.upscale(frame)), 0.0F);
}

TEST(NetServer, UnknownRouteAnswersTypedStatusAndKeepsServing) {
  NetFixture fx;
  NetClient client("127.0.0.1", fx.net->port());
  const Tensor frame = make_frame(92, 8, 8);
  const WireResponse bad = client.upscale("nope:2:fp32", frame);
  EXPECT_EQ(bad.status, Status::kUnknownRoute);
  EXPECT_EQ(bad.h, 0);
  EXPECT_FALSE(bad.message.empty());
  // Same connection is still healthy.
  const WireResponse good = client.upscale("m5:2:fp32", frame);
  EXPECT_EQ(good.status, Status::kOk);
}

TEST(NetServer, PipelinedRequestsAllAnswered) {
  NetFixture fx;
  NetClient client("127.0.0.1", fx.net->port());
  constexpr int kRequests = 16;
  std::map<std::uint64_t, Tensor> sent;
  for (int i = 0; i < kRequests; ++i) {
    Tensor frame = make_frame(100 + static_cast<std::uint64_t>(i), 8, 10);
    const std::uint64_t id = client.send("m5:2:fp32", frame);
    sent.emplace(id, std::move(frame));
  }
  // Responses may arrive in any completion order; match by echoed id.
  for (int i = 0; i < kRequests; ++i) {
    const auto response = client.recv_response();
    ASSERT_TRUE(response.has_value());
    ASSERT_EQ(response->status, Status::kOk);
    const auto it = sent.find(response->id);
    ASSERT_NE(it, sent.end());
    EXPECT_EQ(max_abs_diff(pixels_to_frame(response->h, response->w, response->pixels),
                           fx.inference.upscale(it->second)),
              0.0F);
    sent.erase(it);
  }
  EXPECT_TRUE(sent.empty());
}

TEST(NetServer, MalformedFramePoisonsOnlyThatConnection) {
  NetFixture fx;
  NetClient victim("127.0.0.1", fx.net->port());
  NetClient bystander("127.0.0.1", fx.net->port());
  const Tensor frame = make_frame(93, 8, 8);
  // An in-flight request on the healthy connection...
  const std::uint64_t pending_id = bystander.send("m5:2:fp32", frame);
  // ...while the victim ships garbage: bad magic can only be answered with
  // kBadRequest (request id 0, the bytes are not trustworthy) and a close.
  victim.send_raw({0xBA, 0xD0, 0xBA, 0xD0, 0x10, 0x00, 0x00, 0x00});
  const auto reject = victim.recv_response();
  ASSERT_TRUE(reject.has_value());
  EXPECT_EQ(reject->status, Status::kBadRequest);
  EXPECT_EQ(reject->id, 0U);
  EXPECT_EQ(victim.recv_response(), std::nullopt);  // server closed it
  // The bystander's request and connection are untouched.
  const auto response = bystander.recv_response();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->id, pending_id);
  EXPECT_EQ(response->status, Status::kOk);
  EXPECT_GE(fx.net->stats().malformed, 1U);
}

TEST(NetServer, MidRequestDisconnectLeavesOtherConnectionsServing) {
  NetFixture fx;
  const Tensor frame = make_frame(94, 10, 10);
  {
    // Half a request, then gone: the server must just drop the connection.
    WireRequest request;
    request.id = 99;
    request.route = "m5:2:fp32";
    request.h = frame.shape().h();
    request.w = frame.shape().w();
    request.pixels = frame_to_pixels(frame);
    std::vector<std::uint8_t> bytes = encode_request(request);
    bytes.resize(bytes.size() / 2);
    NetClient half("127.0.0.1", fx.net->port());
    half.send_raw(bytes);
    half.disconnect();
  }
  {
    // A full request followed by an immediate disconnect: the inference still
    // runs; the response is dropped on the floor, never crossed to another
    // connection or crashing the IO loop.
    NetClient vanish("127.0.0.1", fx.net->port());
    vanish.send("m5:2:fp32", frame);
    vanish.disconnect();
  }
  NetClient healthy("127.0.0.1", fx.net->port());
  for (int i = 0; i < 3; ++i) {
    const WireResponse response = healthy.upscale("m5:2:fp32", frame);
    ASSERT_EQ(response.status, Status::kOk);
    EXPECT_EQ(max_abs_diff(pixels_to_frame(response.h, response.w, response.pixels),
                           fx.inference.upscale(frame)),
              0.0F);
  }
  EXPECT_GE(fx.net->stats().disconnects, 2U);
}

TEST(NetServer, ShutdownFlushesInFlightResponses) {
  const core::SesrInference inference = make_inference(95);
  NetworkRegistry registry;
  registry.add(RouteKey{"m5", 2, core::InferencePrecision::kFp32}, inference);
  std::atomic<bool> hold{true};
  ServeOptions options;
  options.workers = 1;
  options.worker_hook = [&] {
    while (hold.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  ShardedServer server(registry, options);
  auto net = std::make_unique<NetServer>(server, NetServerOptions{});
  NetClient client("127.0.0.1", net->port());
  const Tensor frame = make_frame(96, 8, 8);
  const std::uint64_t id = client.send("m5:2:fp32", frame);
  // Wait until the server has decoded and submitted the request.
  while (net->stats().requests == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // shutdown() must block on the in-flight response, flush it, then close.
  std::thread closer([&] { net->shutdown(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  hold.store(false, std::memory_order_release);
  closer.join();
  const auto response = client.recv_response();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->id, id);
  EXPECT_EQ(response->status, Status::kOk);
  EXPECT_EQ(max_abs_diff(pixels_to_frame(response->h, response->w, response->pixels),
                         inference.upscale(frame)),
            0.0F);
  EXPECT_EQ(client.recv_response(), std::nullopt);  // then the socket closed
  server.shutdown();
}

TEST(NetServer, DeadlineShedSurfacesAsOverloadedStatus) {
  const core::SesrInference inference = make_inference(97);
  NetworkRegistry registry;
  registry.add(RouteKey{"m5", 2, core::InferencePrecision::kFp32}, inference);
  ServeOptions options;
  options.workers = 1;
  options.slo.min_samples = 1;
  ShardedServer server(registry, options);
  NetServer net(server, NetServerOptions{});
  NetClient client("127.0.0.1", net.port());
  const Tensor frame = make_frame(98, 32, 32);
  // Warm the route's service estimate, then ask for the impossible: a 1us
  // deadline. With no cheaper registered route the request sheds, and the
  // wire answer is the typed overload status, not a dead connection.
  ASSERT_EQ(client.upscale("m5:2:fp32", frame).status, Status::kOk);
  const WireResponse shed = client.upscale("m5:2:fp32", frame, /*deadline_us=*/1);
  EXPECT_EQ(shed.status, Status::kOverloaded);
  EXPECT_FALSE(shed.message.empty());
  // The connection survives shedding.
  EXPECT_EQ(client.upscale("m5:2:fp32", frame).status, Status::kOk);
  net.shutdown();
  server.shutdown();
}

}  // namespace
}  // namespace sesr::serve::net
