// Tests for the TCP front end (src/serve/net): wire framing as pure
// byte-level round trips, and the socket server end-to-end over loopback.
//
// The load-bearing promises:
//   1. encode/decode round-trips exactly; truncated, trailing-garbage, and
//      bad-magic inputs are rejected rather than misread.
//   2. Responses over the socket are BIT-IDENTICAL to an in-process submit
//      against the same server.
//   3. One misbehaving connection (malformed frame, mid-request disconnect)
//      never takes down the server or its other connections.
//   4. NetServer::shutdown flushes every in-flight response before closing.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <map>
#include <thread>
#include <vector>

#include "core/sesr_inference.hpp"
#include "core/sesr_network.hpp"
#include "serve/net/client.hpp"
#include "serve/net/http.hpp"
#include "serve/net/server.hpp"
#include "serve/net/wire.hpp"
#include "serve/registry.hpp"
#include "serve/sharded_server.hpp"
#include "tensor/tensor_ops.hpp"

namespace sesr::serve::net {
namespace {

core::SesrConfig small_config() {
  core::SesrConfig config;
  config.f = 8;
  config.m = 2;
  config.scale = 2;
  config.expand = 16;
  return config;
}

core::SesrInference make_inference(std::uint64_t seed) {
  Rng rng(seed);
  core::SesrNetwork network(small_config(), rng);
  return core::SesrInference(network);
}

Tensor make_frame(std::uint64_t seed, std::int64_t h, std::int64_t w) {
  Rng rng(seed);
  Tensor frame(1, h, w, 1);
  frame.fill_uniform(rng, 0.0F, 1.0F);
  return frame;
}

std::vector<std::uint8_t> payload_of(const std::vector<std::uint8_t>& frame_bytes) {
  return {frame_bytes.begin() + 8, frame_bytes.end()};
}

// ------------------------------------------------------------ wire framing

TEST(Wire, RequestRoundTripsExactly) {
  WireRequest request;
  request.id = 0xDEADBEEFCAFE0001ULL;
  request.deadline_us = 250'000;
  request.route = "m5:2:fp32";
  request.h = 3;
  request.w = 4;
  request.pixels = {0.0F, 0.25F, -1.5F, 3.25F, 1e-7F, 42.0F,
                    7.0F, 8.0F,  9.0F,  10.0F, 11.0F, 12.0F};
  const std::vector<std::uint8_t> bytes = encode_request(request);
  // Prefix: magic then payload length.
  ASSERT_GE(bytes.size(), 8U);
  EXPECT_EQ(bytes[0], 'S');
  EXPECT_EQ(bytes[1], 'E');
  EXPECT_EQ(bytes[2], 'S');
  EXPECT_EQ(bytes[3], 'R');
  const auto decoded = decode_request(payload_of(bytes));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->id, request.id);
  EXPECT_EQ(decoded->deadline_us, request.deadline_us);
  EXPECT_EQ(decoded->route, request.route);
  EXPECT_EQ(decoded->h, request.h);
  EXPECT_EQ(decoded->w, request.w);
  EXPECT_EQ(decoded->pixels, request.pixels);  // bit-exact floats
}

TEST(Wire, ResponseRoundTripsOkAndError) {
  WireResponse ok;
  ok.id = 7;
  ok.status = Status::kOk;
  ok.flags = kFlagDegraded | kFlagTwoStage;
  ok.route = "m5:2:fp16";
  ok.h = 2;
  ok.w = 2;
  ok.pixels = {1.0F, 2.0F, 3.0F, 4.0F};
  auto decoded = decode_response(payload_of(encode_response(ok)));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->id, 7U);
  EXPECT_EQ(decoded->status, Status::kOk);
  EXPECT_EQ(decoded->flags, ok.flags);
  EXPECT_EQ(decoded->route, ok.route);
  EXPECT_EQ(decoded->pixels, ok.pixels);

  WireResponse error;
  error.id = 8;
  error.status = Status::kOverloaded;
  error.route = "m5:2:fp32";
  error.message = "eval server: shed (estimated 900us over budget 100us)";
  decoded = decode_response(payload_of(encode_response(error)));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->status, Status::kOverloaded);
  EXPECT_EQ(decoded->h, 0);
  EXPECT_EQ(decoded->w, 0);
  EXPECT_TRUE(decoded->pixels.empty());
  EXPECT_EQ(decoded->message, error.message);
}

TEST(Wire, DecodeRejectsTruncatedAndTrailingBytes) {
  WireRequest request;
  request.id = 1;
  request.route = "m5:2:fp32";
  request.h = 2;
  request.w = 2;
  request.pixels = {1.0F, 2.0F, 3.0F, 4.0F};
  const std::vector<std::uint8_t> payload = payload_of(encode_request(request));
  // Every strict prefix must fail to decode, never misread.
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    const std::vector<std::uint8_t> truncated(payload.begin(),
                                              payload.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(decode_request(truncated).has_value()) << "cut=" << cut;
  }
  // Trailing garbage (payload longer than h*w pixels) must fail too: a length
  // mismatch means the framing is corrupt.
  std::vector<std::uint8_t> trailing = payload;
  trailing.push_back(0xAB);
  EXPECT_FALSE(decode_request(trailing).has_value());
  // Empty route and zero-dimension frames are invalid.
  WireRequest bad = request;
  bad.route.clear();
  EXPECT_FALSE(decode_request(payload_of(encode_request(bad))).has_value());
}

TEST(Wire, DecodeRejectsPixelCountOverflowInsteadOfThrowing) {
  // h=w=2^31 makes count=2^62, so count*4 wraps u64 to 0 and "matches" an
  // empty pixel block; the old multiply-based check then reached a
  // resize(2^62) that threw length_error. decode_request runs on the IO
  // thread BEFORE the auth check, so this 40-byte frame was an
  // unauthenticated remote crash on open binds. It must decode to nullopt.
  WireRequest request;
  request.id = 7;
  request.route = "m5:2:fp32";
  request.h = 0x80000000LL;  // 2^31, valid u32 on the wire
  request.w = 0x80000000LL;
  ASSERT_TRUE(request.pixels.empty());
  EXPECT_FALSE(decode_request(payload_of(encode_request(request))).has_value());

  // Same wrap on the response side.
  WireResponse response;
  response.id = 7;
  response.status = Status::kOk;
  response.route = "m5:2:fp32";
  response.h = 0x80000000LL;
  response.w = 0x80000000LL;
  EXPECT_FALSE(decode_response(payload_of(encode_response(response))).has_value());
}

TEST(Wire, FrameReaderReassemblesByteDribbledFrames) {
  WireRequest request;
  request.id = 42;
  request.route = "a:2:fp32";
  request.h = 2;
  request.w = 3;
  request.pixels = {1, 2, 3, 4, 5, 6};
  std::vector<std::uint8_t> stream = encode_request(request);
  const std::vector<std::uint8_t> second = encode_request(request);
  stream.insert(stream.end(), second.begin(), second.end());

  FrameReader reader;
  // Worst-case TCP segmentation: one byte at a time. Both frames must come
  // out whole and in order.
  std::vector<std::vector<std::uint8_t>> payloads;
  for (const std::uint8_t byte : stream) {
    reader.feed(&byte, 1);
    while (auto payload = reader.next()) payloads.push_back(std::move(*payload));
  }
  ASSERT_EQ(payloads.size(), 2U);
  for (const auto& payload : payloads) {
    const auto decoded = decode_request(payload);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->id, 42U);
    EXPECT_EQ(decoded->pixels, request.pixels);
  }
  EXPECT_FALSE(reader.poisoned());
}

TEST(Wire, FrameReaderPoisonsPermanentlyOnBadMagicAndOversizedLength) {
  FrameReader bad_magic;
  const std::uint8_t garbage[8] = {0xDE, 0xAD, 0xBE, 0xEF, 4, 0, 0, 0};
  bad_magic.feed(garbage, sizeof(garbage));
  EXPECT_TRUE(bad_magic.poisoned());
  EXPECT_EQ(bad_magic.next(), std::nullopt);
  // Even a pristine frame afterwards stays unread: framing lost sync.
  WireRequest request;
  request.id = 1;
  request.route = "a:2:fp32";
  request.h = 1;
  request.w = 1;
  request.pixels = {1.0F};
  const std::vector<std::uint8_t> clean = encode_request(request);
  bad_magic.feed(clean.data(), clean.size());
  EXPECT_EQ(bad_magic.next(), std::nullopt);

  FrameReader oversized(/*max_payload=*/64);
  std::uint8_t huge[8] = {'S', 'E', 'S', 'R', 0, 0, 0, 0};
  huge[4] = 65;  // length 65 > max 64
  oversized.feed(huge, sizeof(huge));
  EXPECT_TRUE(oversized.poisoned());
}

TEST(Wire, AuthFieldRoundTripsAndTokenlessStaysCompatible) {
  WireRequest with_auth;
  with_auth.id = 11;
  with_auth.auth = "hunter2-hunter2";
  with_auth.route = "m5:2:fp32";
  with_auth.h = 1;
  with_auth.w = 1;
  with_auth.pixels = {0.5F};
  const std::vector<std::uint8_t> bytes = encode_request(with_auth);
  // flags byte sits after id (8) and deadline (4) in the payload.
  EXPECT_NE(bytes[8 + 12] & kRequestFlagAuth, 0);
  const auto decoded = decode_request(payload_of(bytes));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->auth, with_auth.auth);
  EXPECT_EQ(decoded->route, with_auth.route);
  EXPECT_EQ(decoded->pixels, with_auth.pixels);

  // A tokenless request omits the field entirely — the pre-auth layout.
  WireRequest tokenless = with_auth;
  tokenless.auth.clear();
  const std::vector<std::uint8_t> plain = encode_request(tokenless);
  EXPECT_EQ(plain[8 + 12] & kRequestFlagAuth, 0);
  EXPECT_EQ(plain.size(), bytes.size() - 2 - with_auth.auth.size());
  const auto plain_decoded = decode_request(payload_of(plain));
  ASSERT_TRUE(plain_decoded.has_value());
  EXPECT_TRUE(plain_decoded->auth.empty());

  // Unknown flag bits are malformed, not silently ignored.
  std::vector<std::uint8_t> tampered = payload_of(plain);
  tampered[12] |= 1u << 2;
  EXPECT_FALSE(decode_request(tampered).has_value());

  // kRequestFlagAuth with auth_len = 0 is malformed: the flag promises bytes.
  std::vector<std::uint8_t> zero_len;
  auto put32 = [&zero_len](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) zero_len.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  };
  put32(0); put32(0);         // id (u64)
  put32(0);                   // deadline_us
  zero_len.push_back(kRequestFlagAuth);  // flags
  put32(0); put32(0);         // session_id (u64)
  put32(0);                   // frame_seq
  zero_len.push_back(0); zero_len.push_back(0);  // auth_len = 0
  zero_len.push_back(1); zero_len.push_back(0);  // route_len = 1
  zero_len.push_back('x');
  put32(1); put32(1);         // h, w
  put32(0x3F800000u);         // one pixel
  EXPECT_FALSE(decode_request(zero_len).has_value());
}

TEST(Wire, ConstantTimeEqualSemantics) {
  EXPECT_TRUE(constant_time_equal("secret", "secret"));
  EXPECT_FALSE(constant_time_equal("Secret", "secret"));
  EXPECT_FALSE(constant_time_equal("secre", "secret"));    // shorter
  EXPECT_FALSE(constant_time_equal("secrets", "secret"));  // longer
  EXPECT_FALSE(constant_time_equal("", "secret"));
  EXPECT_TRUE(constant_time_equal("", ""));
  EXPECT_FALSE(constant_time_equal("anything", ""));
}

TEST(Wire, FrameReaderDrainsAThousandCoalescedFramesInOneFeed) {
  // The regression: feed() used to erase the buffer front once PER FRAME, so
  // one recv() carrying K coalesced frames cost O(K^2) byte moves. The fix
  // carves by offset and compacts once; this test feeds ~1k tiny frames in a
  // single call and expects every one back, plus an intact partial tail.
  WireRequest request;
  request.id = 5;
  request.route = "a:2:fp32";
  request.h = 1;
  request.w = 1;
  request.pixels = {1.0F};
  const std::vector<std::uint8_t> one = encode_request(request);
  constexpr std::size_t kFrames = 1000;
  std::vector<std::uint8_t> stream;
  stream.reserve(one.size() * kFrames + one.size() / 2);
  for (std::size_t i = 0; i < kFrames; ++i) {
    stream.insert(stream.end(), one.begin(), one.end());
  }
  const std::size_t half = one.size() / 2;
  stream.insert(stream.end(), one.begin(), one.begin() + static_cast<std::ptrdiff_t>(half));

  FrameReader reader;
  reader.feed(stream.data(), stream.size());
  std::size_t count = 0;
  while (auto payload = reader.next()) {
    EXPECT_EQ(payload->size(), one.size() - 8);
    ++count;
  }
  EXPECT_EQ(count, kFrames);
  EXPECT_EQ(reader.partial_bytes(), half);  // the tail survives compaction
  EXPECT_FALSE(reader.poisoned());
  // Completing the torn frame releases exactly one more payload.
  reader.feed(one.data() + half, one.size() - half);
  ASSERT_TRUE(reader.next().has_value());
  EXPECT_EQ(reader.next(), std::nullopt);
  EXPECT_EQ(reader.partial_bytes(), 0U);
}

// --------------------------------------------------------------- HTTP adapter

TEST(Http, ReaderParsesPipelinedRequestsQueryAndBody) {
  const std::string raw =
      "GET /v1/upscale?route=m5%3A2%3Afp32&h=8&w=8 HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "\r\n"
      "POST /v1/upscale HTTP/1.1\r\n"
      "Content-Length: 4\r\n"
      "Connection: close\r\n"
      "\r\n"
      "\x01\x02\x03\x04";
  HttpReader reader;
  // Worst-case segmentation: byte at a time.
  for (const char c : raw) {
    reader.feed(reinterpret_cast<const std::uint8_t*>(&c), 1);
  }
  auto first = reader.next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->method, "GET");
  EXPECT_EQ(first->path, "/v1/upscale");
  EXPECT_EQ(first->query.at("route"), "m5:2:fp32");  // percent-decoded
  EXPECT_EQ(first->query.at("h"), "8");
  EXPECT_TRUE(first->keep_alive);
  EXPECT_TRUE(first->body.empty());
  auto second = reader.next();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->method, "POST");
  EXPECT_FALSE(second->keep_alive);  // Connection: close
  EXPECT_EQ(second->body, (std::vector<std::uint8_t>{1, 2, 3, 4}));
  EXPECT_EQ(reader.next(), std::nullopt);
  EXPECT_FALSE(reader.poisoned());
}

TEST(Http, ReaderPoisonsOnMalformedChunkedAndOversized) {
  auto feed_string = [](HttpReader& r, const std::string& s) {
    r.feed(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
  };
  HttpReader bad_line;
  feed_string(bad_line, "NONSENSE\r\n\r\n");
  EXPECT_TRUE(bad_line.poisoned());

  HttpReader chunked;
  feed_string(chunked, "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
  EXPECT_TRUE(chunked.poisoned());

  HttpReader bad_length;
  feed_string(bad_length, "POST /x HTTP/1.1\r\nContent-Length: banana\r\n\r\n");
  EXPECT_TRUE(bad_length.poisoned());

  HttpReader huge_body(/*max_body=*/16);
  feed_string(huge_body, "POST /x HTTP/1.1\r\nContent-Length: 17\r\n\r\n");
  EXPECT_TRUE(huge_body.poisoned());

  HttpReader huge_header(/*max_body=*/1024, /*max_header_bytes=*/64);
  feed_string(huge_header, "GET /x HTTP/1.1\r\nPadding: " + std::string(128, 'a'));
  EXPECT_TRUE(huge_header.poisoned());

  // Duplicate framing headers: last-one-wins would let a proxy and this
  // parser disagree about where the body ends (request smuggling).
  HttpReader dup_length;
  feed_string(dup_length,
              "POST /x HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 8\r\n\r\n");
  EXPECT_TRUE(dup_length.poisoned());

  // HTTP/1.0 defaults to close; headers are case-insensitive.
  HttpReader ten;
  feed_string(ten, "GET /healthz HTTP/1.0\r\nHOST: a\r\n\r\n");
  auto req = ten.next();
  ASSERT_TRUE(req.has_value());
  EXPECT_FALSE(req->keep_alive);
  EXPECT_EQ(req->header("host"), "a");
}

TEST(Http, ResponseBuilderAndSniffer) {
  const std::vector<std::uint8_t> resp = http_response(503, "text/plain", std::string("busy\n"), true);
  const std::string text(resp.begin(), resp.end());
  EXPECT_NE(text.find("HTTP/1.1 503 Service Unavailable\r\n"), std::string::npos);
  EXPECT_NE(text.find("Content-Length: 5\r\n"), std::string::npos);
  EXPECT_NE(text.find("Connection: close\r\n"), std::string::npos);
  EXPECT_EQ(text.substr(text.size() - 5), "busy\n");

  auto sniff = [](const std::string& s) {
    return looks_like_http(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
  };
  EXPECT_TRUE(sniff("GET /healthz"));
  EXPECT_TRUE(sniff("POST /v1/upscale"));
  EXPECT_TRUE(sniff("OPTIONS "));
  EXPECT_FALSE(sniff("SESR\x28\x00\x00\x00"));
  EXPECT_FALSE(sniff("XYZWABCD"));
  EXPECT_FALSE(sniff("GET"));  // no space yet: not committed
}

TEST(Http, PgmCodecRoundTripsAndRejectsMalformed) {
  std::vector<float> pixels(6);
  for (std::size_t i = 0; i < pixels.size(); ++i) {
    pixels[i] = static_cast<float>(i * 40) / 255.0F;  // exact 1/255 grid values
  }
  const std::vector<std::uint8_t> bytes = encode_pgm(2, 3, pixels);
  const auto decoded = decode_pgm(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->h, 2);
  EXPECT_EQ(decoded->w, 3);
  ASSERT_EQ(decoded->pixels.size(), 6U);
  for (std::size_t i = 0; i < pixels.size(); ++i) {
    EXPECT_FLOAT_EQ(decoded->pixels[i], pixels[i]);
  }
  auto corrupt = [&](const std::string& s) {
    return decode_pgm(std::vector<std::uint8_t>(s.begin(), s.end())).has_value();
  };
  EXPECT_FALSE(corrupt("P6\n2 2\n255\nabcd"));       // wrong magic
  EXPECT_FALSE(corrupt("P5\n2 2\n65535\nabcd"));     // unsupported maxval
  EXPECT_FALSE(corrupt("P5\n2 2\n255\nabc"));        // short pixel block
  EXPECT_FALSE(corrupt("P5\n2 2\n255\nabcde"));      // long pixel block
  EXPECT_FALSE(corrupt("P5\n-1 2\n255\n"));          // negative dims
  // Overflow hardening: these run on the IO thread, where a throw (stoll
  // out_of_range, wrapped w*h matching an empty sample block) would
  // terminate the whole server. They must decode to nullopt instead.
  EXPECT_FALSE(corrupt("P5\n99999999999999999999 1\n255\n"));  // > long long
  EXPECT_FALSE(corrupt("P5\n4294967296 4294967296\n255\n"));   // w*h wraps
  EXPECT_FALSE(corrupt("P5\n2000000 1\n255\n"));               // over kMaxImageDim
}

// ------------------------------------------------------------ accept taxonomy

TEST(Socket, ClassifyAcceptErrnoTaxonomy) {
  EXPECT_EQ(classify_accept_errno(EAGAIN), AcceptAction::kDrained);
  EXPECT_EQ(classify_accept_errno(EWOULDBLOCK), AcceptAction::kDrained);
  // Per-connection failures: the listener is fine, keep accepting.
  EXPECT_EQ(classify_accept_errno(ECONNABORTED), AcceptAction::kRetry);
  EXPECT_EQ(classify_accept_errno(EPROTO), AcceptAction::kRetry);
  EXPECT_EQ(classify_accept_errno(EINTR), AcceptAction::kRetry);
  // Resource exhaustion: polling the still-readable listener would spin.
  EXPECT_EQ(classify_accept_errno(EMFILE), AcceptAction::kPause);
  EXPECT_EQ(classify_accept_errno(ENFILE), AcceptAction::kPause);
  EXPECT_EQ(classify_accept_errno(ENOBUFS), AcceptAction::kPause);
  EXPECT_EQ(classify_accept_errno(ENOMEM), AcceptAction::kPause);
  // Unknown errnos pause too: safe for any cause, spinning never is.
  EXPECT_EQ(classify_accept_errno(EINVAL), AcceptAction::kPause);
}

TEST(Socket, LoopbackAddressClassification) {
  EXPECT_TRUE(is_loopback_address("127.0.0.1"));
  EXPECT_TRUE(is_loopback_address("127.1.2.3"));  // whole 127/8 block
  EXPECT_TRUE(is_loopback_address("localhost"));
  EXPECT_TRUE(is_loopback_address(""));
  EXPECT_FALSE(is_loopback_address("0.0.0.0"));
  EXPECT_FALSE(is_loopback_address("10.0.0.1"));
  EXPECT_FALSE(is_loopback_address("not-an-address"));
}

TEST(Wire, PixelHelpersRoundTripTheYPlane) {
  const Tensor frame = make_frame(5, 6, 7);
  const std::vector<float> pixels = frame_to_pixels(frame);
  ASSERT_EQ(pixels.size(), 42U);
  const Tensor back = pixels_to_frame(6, 7, pixels);
  EXPECT_EQ(back.shape(), frame.shape());
  EXPECT_EQ(max_abs_diff(back, frame), 0.0F);
}

// -------------------------------------------------------- socket end-to-end

struct NetFixture {
  explicit NetFixture(NetServerOptions net_options = {}) : inference(make_inference(90)) {
    NetworkRegistry registry;
    registry.add(RouteKey{"m5", 2, core::InferencePrecision::kFp32}, inference);
    ServeOptions options;
    options.workers = 2;
    server = std::make_unique<ShardedServer>(registry, options);
    net = std::make_unique<NetServer>(*server, net_options);  // default: ephemeral port
  }
  ~NetFixture() {
    net->shutdown();
    server->shutdown();
  }
  core::SesrInference inference;
  std::unique_ptr<ShardedServer> server;
  std::unique_ptr<NetServer> net;
};

TEST(NetServer, UpscaleOverLoopbackBitIdenticalToInProcess) {
  NetFixture fx;
  NetClient client("127.0.0.1", fx.net->port());
  const Tensor frame = make_frame(91, 12, 16);
  const WireResponse response = client.upscale("m5:2:fp32", frame);
  ASSERT_EQ(response.status, Status::kOk);
  EXPECT_EQ(response.route, "m5:2:fp32");
  EXPECT_EQ(response.flags, 0);
  const Tensor got = pixels_to_frame(response.h, response.w, response.pixels);
  // The wire carries raw f32 bit patterns: the socket path must be
  // bit-identical to submitting in-process (itself bit-identical to the
  // single-threaded reference).
  EXPECT_EQ(max_abs_diff(got, fx.server->submit(RouteKey{"m5", 2, core::InferencePrecision::kFp32},
                                                frame)
                                  .get()),
            0.0F);
  EXPECT_EQ(max_abs_diff(got, fx.inference.upscale(frame)), 0.0F);
}

TEST(NetServer, UnknownRouteAnswersTypedStatusAndKeepsServing) {
  NetFixture fx;
  NetClient client("127.0.0.1", fx.net->port());
  const Tensor frame = make_frame(92, 8, 8);
  const WireResponse bad = client.upscale("nope:2:fp32", frame);
  EXPECT_EQ(bad.status, Status::kUnknownRoute);
  EXPECT_EQ(bad.h, 0);
  EXPECT_FALSE(bad.message.empty());
  // Same connection is still healthy.
  const WireResponse good = client.upscale("m5:2:fp32", frame);
  EXPECT_EQ(good.status, Status::kOk);
}

TEST(NetServer, PipelinedRequestsAllAnswered) {
  NetFixture fx;
  NetClient client("127.0.0.1", fx.net->port());
  constexpr int kRequests = 16;
  std::map<std::uint64_t, Tensor> sent;
  for (int i = 0; i < kRequests; ++i) {
    Tensor frame = make_frame(100 + static_cast<std::uint64_t>(i), 8, 10);
    const std::uint64_t id = client.send("m5:2:fp32", frame);
    sent.emplace(id, std::move(frame));
  }
  // Responses may arrive in any completion order; match by echoed id.
  for (int i = 0; i < kRequests; ++i) {
    const auto response = client.recv_response();
    ASSERT_TRUE(response.has_value());
    ASSERT_EQ(response->status, Status::kOk);
    const auto it = sent.find(response->id);
    ASSERT_NE(it, sent.end());
    EXPECT_EQ(max_abs_diff(pixels_to_frame(response->h, response->w, response->pixels),
                           fx.inference.upscale(it->second)),
              0.0F);
    sent.erase(it);
  }
  EXPECT_TRUE(sent.empty());
}

TEST(NetServer, MalformedFramePoisonsOnlyThatConnection) {
  NetFixture fx;
  NetClient victim("127.0.0.1", fx.net->port());
  NetClient bystander("127.0.0.1", fx.net->port());
  const Tensor frame = make_frame(93, 8, 8);
  // An in-flight request on the healthy connection...
  const std::uint64_t pending_id = bystander.send("m5:2:fp32", frame);
  // ...while the victim ships garbage: bad magic can only be answered with
  // kBadRequest (request id 0, the bytes are not trustworthy) and a close.
  victim.send_raw({0xBA, 0xD0, 0xBA, 0xD0, 0x10, 0x00, 0x00, 0x00});
  const auto reject = victim.recv_response();
  ASSERT_TRUE(reject.has_value());
  EXPECT_EQ(reject->status, Status::kBadRequest);
  EXPECT_EQ(reject->id, 0U);
  EXPECT_EQ(victim.recv_response(), std::nullopt);  // server closed it
  // The bystander's request and connection are untouched.
  const auto response = bystander.recv_response();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->id, pending_id);
  EXPECT_EQ(response->status, Status::kOk);
  EXPECT_GE(fx.net->stats().malformed, 1U);
}

TEST(NetServer, MidRequestDisconnectLeavesOtherConnectionsServing) {
  NetFixture fx;
  const Tensor frame = make_frame(94, 10, 10);
  {
    // Half a request, then gone: the server must just drop the connection.
    WireRequest request;
    request.id = 99;
    request.route = "m5:2:fp32";
    request.h = frame.shape().h();
    request.w = frame.shape().w();
    request.pixels = frame_to_pixels(frame);
    std::vector<std::uint8_t> bytes = encode_request(request);
    bytes.resize(bytes.size() / 2);
    NetClient half("127.0.0.1", fx.net->port());
    half.send_raw(bytes);
    half.disconnect();
  }
  {
    // A full request followed by an immediate disconnect: the inference still
    // runs; the response is dropped on the floor, never crossed to another
    // connection or crashing the IO loop.
    NetClient vanish("127.0.0.1", fx.net->port());
    vanish.send("m5:2:fp32", frame);
    vanish.disconnect();
  }
  NetClient healthy("127.0.0.1", fx.net->port());
  for (int i = 0; i < 3; ++i) {
    const WireResponse response = healthy.upscale("m5:2:fp32", frame);
    ASSERT_EQ(response.status, Status::kOk);
    EXPECT_EQ(max_abs_diff(pixels_to_frame(response.h, response.w, response.pixels),
                           fx.inference.upscale(frame)),
              0.0F);
  }
  EXPECT_GE(fx.net->stats().disconnects, 2U);
}

TEST(NetServer, ShutdownFlushesInFlightResponses) {
  const core::SesrInference inference = make_inference(95);
  NetworkRegistry registry;
  registry.add(RouteKey{"m5", 2, core::InferencePrecision::kFp32}, inference);
  std::atomic<bool> hold{true};
  ServeOptions options;
  options.workers = 1;
  options.worker_hook = [&] {
    while (hold.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  ShardedServer server(registry, options);
  auto net = std::make_unique<NetServer>(server, NetServerOptions{});
  NetClient client("127.0.0.1", net->port());
  const Tensor frame = make_frame(96, 8, 8);
  const std::uint64_t id = client.send("m5:2:fp32", frame);
  // Wait until the server has decoded and submitted the request.
  while (net->stats().requests == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // shutdown() must block on the in-flight response, flush it, then close.
  std::thread closer([&] { net->shutdown(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  hold.store(false, std::memory_order_release);
  closer.join();
  const auto response = client.recv_response();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->id, id);
  EXPECT_EQ(response->status, Status::kOk);
  EXPECT_EQ(max_abs_diff(pixels_to_frame(response->h, response->w, response->pixels),
                         inference.upscale(frame)),
            0.0F);
  EXPECT_EQ(client.recv_response(), std::nullopt);  // then the socket closed
  server.shutdown();
}

TEST(NetServer, DeadlineShedSurfacesAsOverloadedStatus) {
  const core::SesrInference inference = make_inference(97);
  NetworkRegistry registry;
  registry.add(RouteKey{"m5", 2, core::InferencePrecision::kFp32}, inference);
  ServeOptions options;
  options.workers = 1;
  options.slo.min_samples = 1;
  ShardedServer server(registry, options);
  NetServer net(server, NetServerOptions{});
  NetClient client("127.0.0.1", net.port());
  const Tensor frame = make_frame(98, 32, 32);
  // Warm the route's service estimate, then ask for the impossible: a 1us
  // deadline. With no cheaper registered route the request sheds, and the
  // wire answer is the typed overload status, not a dead connection.
  ASSERT_EQ(client.upscale("m5:2:fp32", frame).status, Status::kOk);
  const WireResponse shed = client.upscale("m5:2:fp32", frame, /*deadline_us=*/1);
  EXPECT_EQ(shed.status, Status::kOverloaded);
  EXPECT_FALSE(shed.message.empty());
  // The connection survives shedding.
  EXPECT_EQ(client.upscale("m5:2:fp32", frame).status, Status::kOk);
  net.shutdown();
  server.shutdown();
}

// One raw HTTP exchange: connect, write `raw`, read until the server closes.
// Callers always send "Connection: close" so EOF delimits the response.
std::string http_exchange(std::uint16_t port, const std::string& raw) {
  Fd fd = connect_tcp("127.0.0.1", port);
  set_nodelay(fd);
  send_all(fd, reinterpret_cast<const std::uint8_t*>(raw.data()), raw.size());
  std::string out;
  std::uint8_t chunk[4096];
  for (;;) {
    const ssize_t got = ::recv(fd.get(), chunk, sizeof(chunk), 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      throw SocketError("recv failed in http_exchange");
    }
    if (got == 0) break;
    out.append(reinterpret_cast<const char*>(chunk), static_cast<std::size_t>(got));
  }
  return out;
}

std::string http_status_line(const std::string& response) {
  return response.substr(0, response.find("\r\n"));
}

std::string http_body(const std::string& response) {
  const std::size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? std::string{} : response.substr(pos + 4);
}

TEST(NetServer, HttpHealthzStatsAndUpscaleOverTheSamePort) {
  NetFixture fx;
  const std::uint16_t port = fx.net->port();

  const std::string health =
      http_exchange(port, "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
  EXPECT_EQ(http_status_line(health), "HTTP/1.1 200 OK");
  EXPECT_EQ(http_body(health), "ok\n");

  const std::string stats =
      http_exchange(port, "GET /stats HTTP/1.1\r\nConnection: close\r\n\r\n");
  EXPECT_EQ(http_status_line(stats), "HTTP/1.1 200 OK");
  EXPECT_NE(http_body(stats).find("\"io_shards\""), std::string::npos);
  EXPECT_NE(http_body(stats).find("\"shards\""), std::string::npos);

  // Raw-f32 upscale: bit-identical to the in-process path, dims in headers.
  const Tensor frame = make_frame(70, 8, 8);
  const std::vector<float> pixels = frame_to_pixels(frame);
  std::string body(reinterpret_cast<const char*>(pixels.data()), pixels.size() * sizeof(float));
  std::string request =
      "POST /v1/upscale?route=m5%3A2%3Afp32&h=8&w=8 HTTP/1.1\r\n"
      "Content-Length: " + std::to_string(body.size()) + "\r\n"
      "Connection: close\r\n\r\n" + body;
  const std::string upscaled = http_exchange(port, request);
  EXPECT_EQ(http_status_line(upscaled), "HTTP/1.1 200 OK");
  EXPECT_NE(upscaled.find("X-SESR-Height: 16\r\n"), std::string::npos);
  EXPECT_NE(upscaled.find("X-SESR-Width: 16\r\n"), std::string::npos);
  const std::string out = http_body(upscaled);
  ASSERT_EQ(out.size(), 16U * 16U * sizeof(float));
  std::vector<float> got(16 * 16);
  std::memcpy(got.data(), out.data(), out.size());
  EXPECT_EQ(max_abs_diff(pixels_to_frame(16, 16, got), fx.inference.upscale(frame)), 0.0F);

  // PGM in, PGM out.
  const std::vector<std::uint8_t> pgm = encode_pgm(8, 8, pixels);
  std::string pgm_request =
      "POST /v1/upscale?route=m5%3A2%3Afp32 HTTP/1.1\r\n"
      "Content-Length: " + std::to_string(pgm.size()) + "\r\n"
      "Connection: close\r\n\r\n";
  pgm_request.append(reinterpret_cast<const char*>(pgm.data()), pgm.size());
  const std::string pgm_out = http_exchange(port, pgm_request);
  EXPECT_EQ(http_status_line(pgm_out), "HTTP/1.1 200 OK");
  EXPECT_NE(pgm_out.find("Content-Type: image/x-portable-graymap\r\n"), std::string::npos);
  const std::string pgm_body = http_body(pgm_out);
  const auto decoded =
      decode_pgm(std::vector<std::uint8_t>(pgm_body.begin(), pgm_body.end()));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->h, 16);
  EXPECT_EQ(decoded->w, 16);

  // Error mapping: unknown route is 404, missing route query is 400,
  // unknown path is 404.
  EXPECT_EQ(http_status_line(http_exchange(
                port, "POST /v1/upscale?route=nope%3A2%3Afp32&h=8&w=8 HTTP/1.1\r\n"
                      "Content-Length: " + std::to_string(body.size()) +
                      "\r\nConnection: close\r\n\r\n" + body)),
            "HTTP/1.1 404 Not Found");
  EXPECT_EQ(http_status_line(http_exchange(
                port, "POST /v1/upscale HTTP/1.1\r\nContent-Length: 0\r\n"
                      "Connection: close\r\n\r\n")),
            "HTTP/1.1 400 Bad Request");
  EXPECT_EQ(http_status_line(http_exchange(
                port, "GET /nope HTTP/1.1\r\nConnection: close\r\n\r\n")),
            "HTTP/1.1 404 Not Found");
  EXPECT_GE(fx.net->stats().http_requests, 6U);
}

TEST(NetServer, OverflowProbesAnswerCleanlyAndServerSurvives) {
  // Each probe used to reach an uncaught throw on the IO thread
  // (std::terminate for the whole process). Now each gets a typed rejection
  // and only its own connection closes.
  NetFixture fx;
  const std::uint16_t port = fx.net->port();

  // Binary protocol, pre-auth: h=w=2^31 with an empty pixel block wraps the
  // u64 byte count to 0.
  {
    WireRequest overflow;
    overflow.id = 13;
    overflow.route = "m5:2:fp32";
    overflow.h = 0x80000000LL;
    overflow.w = 0x80000000LL;
    NetClient probe("127.0.0.1", port);
    probe.send_raw(encode_request(overflow));
    const auto reject = probe.recv_response();
    ASSERT_TRUE(reject.has_value());
    EXPECT_EQ(reject->status, Status::kBadRequest);
    EXPECT_EQ(probe.recv_response(), std::nullopt);  // server closed it
  }

  // Raw f32 mode: h*w*4 wraps u64 to 0, matching the empty body.
  const std::string wrap = http_exchange(
      port,
      "POST /v1/upscale?route=m5%3A2%3Afp32&h=2147483648&w=2147483648 HTTP/1.1\r\n"
      "Content-Length: 0\r\nConnection: close\r\n\r\n");
  EXPECT_EQ(http_status_line(wrap), "HTTP/1.1 400 Bad Request");

  // PGM header with a 20-digit width: stoll would throw out_of_range.
  const std::string big_pgm = "P5 99999999999999999999 1 255\nx";
  const std::string pgm = http_exchange(
      port, "POST /v1/upscale?route=m5%3A2%3Afp32 HTTP/1.1\r\nContent-Length: " +
                std::to_string(big_pgm.size()) + "\r\nConnection: close\r\n\r\n" +
                big_pgm);
  EXPECT_EQ(http_status_line(pgm), "HTTP/1.1 400 Bad Request");
  EXPECT_EQ(http_body(pgm), "malformed PGM body\n");

  // Duplicate Content-Length is a smuggling vector: poison, answer, close.
  const std::string dup = http_exchange(
      port, "GET /healthz HTTP/1.1\r\nContent-Length: 0\r\nContent-Length: 2\r\n"
            "Connection: close\r\n\r\n");
  EXPECT_EQ(http_status_line(dup), "HTTP/1.1 400 Bad Request");

  // The server outlived every probe and still serves both protocols.
  const Tensor frame = make_frame(71, 8, 8);
  NetClient healthy("127.0.0.1", port);
  EXPECT_EQ(healthy.upscale("m5:2:fp32", frame).status, Status::kOk);
  EXPECT_EQ(http_status_line(http_exchange(
                port, "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")),
            "HTTP/1.1 200 OK");
  EXPECT_GE(fx.net->stats().malformed, 2U);  // binary poison + duplicate header
}

TEST(NetServer, AuthTokenGatesBinaryAndHttpButNotHealthz) {
  NetServerOptions opts;
  opts.auth_token = "sesame-str33t";
  NetFixture fx(opts);
  const std::uint16_t port = fx.net->port();
  const Tensor frame = make_frame(71, 8, 8);

  // Binary without a token: typed kUnauthorized, connection survives.
  NetClient anon("127.0.0.1", port);
  EXPECT_EQ(anon.upscale("m5:2:fp32", frame).status, Status::kUnauthorized);
  // Wrong token: still unauthorized.
  anon.set_auth_token("sesame-str33v");
  EXPECT_EQ(anon.upscale("m5:2:fp32", frame).status, Status::kUnauthorized);
  // Right token on the SAME connection: auth is per-request, not per-conn.
  anon.set_auth_token("sesame-str33t");
  EXPECT_EQ(anon.upscale("m5:2:fp32", frame).status, Status::kOk);

  // HTTP: /healthz is deliberately tokenless (load balancers probe it);
  // everything else wants Authorization: Bearer.
  EXPECT_EQ(http_status_line(http_exchange(
                port, "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")),
            "HTTP/1.1 200 OK");
  EXPECT_EQ(http_status_line(http_exchange(
                port, "GET /stats HTTP/1.1\r\nConnection: close\r\n\r\n")),
            "HTTP/1.1 401 Unauthorized");
  EXPECT_EQ(http_status_line(http_exchange(
                port, "GET /stats HTTP/1.1\r\nAuthorization: Bearer sesame-str33t\r\n"
                      "Connection: close\r\n\r\n")),
            "HTTP/1.1 200 OK");
  EXPECT_GE(fx.net->stats().auth_failures, 3U);
}

TEST(NetServer, NonLoopbackBindWithoutTokenRefusesToConstruct) {
  const core::SesrInference inference = make_inference(72);
  NetworkRegistry registry;
  registry.add(RouteKey{"m5", 2, core::InferencePrecision::kFp32}, inference);
  ShardedServer server(registry, ServeOptions{});
  NetServerOptions open_bind;
  open_bind.bind_address = "0.0.0.0";
  EXPECT_THROW(NetServer(server, open_bind), std::invalid_argument);
  NetServerOptions zero_shards;
  zero_shards.io_shards = 0;
  EXPECT_THROW(NetServer(server, zero_shards), std::invalid_argument);
  // With a token, the open bind is allowed.
  open_bind.auth_token = "t0ken";
  NetServer net(server, open_bind);
  EXPECT_NE(net.port(), 0);
  net.shutdown();
  server.shutdown();
}

TEST(NetServer, DrainedServerAnswersShuttingDownAndNetShutdownReturns) {
  // Regression shape for the pending-entry leak: requests arriving after the
  // inference server drained must still produce a typed response (the sharded
  // server resolves rejected submits through the done hook), and NetServer
  // shutdown must not spin on phantom in-flight entries.
  NetFixture fx;
  fx.server->shutdown();  // drain the inference backend FIRST
  NetClient client("127.0.0.1", fx.net->port());
  const WireResponse response = client.upscale("m5:2:fp32", make_frame(73, 8, 8));
  EXPECT_EQ(response.status, Status::kShuttingDown);
  std::atomic<bool> done{false};
  std::thread closer([&] {
    fx.net->shutdown();
    done.store(true, std::memory_order_release);
  });
  for (int i = 0; i < 500 && !done.load(std::memory_order_acquire); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(done.load(std::memory_order_acquire))
      << "NetServer::shutdown() wedged on a leaked pending entry";
  closer.join();
}

TEST(NetServer, SynchronousSubmitFaultDoesNotLeakPendingEntry) {
  // The actual bug: a synchronous throw out of submit left pending[seq]
  // behind with no done-hook ever coming, so conn.inflight never decayed and
  // shutdown() waited forever. The submit_fault seam forces that throw
  // deterministically.
  NetServerOptions opts;
  opts.submit_fault = [] { throw std::runtime_error("injected submit fault"); };
  NetFixture fx(opts);
  NetClient client("127.0.0.1", fx.net->port());
  // Pre-fix: no response ever (entry leaked). Post-fix: typed kError.
  const WireResponse response = client.upscale("m5:2:fp32", make_frame(74, 8, 8));
  EXPECT_EQ(response.status, Status::kError);
  EXPECT_FALSE(response.message.empty());
  // And the connection is still usable for the next (also faulted) request.
  EXPECT_EQ(client.upscale("m5:2:fp32", make_frame(75, 8, 8)).status, Status::kError);
  std::atomic<bool> done{false};
  std::thread closer([&] {
    fx.net->shutdown();
    done.store(true, std::memory_order_release);
  });
  for (int i = 0; i < 500 && !done.load(std::memory_order_acquire); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(done.load(std::memory_order_acquire))
      << "leaked pending entry kept shutdown() spinning";
  closer.join();
}

TEST(NetServer, ConnectionCapShedsCleanlyAndFreesOnDisconnect) {
  NetServerOptions opts;
  opts.max_connections = 2;
  NetFixture fx(opts);
  const std::uint16_t port = fx.net->port();
  const Tensor frame = make_frame(76, 8, 8);

  auto occupy_a = std::make_unique<NetClient>("127.0.0.1", port);
  auto occupy_b = std::make_unique<NetClient>("127.0.0.1", port);
  ASSERT_EQ(occupy_a->upscale("m5:2:fp32", frame).status, Status::kOk);
  ASSERT_EQ(occupy_b->upscale("m5:2:fp32", frame).status, Status::kOk);

  // Third binary connection: accepted into the overflow pen, then closed
  // cleanly (EOF before any response) once it reveals itself as binary.
  NetClient over("127.0.0.1", port);
  over.send("m5:2:fp32", frame);
  EXPECT_EQ(over.recv_response(), std::nullopt);

  // Third HTTP connection: gets an honest 503, not a silent close.
  const std::string shed =
      http_exchange(port, "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
  EXPECT_EQ(http_status_line(shed), "HTTP/1.1 503 Service Unavailable");
  EXPECT_GE(fx.net->stats().connections_rejected, 2U);

  // Freeing a slot readmits new connections. The disconnect needs a poll
  // cycle to land, so retry until the new client is actually served.
  occupy_a.reset();
  bool served = false;
  for (int attempt = 0; attempt < 100 && !served; ++attempt) {
    try {
      NetClient retry("127.0.0.1", port);
      served = retry.upscale("m5:2:fp32", frame).status == Status::kOk;
    } catch (const std::exception&) {
    }
    if (!served) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(served) << "cap never released the disconnected client's slot";
}

TEST(NetServer, IoShardsServeIdenticallyAndStatsRollUp) {
  NetServerOptions opts;
  opts.io_shards = 2;
  NetFixture fx(opts);
  const Tensor frame = make_frame(77, 8, 8);
  const Tensor expected = fx.inference.upscale(frame);
  // The kernel hashes the 4-tuple to pick a shard; distinct ephemeral source
  // ports make 32 sequential connections land on both shards with
  // overwhelming probability (miss chance 2^-31).
  for (int i = 0; i < 32; ++i) {
    NetClient client("127.0.0.1", fx.net->port());
    const WireResponse response = client.upscale("m5:2:fp32", frame);
    ASSERT_EQ(response.status, Status::kOk);
    ASSERT_EQ(max_abs_diff(pixels_to_frame(response.h, response.w, response.pixels), expected),
              0.0F);
  }
  // The response counter ticks AFTER the bytes hit the socket, so the last
  // client can observe its reply a beat before the shard thread bumps the
  // count — poll briefly instead of racing it.
  NetStats stats = fx.net->stats();
  for (int i = 0; i < 500 && stats.responses < 32; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    stats = fx.net->stats();
  }
  ASSERT_EQ(stats.shards.size(), 2U);
  EXPECT_EQ(stats.connections_accepted, 32U);
  EXPECT_EQ(stats.requests, 32U);
  EXPECT_EQ(stats.responses, 32U);
  EXPECT_GT(stats.shards[0].connections_accepted, 0U);
  EXPECT_GT(stats.shards[1].connections_accepted, 0U);
  EXPECT_EQ(stats.shards[0].connections_accepted + stats.shards[1].connections_accepted, 32U);
  EXPECT_EQ(stats.shards[0].responses + stats.shards[1].responses, 32U);
}

TEST(NetServer, SlowLorisPartialFrameTripsReadTimeout) {
  NetServerOptions opts;
  opts.read_timeout_ms = 150;
  opts.idle_timeout_ms = 0;  // isolate the read timeout
  NetFixture fx(opts);
  const std::vector<std::uint8_t> full = encode_request([] {
    WireRequest r;
    r.id = 1;
    r.route = "m5:2:fp32";
    r.h = 8;
    r.w = 8;
    r.pixels.assign(64, 0.5F);
    return r;
  }());
  // A classic slow-loris: send half a frame, then go quiet. The server must
  // cut the connection after read_timeout_ms instead of holding the slot.
  NetClient loris("127.0.0.1", fx.net->port());
  loris.send_raw(std::vector<std::uint8_t>(full.begin(), full.begin() + full.size() / 2));
  EXPECT_EQ(loris.recv_response(), std::nullopt);  // EOF, no reply
  EXPECT_GE(fx.net->stats().timeouts, 1U);
  // An honest client connecting afterwards is unaffected.
  NetClient honest("127.0.0.1", fx.net->port());
  EXPECT_EQ(honest.upscale("m5:2:fp32", make_frame(78, 8, 8)).status, Status::kOk);
}

TEST(NetServer, IdleTimeoutSweepsSilentConnections) {
  NetServerOptions opts;
  opts.idle_timeout_ms = 150;
  opts.read_timeout_ms = 0;
  NetFixture fx(opts);
  // Connect and send NOTHING: no partial request pending, so the idle sweep
  // (not the read timeout) must reap this connection.
  NetClient silent("127.0.0.1", fx.net->port());
  EXPECT_EQ(silent.recv_response(), std::nullopt);
  EXPECT_GE(fx.net->stats().timeouts, 1U);
}

TEST(NetServer, SlowReaderWithLargeOutboxNeitherBlocksShardNorLosesResponses) {
  NetFixture fx;
  constexpr int kRequests = 64;
  const Tensor frame = make_frame(79, 64, 64);
  // Pipeline 64 requests (~4MB of 128x128 f32 responses) WITHOUT reading any
  // replies: the kernel socket buffers fill, the server's outbox grows, and
  // partial writes kick in. The IO shard must stay responsive throughout.
  NetClient greedy("127.0.0.1", fx.net->port());
  std::vector<std::uint64_t> ids;
  ids.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    ids.push_back(greedy.send("m5:2:fp32", frame));
  }
  // While greedy's responses pile up unread, other clients keep getting
  // ANSWERS: the partial-write path must never park the whole shard on one
  // socket. A typed kOverloaded is a fine answer here (greedy's pipeline may
  // legitimately have the queue full); a hang or dead connection is not.
  for (int i = 0; i < 3; ++i) {
    NetClient bystander("127.0.0.1", fx.net->port());
    const Status status = bystander.upscale("m5:2:fp32", make_frame(80, 8, 8)).status;
    EXPECT_TRUE(status == Status::kOk || status == Status::kOverloaded);
  }
  // Now drain: every pipelined request gets exactly one response. With two
  // inference workers completions legitimately finish out of order (that is
  // what the wire id is for), and under pipelining pressure the admission
  // ladder may shed some as kOverloaded — fine; LOSING a response is not.
  std::map<std::uint64_t, int> answered;
  for (int i = 0; i < kRequests; ++i) {
    const auto response = greedy.recv_response();
    ASSERT_TRUE(response.has_value()) << "response " << i << " lost";
    EXPECT_TRUE(response->status == Status::kOk || response->status == Status::kOverloaded);
    ++answered[response->id];
  }
  for (const std::uint64_t id : ids) {
    EXPECT_EQ(answered[id], 1) << "request id " << id << " answered " << answered[id] << " times";
  }
}

}  // namespace
}  // namespace sesr::serve::net
