// Tests for the deployment extensions: functional tiled inference
// (Section 5.6 boundary correctness), int8 post-training quantization
// (the NPU execution premise), and the Winograd 3x3 fast path.
#include <gtest/gtest.h>

#include <cmath>

#include "core/quantize.hpp"
#include "core/sesr_inference.hpp"
#include "core/sesr_network.hpp"
#include "core/streaming.hpp"
#include "core/tiled_inference.hpp"
#include "data/synthetic.hpp"
#include "metrics/psnr.hpp"
#include "nn/conv2d.hpp"
#include "nn/init.hpp"
#include "nn/winograd.hpp"
#include "tensor/tensor_ops.hpp"

namespace sesr::core {
namespace {

SesrConfig tiny(std::int64_t scale = 2) {
  SesrConfig c;
  c.f = 6;
  c.m = 2;
  c.scale = scale;
  c.expand = 24;
  return c;
}

TEST(TiledInference, ReceptiveFieldRadius) {
  Rng rng(1);
  SesrNetwork net(sesr_m5(2), rng);
  SesrInference deployed(net);
  // Two 5x5 convs (radius 2 each) + five 3x3 convs (radius 1 each) = 9.
  EXPECT_EQ(receptive_field_radius(deployed), 9);
}

TEST(TiledInference, ExactWithFullHalo) {
  Rng rng(2);
  SesrNetwork net(tiny(2), rng);
  SesrInference deployed(net);
  Rng irng(3);
  Tensor image = data::synthesize_image(data::ImageFamily::kUrban, 40, 56, irng);
  Tensor full = deployed.upscale(image);
  TilingOptions options;
  options.tile_h = 16;
  options.tile_w = 16;
  options.halo = -1;  // exact
  Tensor tiled = upscale_tiled(deployed, image, options);
  EXPECT_EQ(tiled.shape(), full.shape());
  EXPECT_LT(max_abs_diff(tiled, full), 1e-5F);
}

TEST(TiledInference, ExactWithUnevenTiles) {
  // Image dims not divisible by the tile size: edge tiles shrink.
  Rng rng(4);
  SesrNetwork net(tiny(2), rng);
  SesrInference deployed(net);
  Rng irng(5);
  Tensor image = data::synthesize_image(data::ImageFamily::kNatural, 34, 46, irng);
  Tensor full = deployed.upscale(image);
  TilingOptions options;
  options.tile_h = 15;
  options.tile_w = 20;
  Tensor tiled = upscale_tiled(deployed, image, options);
  EXPECT_LT(max_abs_diff(tiled, full), 1e-5F);
}

TEST(TiledInference, ExactForX4) {
  Rng rng(6);
  SesrNetwork net(tiny(4), rng);
  SesrInference deployed(net);
  Rng irng(7);
  Tensor image = data::synthesize_image(data::ImageFamily::kObjects, 32, 32, irng);
  Tensor full = deployed.upscale(image);
  TilingOptions options;
  options.tile_h = 12;
  options.tile_w = 12;
  Tensor tiled = upscale_tiled(deployed, image, options);
  EXPECT_LT(max_abs_diff(tiled, full), 1e-5F);
}

TEST(TiledInference, TruncatedHaloDegradesGracefully) {
  Rng rng(8);
  SesrNetwork net(tiny(2), rng);
  SesrInference deployed(net);
  Rng irng(9);
  Tensor image = data::synthesize_image(data::ImageFamily::kNatural, 32, 32, irng);
  Tensor full = deployed.upscale(image);
  TilingOptions options;
  options.tile_h = 16;
  options.tile_w = 16;
  options.halo = 1;  // smaller than the receptive field
  Tensor tiled = upscale_tiled(deployed, image, options);
  const float err = max_abs_diff(tiled, full);
  EXPECT_GT(err, 0.0F);          // not exact ...
  const double psnr = metrics::psnr(tiled, full);
  EXPECT_GT(psnr, 20.0);         // ... but close (seam artifacts only)
}

TEST(TiledInference, OverheadAccounting) {
  TilingOptions options;
  options.tile_h = 16;
  options.tile_w = 16;
  // halo 0: no overhead at all.
  EXPECT_DOUBLE_EQ(tiling_compute_overhead(64, 64, options, 0), 1.0);
  // halo 4 on 16x16 tiles: interior tiles are 24x24 -> up to 2.25x.
  const double overhead = tiling_compute_overhead(64, 64, options, 4);
  EXPECT_GT(overhead, 1.5);
  EXPECT_LT(overhead, 2.25 + 1e-9);
}

TEST(TiledInference, RejectsBadInputs) {
  Rng rng(10);
  SesrNetwork net(tiny(2), rng);
  SesrInference deployed(net);
  Tensor batch(2, 16, 16, 1);
  EXPECT_THROW(upscale_tiled(deployed, batch, {}), std::invalid_argument);
  Tensor rgb(1, 16, 16, 3);
  EXPECT_THROW(upscale_tiled(deployed, rgb, {}), std::invalid_argument);
  TilingOptions bad;
  bad.tile_h = 0;
  Tensor ok(1, 16, 16, 1);
  EXPECT_THROW(upscale_tiled(deployed, ok, bad), std::invalid_argument);
}

TEST(Streaming, MatchesBatchInferenceX2) {
  Rng rng(51);
  SesrNetwork net(tiny(2), rng);
  SesrInference deployed(net);
  StreamingUpscaler streamer(deployed);
  Rng irng(53);
  Tensor image = data::synthesize_image(data::ImageFamily::kNatural, 40, 48, irng);
  Tensor batch_out = deployed.upscale(image);
  Tensor stream_out = streamer.upscale(image);
  EXPECT_EQ(stream_out.shape(), batch_out.shape());
  EXPECT_LT(max_abs_diff(stream_out, batch_out), 1e-5F);
  EXPECT_GT(streamer.peak_buffered_rows(), 0);
}

TEST(Streaming, MatchesBatchInferenceX4) {
  Rng rng(55);
  SesrNetwork net(tiny(4), rng);
  SesrInference deployed(net);
  StreamingUpscaler streamer(deployed);
  Rng irng(57);
  Tensor image = data::synthesize_image(data::ImageFamily::kUrban, 32, 36, irng);
  EXPECT_LT(max_abs_diff(streamer.upscale(image), deployed.upscale(image)), 1e-5F);
}

TEST(Streaming, MatchesHardwareVariant) {
  Rng rng(59);
  SesrNetwork net(hardware_variant(tiny(2)), rng);
  SesrInference deployed(net);
  StreamingUpscaler streamer(deployed);
  Rng irng(61);
  Tensor image = data::synthesize_image(data::ImageFamily::kLineArt, 36, 40, irng);
  EXPECT_LT(max_abs_diff(streamer.upscale(image), deployed.upscale(image)), 1e-5F);
}

TEST(Streaming, MatchesOnFullSesrM5) {
  Rng rng(63);
  SesrNetwork net(sesr_m5(2), rng);
  SesrInference deployed(net);
  StreamingUpscaler streamer(deployed);
  Rng irng(65);
  Tensor image = data::synthesize_image(data::ImageFamily::kObjects, 32, 48, irng);
  EXPECT_LT(max_abs_diff(streamer.upscale(image), deployed.upscale(image)), 1e-5F);
}

TEST(Streaming, PeakMemoryIndependentOfImageHeight) {
  // The whole point of line-buffer streaming: buffered bytes depend on width
  // and kernel rows, not on image height.
  Rng rng(67);
  SesrNetwork net(tiny(2), rng);
  SesrInference deployed(net);
  StreamingUpscaler streamer(deployed);
  Rng irng(69);
  Tensor short_img = data::synthesize_image(data::ImageFamily::kNatural, 24, 32, irng);
  streamer.upscale(short_img);
  const std::int64_t peak_short = streamer.peak_buffered_bytes();
  Tensor tall_img = data::synthesize_image(data::ImageFamily::kNatural, 96, 32, irng);
  streamer.upscale(tall_img);
  const std::int64_t peak_tall = streamer.peak_buffered_bytes();
  EXPECT_LE(peak_tall, peak_short + peak_short / 4) << "memory grew with height";
  // And it is far below buffering the full feature maps (H * W * f * convs).
  const std::int64_t full_buffering = 96 * 32 * 6 * 4 * 4;
  EXPECT_LT(peak_tall, full_buffering / 2);
}

TEST(Streaming, RejectsBatchedOrColorInput) {
  Rng rng(71);
  SesrNetwork net(tiny(2), rng);
  SesrInference deployed(net);
  StreamingUpscaler streamer(deployed);
  Tensor batch(2, 16, 16, 1);
  EXPECT_THROW(streamer.upscale(batch), std::invalid_argument);
  Tensor rgb(1, 16, 16, 3);
  EXPECT_THROW(streamer.upscale(rgb), std::invalid_argument);
}

TEST(Quantize, SymmetricRoundTrip) {
  Rng rng(11);
  Tensor t(1, 4, 4, 3);
  t.fill_uniform(rng, -2.0F, 2.0F);
  QuantizedTensor q = quantize_symmetric(t);
  Tensor back = dequantize(q);
  EXPECT_EQ(back.shape(), t.shape());
  // Max error bounded by half a quantization step.
  EXPECT_LT(max_abs_diff(t, back), q.scale * 0.5F + 1e-7F);
}

TEST(Quantize, ZeroTensorHandled) {
  // Degenerate ranges use the module-wide convention (scale 1/127), the same
  // floor the QuantizedSesr activation calibration applies — the two used to
  // disagree (1.0 vs 1/127).
  Tensor t(1, 2, 2, 1);
  QuantizedTensor q = quantize_symmetric(t);
  EXPECT_EQ(q.scale, kDegenerateQuantScale);
  EXPECT_EQ(max_abs(dequantize(q)), 0.0F);
}

TEST(Quantize, ZeroCalibrationImagesUseDegenerateScale) {
  // An all-zero calibration set must not produce zero (or mismatched)
  // activation scales: every layer falls back to kDegenerateQuantScale and
  // inference still runs.
  Rng rng(43);
  SesrNetwork net(tiny(2), rng);
  SesrInference deployed(net);
  std::vector<Tensor> calib{Tensor(1, 16, 16, 1)};  // zero-filled
  QuantizedSesr quant(deployed, calib);
  for (const float s : quant.activation_scales()) {
    EXPECT_EQ(s, kDegenerateQuantScale);
  }
  Tensor zero_img(1, 12, 12, 1);
  const Tensor out = quant.upscale(zero_img);
  EXPECT_EQ(out.shape(), Shape(1, 24, 24, 1));
  for (const float v : out.data()) EXPECT_TRUE(std::isfinite(v));
}

TEST(Quantize, Int8ConvMatchesFloatWithinQuantNoise) {
  Rng rng(13);
  Tensor x(1, 8, 8, 4);
  x.fill_uniform(rng, -1.0F, 1.0F);
  Tensor w = nn::glorot_uniform_kernel(3, 3, 4, 6, rng);
  Tensor reference = nn::conv2d(x, w, nn::Padding::kSame);
  Tensor quantized = conv2d_int8(quantize_symmetric(x), quantize_symmetric(w));
  EXPECT_EQ(quantized.shape(), reference.shape());
  // Error should be small relative to the signal.
  EXPECT_LT(max_abs_diff(reference, quantized), 0.05F * std::max(1.0F, max_abs(reference)));
}

TEST(Quantize, QuantizedSesrStaysCloseToFloat) {
  Rng rng(17);
  SesrNetwork net(tiny(2), rng);
  SesrInference deployed(net);
  Rng irng(19);
  std::vector<Tensor> calib;
  for (int i = 0; i < 2; ++i) {
    calib.push_back(data::synthesize_image(data::ImageFamily::kNatural, 32, 32, irng));
  }
  QuantizedSesr quant(deployed, calib);
  EXPECT_EQ(quant.weight_bytes(), deployed.parameter_count());

  Tensor image = data::synthesize_image(data::ImageFamily::kObjects, 32, 32, irng);
  Tensor float_out = deployed.upscale(image);
  Tensor int8_out = quant.upscale(image);
  EXPECT_EQ(int8_out.shape(), float_out.shape());
  const double agreement = metrics::psnr(int8_out, float_out);
  EXPECT_GT(agreement, 35.0) << "int8 output strays too far from float";
}

TEST(Quantize, WorksOnHardwareVariant) {
  // ReLU + no input residual: the configuration that actually ships (Table 3).
  Rng rng(101);
  SesrNetwork net(hardware_variant(tiny(2)), rng);
  SesrInference deployed(net);
  Rng irng(103);
  std::vector<Tensor> calib{data::synthesize_image(data::ImageFamily::kNatural, 32, 32, irng)};
  QuantizedSesr quant(deployed, calib);
  Tensor image = data::synthesize_image(data::ImageFamily::kUrban, 32, 32, irng);
  Tensor a = deployed.upscale(image);
  Tensor b = quant.upscale(image);
  EXPECT_EQ(b.shape(), a.shape());
  EXPECT_GT(metrics::psnr(b, a), 30.0);
}

TEST(Quantize, ConvRejectsChannelMismatch) {
  Rng rng(107);
  Tensor x(1, 4, 4, 3);
  x.fill_uniform(rng, -1.0F, 1.0F);
  Tensor w = nn::glorot_uniform_kernel(3, 3, 2, 2, rng);
  EXPECT_THROW(conv2d_int8(quantize_symmetric(x), quantize_symmetric(w)), std::invalid_argument);
}

TEST(Quantize, RequiresCalibration) {
  Rng rng(23);
  SesrNetwork net(tiny(2), rng);
  SesrInference deployed(net);
  EXPECT_THROW(QuantizedSesr(deployed, {}), std::invalid_argument);
}

TEST(Winograd, MatchesIm2colConv) {
  Rng rng(29);
  for (const auto [h, w, in_c, out_c] :
       {std::array<std::int64_t, 4>{8, 8, 4, 4}, std::array<std::int64_t, 4>{9, 7, 3, 5},
        std::array<std::int64_t, 4>{16, 16, 16, 16}, std::array<std::int64_t, 4>{5, 5, 1, 2}}) {
    Tensor x(1, h, w, in_c);
    x.fill_uniform(rng, -1.0F, 1.0F);
    Tensor weight = nn::glorot_uniform_kernel(3, 3, in_c, out_c, rng);
    Tensor reference = nn::conv2d(x, weight, nn::Padding::kSame);
    Tensor winograd = nn::conv2d_winograd_3x3(x, weight);
    EXPECT_EQ(winograd.shape(), reference.shape());
    EXPECT_LT(max_abs_diff(reference, winograd), 1e-4F) << h << "x" << w;
  }
}

TEST(Winograd, BoundaryTilesMatchNaiveOnOddSizes) {
  // Property sweep over odd / tiny spatial sizes: F(2x2, 3x3) tiles the output
  // in 2x2 blocks, so every H or W that is not a multiple of 2 ends in partial
  // tiles, and H or W in {1, 2} makes EVERY tile a border tile. Each case must
  // match the direct convolution.
  Rng rng(47);
  for (std::int64_t h = 1; h <= 17; h += 2) {
    for (std::int64_t w = 1; w <= 13; w += 4) {
      for (const std::int64_t in_c : {1, 3}) {
        Tensor x(1, h, w, in_c);
        x.fill_uniform(rng, -1.0F, 1.0F);
        Tensor weight = nn::glorot_uniform_kernel(3, 3, in_c, 2, rng);
        Tensor reference = nn::conv2d_naive(x, weight, nn::Padding::kSame);
        Tensor winograd = nn::conv2d_winograd_3x3(x, weight);
        ASSERT_EQ(winograd.shape(), reference.shape()) << h << "x" << w << "x" << in_c;
        EXPECT_LT(max_abs_diff(reference, winograd), 1e-4F) << h << "x" << w << "x" << in_c;
      }
    }
  }
  // Even-but-small sizes where the image is narrower than one 4x4 input tile.
  for (const auto [h, w] : {std::pair<std::int64_t, std::int64_t>{2, 2}, {2, 6}, {6, 2}, {1, 2}}) {
    Tensor x(1, h, w, 2);
    x.fill_uniform(rng, -1.0F, 1.0F);
    Tensor weight = nn::glorot_uniform_kernel(3, 3, 2, 3, rng);
    EXPECT_LT(max_abs_diff(nn::conv2d_naive(x, weight, nn::Padding::kSame),
                           nn::conv2d_winograd_3x3(x, weight)),
              1e-4F)
        << h << "x" << w;
  }
}

TEST(Winograd, PretransformedPathMatches) {
  Rng rng(31);
  Tensor x(2, 10, 10, 8);
  x.fill_uniform(rng, -1.0F, 1.0F);
  Tensor weight = nn::glorot_uniform_kernel(3, 3, 8, 8, rng);
  Tensor u = nn::winograd_weight_transform(weight);
  EXPECT_EQ(u.shape(), Shape(4, 4, 8, 8));
  Tensor a = nn::conv2d_winograd_3x3(x, weight);
  Tensor b = nn::conv2d_winograd_3x3_pretransformed(x, u, 8);
  EXPECT_EQ(max_abs_diff(a, b), 0.0F);
}

TEST(Winograd, RejectsNon3x3) {
  Rng rng(37);
  Tensor w = nn::glorot_uniform_kernel(5, 5, 2, 2, rng);
  EXPECT_THROW(nn::winograd_weight_transform(w), std::invalid_argument);
}

TEST(Winograd, IdentityKernelIsIdentity) {
  Rng rng(41);
  Tensor x(1, 6, 6, 3);
  x.fill_uniform(rng, -1.0F, 1.0F);
  Tensor id = nn::identity_kernel(3, 3, 3);
  Tensor y = nn::conv2d_winograd_3x3(x, id);
  EXPECT_LT(max_abs_diff(x, y), 1e-5F);
}

}  // namespace
}  // namespace sesr::core
