// Tests for losses, optimizers, LR schedules, and the Trainer loop.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/conv2d.hpp"
#include "train/loss.hpp"
#include "train/lr_schedule.hpp"
#include "train/optimizer.hpp"
#include "train/trainer.hpp"
#include "tensor/tensor_ops.hpp"

namespace sesr::train {
namespace {

TEST(Loss, L1ValueAndGradient) {
  Tensor p(1, 1, 4, 1);
  Tensor t(1, 1, 4, 1);
  p(0, 0, 0, 0) = 1.0F;   // +1 diff
  t(0, 0, 1, 0) = 2.0F;   // -2 diff
  p(0, 0, 2, 0) = 0.5F;
  t(0, 0, 2, 0) = 0.5F;   // tie: zero subgradient
  LossResult r = l1_loss(p, t);
  EXPECT_FLOAT_EQ(r.value, (1.0F + 2.0F + 0.0F + 0.0F) / 4.0F);
  EXPECT_FLOAT_EQ(r.grad(0, 0, 0, 0), 0.25F);
  EXPECT_FLOAT_EQ(r.grad(0, 0, 1, 0), -0.25F);
  EXPECT_FLOAT_EQ(r.grad(0, 0, 2, 0), 0.0F);
}

TEST(Loss, L2ValueAndGradient) {
  Tensor p(1, 1, 2, 1);
  Tensor t(1, 1, 2, 1);
  p(0, 0, 0, 0) = 3.0F;
  LossResult r = l2_loss(p, t);
  EXPECT_FLOAT_EQ(r.value, 0.5F * 9.0F / 2.0F);
  EXPECT_FLOAT_EQ(r.grad(0, 0, 0, 0), 3.0F / 2.0F);
  EXPECT_FLOAT_EQ(r.grad(0, 0, 1, 0), 0.0F);
}

TEST(Loss, L1GradientIsFiniteDifferenceOfValue) {
  Rng rng(5);
  Tensor p(1, 2, 2, 1);
  Tensor t(1, 2, 2, 1);
  p.fill_uniform(rng, -1.0F, 1.0F);
  t.fill_uniform(rng, -1.0F, 1.0F);
  LossResult r = l1_loss(p, t);
  constexpr float kEps = 1e-3F;
  for (std::int64_t i = 0; i < p.numel(); ++i) {
    Tensor pp = p;
    pp.raw()[i] += kEps;
    Tensor pm = p;
    pm.raw()[i] -= kEps;
    const float numeric = (l1_loss(pp, t).value - l1_loss(pm, t).value) / (2.0F * kEps);
    EXPECT_NEAR(r.grad.raw()[i], numeric, 1e-3F);
  }
}

TEST(Loss, ShapeMismatchThrows) {
  Tensor a(1, 1, 2, 1);
  Tensor b(1, 2, 1, 1);
  EXPECT_THROW(l1_loss(a, b), std::invalid_argument);
  EXPECT_THROW(l2_loss(a, b), std::invalid_argument);
}

// A trivial "model": output = input + w (per element), so L2 loss against a
// target drives w toward (target - input).
class QuadraticModel final : public Model {
 public:
  explicit QuadraticModel(std::int64_t dim) : param_("w", Tensor(1, 1, 1, dim)) {}

  Tensor forward(const Tensor& input, bool) override { return add(input, param_.value); }
  void backward(const Tensor& grad_output) override { add_inplace(param_.grad, grad_output); }
  std::vector<nn::Parameter*> parameters() override { return {&param_}; }
  std::string name() const override { return "quadratic"; }

  nn::Parameter param_;
};

TEST(Sgd, ConvergesOnQuadratic) {
  QuadraticModel model(4);
  model.param_.value.fill(5.0F);
  Sgd sgd(0.5F);
  Tensor zero(1, 1, 1, 4);
  Tensor target(1, 1, 1, 4);
  target.fill(1.0F);
  for (int i = 0; i < 100; ++i) {
    nn::zero_gradients(model.parameters());
    Tensor out = model.forward(zero, true);
    LossResult r = l2_loss(out, target);
    model.backward(r.grad);
    sgd.step(model.parameters());
  }
  for (float v : model.param_.value.data()) EXPECT_NEAR(v, 1.0F, 1e-3F);
}

TEST(Adam, ConvergesOnQuadratic) {
  QuadraticModel model(4);
  model.param_.value.fill(-3.0F);
  Adam adam(0.1F);
  Tensor zero(1, 1, 1, 4);
  Tensor target(1, 1, 1, 4);
  target.fill(2.0F);
  for (int i = 0; i < 400; ++i) {
    nn::zero_gradients(model.parameters());
    Tensor out = model.forward(zero, true);
    LossResult r = l2_loss(out, target);
    model.backward(r.grad);
    adam.step(model.parameters());
  }
  for (float v : model.param_.value.data()) EXPECT_NEAR(v, 2.0F, 1e-2F);
}

TEST(Adam, FirstStepMovesByLearningRate) {
  // With bias correction, the very first Adam step has magnitude ~lr.
  QuadraticModel model(1);
  model.param_.value.fill(10.0F);
  Adam adam(0.01F);
  nn::zero_gradients(model.parameters());
  model.param_.grad.fill(123.0F);  // any positive gradient
  adam.step(model.parameters());
  EXPECT_NEAR(model.param_.value.raw()[0], 10.0F - 0.01F, 1e-5F);
}

TEST(LrSchedule, Constant) {
  ConstantLr lr(0.1F);
  EXPECT_FLOAT_EQ(lr.at(0), 0.1F);
  EXPECT_FLOAT_EQ(lr.at(1000), 0.1F);
}

TEST(LrSchedule, StepDecayStaircase) {
  StepDecayLr lr(1.0F, 0.5F, 10);
  EXPECT_FLOAT_EQ(lr.at(0), 1.0F);
  EXPECT_FLOAT_EQ(lr.at(9), 1.0F);
  EXPECT_FLOAT_EQ(lr.at(10), 0.5F);
  EXPECT_FLOAT_EQ(lr.at(25), 0.25F);
  EXPECT_THROW(StepDecayLr(1.0F, 0.5F, 0), std::invalid_argument);
}

TEST(LrSchedule, WarmupRampsLinearly) {
  WarmupLr lr(1.0F, 4);
  EXPECT_FLOAT_EQ(lr.at(0), 0.25F);
  EXPECT_FLOAT_EQ(lr.at(1), 0.5F);
  EXPECT_FLOAT_EQ(lr.at(3), 1.0F);
  EXPECT_FLOAT_EQ(lr.at(100), 1.0F);
}

TEST(Trainer, LossDecreasesOnLinearTask) {
  // Learn a 1x1 conv to scale its input by 2.
  Rng rng(7);
  class OneConv final : public Model {
   public:
    explicit OneConv(Rng& rng) : conv_("c", 1, 1, 1, 1, nn::Padding::kSame, false, rng) {}
    Tensor forward(const Tensor& x, bool training) override { return conv_.forward(x, training); }
    void backward(const Tensor& g) override { conv_.backward(g); }
    std::vector<nn::Parameter*> parameters() override { return conv_.parameters(); }
    std::string name() const override { return "one-conv"; }
    nn::Conv2d conv_;
  } model(rng);

  Adam adam(0.05F);
  ConstantLr schedule(0.05F);
  Trainer trainer(model, adam, schedule, l2_loss);
  Rng data_rng(11);
  TrainOptions options;
  options.steps = 120;
  TrainHistory history = trainer.run(
      [&](std::int64_t) {
        Tensor x(2, 4, 4, 1);
        x.fill_uniform(data_rng, -1.0F, 1.0F);
        return std::make_pair(x, scale(x, 2.0F));
      },
      options);
  EXPECT_EQ(history.loss.size(), 120U);
  EXPECT_EQ(history.grad_norm.size(), 120U);
  EXPECT_LT(history.mean_tail_loss(10), history.loss.front() * 0.05F);
  EXPECT_NEAR(model.conv_.weight().value.raw()[0], 2.0F, 0.05F);
}

TEST(Trainer, RejectsZeroSteps) {
  QuadraticModel model(1);
  Sgd sgd(0.1F);
  ConstantLr schedule(0.1F);
  Trainer trainer(model, sgd, schedule, l2_loss);
  TrainOptions options;
  options.steps = 0;
  EXPECT_THROW(trainer.run([](std::int64_t) { return std::pair<Tensor, Tensor>{}; }, options),
               std::invalid_argument);
}

TEST(TrainHistory, TailMean) {
  TrainHistory h;
  h.loss = {10.0F, 4.0F, 2.0F};
  EXPECT_FLOAT_EQ(h.mean_tail_loss(2), 3.0F);
  EXPECT_FLOAT_EQ(h.mean_tail_loss(10), 16.0F / 3.0F);
  EXPECT_FLOAT_EQ(h.final_loss(), 2.0F);
}

}  // namespace
}  // namespace sesr::train
