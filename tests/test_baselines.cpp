// Tests for the baseline models: SingleConvBlock / RepVggBlock (collapse
// correctness and gradients), the SequentialModel container, FSRCNN, and the
// SESR topology built from baseline blocks (Section 5.4 variants).
#include <gtest/gtest.h>

#include "baselines/blocks.hpp"
#include "baselines/fsrcnn.hpp"
#include "baselines/sequential.hpp"
#include "baselines/vdsr.hpp"
#include "core/sesr_inference.hpp"
#include "core/sesr_network.hpp"
#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "tensor/tensor_ops.hpp"

namespace sesr::baselines {
namespace {

core::BlockSpec spec(std::int64_t kh, std::int64_t kw, std::int64_t in_c, std::int64_t out_c,
                     bool residual) {
  core::BlockSpec s;
  s.name = "blk";
  s.kh = kh;
  s.kw = kw;
  s.in_channels = in_c;
  s.out_channels = out_c;
  s.short_residual = residual;
  return s;
}

TEST(SingleConvBlock, CollapsedWeightReproducesForward) {
  Rng rng(1);
  SingleConvBlock block("b", spec(3, 3, 4, 4, true), rng);
  Rng xrng(2);
  Tensor x(1, 6, 6, 4);
  x.fill_uniform(xrng, -1.0F, 1.0F);
  Tensor via_forward = block.forward(x, false);
  Tensor via_weight = nn::conv2d(x, block.collapsed_weight(), nn::Padding::kSame);
  EXPECT_LT(max_abs_diff(via_forward, via_weight), 1e-5F);
}

TEST(SingleConvBlock, ResidualNeedsMatchingChannels) {
  Rng rng(3);
  EXPECT_THROW(SingleConvBlock("b", spec(3, 3, 4, 8, true), rng), std::invalid_argument);
}

TEST(SingleConvBlock, GradientFlowsToWeightAndInput) {
  Rng rng(5);
  SingleConvBlock block("b", spec(3, 3, 3, 3, true), rng);
  Rng xrng(7);
  Tensor x(1, 5, 5, 3);
  x.fill_uniform(xrng, -1.0F, 1.0F);
  Tensor y = block.forward(x, true);
  nn::zero_gradients(block.parameters());
  Tensor gi = block.backward(y);
  EXPECT_EQ(gi.shape(), x.shape());
  EXPECT_GT(max_abs(block.parameters()[0]->grad), 0.0F);
}

TEST(RepVggBlock, CollapsedWeightReproducesForward) {
  Rng rng(11);
  RepVggBlock block("b", spec(3, 3, 5, 5, true), rng);
  Rng xrng(13);
  Tensor x(1, 7, 6, 5);
  x.fill_uniform(xrng, -1.0F, 1.0F);
  Tensor via_forward = block.forward(x, false);
  Tensor via_weight = nn::conv2d(x, block.collapsed_weight(), nn::Padding::kSame);
  EXPECT_LT(max_abs_diff(via_forward, via_weight), 1e-5F);
}

TEST(RepVggBlock, WithoutIdentityStillCollapses) {
  Rng rng(17);
  RepVggBlock block("b", spec(5, 5, 1, 8, false), rng);
  Rng xrng(19);
  Tensor x(1, 6, 6, 1);
  x.fill_uniform(xrng, -1.0F, 1.0F);
  Tensor via_forward = block.forward(x, false);
  Tensor via_weight = nn::conv2d(x, block.collapsed_weight(), nn::Padding::kSame);
  EXPECT_LT(max_abs_diff(via_forward, via_weight), 1e-5F);
}

TEST(RepVggBlock, RejectsEvenKernel) {
  Rng rng(23);
  EXPECT_THROW(RepVggBlock("b", spec(2, 2, 4, 4, false), rng), std::invalid_argument);
}

TEST(RepVggBlock, BothBranchesReceiveGradient) {
  Rng rng(29);
  RepVggBlock block("b", spec(3, 3, 4, 4, true), rng);
  Rng xrng(31);
  Tensor x(1, 5, 5, 4);
  x.fill_uniform(xrng, -1.0F, 1.0F);
  Tensor y = block.forward(x, true);
  nn::zero_gradients(block.parameters());
  block.backward(y);
  auto params = block.parameters();
  ASSERT_EQ(params.size(), 2U);
  EXPECT_GT(max_abs(params[0]->grad), 0.0F);
  EXPECT_GT(max_abs(params[1]->grad), 0.0F);
}

TEST(RepVggBlock, CollapsedParametersCountOnlyKxK) {
  Rng rng(37);
  RepVggBlock block("b", spec(3, 3, 4, 4, true), rng);
  EXPECT_EQ(block.collapsed_parameter_count(), 3 * 3 * 4 * 4);
}

TEST(AcNetBlock, CollapsedWeightReproducesForward) {
  Rng rng(81);
  AcNetBlock block("b", spec(3, 3, 4, 4, true), rng);
  Rng xrng(83);
  Tensor x(1, 7, 6, 4);
  x.fill_uniform(xrng, -1.0F, 1.0F);
  Tensor via_forward = block.forward(x, false);
  Tensor via_weight = nn::conv2d(x, block.collapsed_weight(), nn::Padding::kSame);
  EXPECT_LT(max_abs_diff(via_forward, via_weight), 1e-5F);
}

TEST(AcNetBlock, NoIdentityVariantCollapses) {
  Rng rng(85);
  AcNetBlock block("b", spec(5, 5, 2, 6, false), rng);
  Rng xrng(87);
  Tensor x(1, 6, 6, 2);
  x.fill_uniform(xrng, -1.0F, 1.0F);
  Tensor via_forward = block.forward(x, false);
  Tensor via_weight = nn::conv2d(x, block.collapsed_weight(), nn::Padding::kSame);
  EXPECT_LT(max_abs_diff(via_forward, via_weight), 1e-5F);
}

TEST(AcNetBlock, AllThreeBranchesReceiveGradient) {
  Rng rng(89);
  AcNetBlock block("b", spec(3, 3, 4, 4, true), rng);
  Rng xrng(91);
  Tensor x(1, 5, 5, 4);
  x.fill_uniform(xrng, -1.0F, 1.0F);
  Tensor y = block.forward(x, true);
  nn::zero_gradients(block.parameters());
  block.backward(y);
  auto params = block.parameters();
  ASSERT_EQ(params.size(), 3U);
  for (nn::Parameter* p : params) EXPECT_GT(max_abs(p->grad), 0.0F) << p->name;
}

TEST(AcNetBlock, RejectsEvenKernel) {
  Rng rng(93);
  EXPECT_THROW(AcNetBlock("b", spec(2, 2, 4, 4, false), rng), std::invalid_argument);
}

TEST(AcNetBlock, PlugsIntoSesrTopologyAndCollapses) {
  core::SesrConfig cfg;
  cfg.f = 6;
  cfg.m = 2;
  cfg.scale = 2;
  Rng rng(95);
  core::SesrNetwork net(cfg, acnet_factory(), rng, "ACNet");
  Rng xrng(97);
  Tensor x(1, 8, 8, 1);
  x.fill_uniform(xrng, 0.0F, 1.0F);
  core::SesrInference deployed(net);
  EXPECT_LT(max_abs_diff(net.forward(x, false), deployed.upscale(x)), 5e-4F);
}

TEST(Vdsr, ShapesAndParameterCount) {
  Rng rng(101);
  VdsrConfig cfg;  // full 20/64
  Vdsr net(cfg, rng);
  EXPECT_EQ(net.parameter_count(), 9 * 64 + 18 * 9 * 64 * 64 + 9 * 64);
  EXPECT_NEAR(static_cast<double>(net.parameter_count()) * 1e-3, 665.0, 5.0);  // paper: 665K
}

TEST(Vdsr, TinyConfigForwardBackwardAndResidual) {
  Rng rng(103);
  VdsrConfig cfg;
  cfg.depth = 4;
  cfg.width = 8;
  Vdsr net(cfg, rng);
  Rng xrng(107);
  Tensor x(1, 12, 12, 1);
  x.fill_uniform(xrng, 0.0F, 1.0F);
  Tensor y = net.forward(x, true);
  EXPECT_EQ(y.shape(), x.shape());
  nn::zero_gradients(net.parameters());
  net.backward(sub(y, x));
  for (nn::Parameter* p : net.parameters()) EXPECT_GT(max_abs(p->grad), 0.0F) << p->name;
  // Global residual: at Glorot init the body output is small, so y ~ x.
  EXPECT_LT(max_abs_diff(y, x), 0.5F);
}

TEST(Vdsr, UpscaleRunsBicubicPlusNetwork) {
  Rng rng(109);
  VdsrConfig cfg;
  cfg.depth = 3;
  cfg.width = 4;
  Vdsr net(cfg, rng);
  Tensor lr_img(1, 8, 8, 1);
  Rng xrng(113);
  lr_img.fill_uniform(xrng, 0.0F, 1.0F);
  Tensor hr = net.upscale(lr_img);
  EXPECT_EQ(hr.shape(), Shape(1, 16, 16, 1));
}

TEST(SequentialModel, ChainsLayersAndGradients) {
  Rng rng(41);
  SequentialModel model("seq");
  model.add(std::make_unique<nn::Conv2d>("c1", 3, 3, 1, 4, nn::Padding::kSame, false, rng));
  model.add(std::make_unique<nn::Relu>("r1"));
  model.add(std::make_unique<nn::Conv2d>("c2", 3, 3, 4, 1, nn::Padding::kSame, false, rng));
  Rng xrng(43);
  Tensor x(1, 6, 6, 1);
  x.fill_uniform(xrng, -1.0F, 1.0F);
  Tensor y = model.forward(x, true);
  EXPECT_EQ(y.shape(), x.shape());
  nn::zero_gradients(model.parameters());
  model.backward(y);
  EXPECT_EQ(model.parameters().size(), 2U);
  for (nn::Parameter* p : model.parameters()) EXPECT_GT(max_abs(p->grad), 0.0F);
}

TEST(SequentialModel, RejectsNullLayer) {
  SequentialModel model("seq");
  EXPECT_THROW(model.add(nullptr), std::invalid_argument);
}

TEST(Fsrcnn, OutputShapeAndParameterCount) {
  Rng rng(47);
  FsrcnnConfig cfg;
  auto model = make_fsrcnn(cfg, rng);
  Tensor x(1, 10, 12, 1);
  Tensor y = model->forward(x, false);
  EXPECT_EQ(y.shape(), Shape(1, 20, 24, 1));
  // 12.46K parameters (bias-free), plus PReLU slopes.
  std::int64_t conv_params = 0;
  std::int64_t prelu_params = 0;
  for (nn::Parameter* p : model->parameters()) {
    if (p->name.find("act") != std::string::npos) prelu_params += p->value.numel();
    else conv_params += p->value.numel();
  }
  EXPECT_EQ(conv_params, 12464);
  EXPECT_EQ(conv_params, fsrcnn_parameters(cfg));
  EXPECT_EQ(prelu_params, 56 + 12 + 4 * 12 + 56);
}

TEST(Fsrcnn, X4OutputShape) {
  Rng rng(53);
  FsrcnnConfig cfg;
  cfg.scale = 4;
  auto model = make_fsrcnn(cfg, rng);
  Tensor x(1, 5, 6, 1);
  Tensor y = model->forward(x, false);
  EXPECT_EQ(y.shape(), Shape(1, 20, 24, 1));
}

TEST(Fsrcnn, TrainsOnIdentityTask) {
  // A few steps on "output = bicubic-ish upscale of input" should reduce loss.
  Rng rng(59);
  FsrcnnConfig cfg;
  cfg.d = 16;
  cfg.s = 8;
  cfg.m = 2;  // shrunken for test speed
  auto model = make_fsrcnn(cfg, rng);
  Rng xrng(61);
  float first = 0.0F;
  float last = 0.0F;
  for (int step = 0; step < 80; ++step) {
    Tensor x(1, 6, 6, 1);
    x.fill_uniform(xrng, 0.0F, 1.0F);
    Tensor target(1, 12, 12, 1);
    for (std::int64_t yy = 0; yy < 12; ++yy) {
      for (std::int64_t xx = 0; xx < 12; ++xx) {
        target(0, yy, xx, 0) = x(0, yy / 2, xx / 2, 0);
      }
    }
    Tensor y = model->forward(x, true);
    Tensor diff = sub(y, target);
    const float loss = l2_norm(diff);
    if (step == 0) first = loss;
    last = loss;
    nn::zero_gradients(model->parameters());
    model->backward(scale(diff, 2.0F / static_cast<float>(diff.numel())));
    for (nn::Parameter* p : model->parameters()) axpy_inplace(p->value, p->grad, -0.1F);
  }
  EXPECT_LT(last, first * 0.8F);
}

TEST(VariantNetworks, SesrTopologyWithBaselineBlocks) {
  // The Section 5.4 variants plug into the SESR topology via factories and
  // must still collapse exactly (training graph == deployed net).
  core::SesrConfig cfg;
  cfg.f = 6;
  cfg.m = 2;
  cfg.scale = 2;
  cfg.expand = 24;
  for (const auto& [label, factory] :
       std::vector<std::pair<std::string, core::BlockFactory>>{
           {"VGG", single_conv_factory()}, {"RepVGG", repvgg_factory()}}) {
    Rng rng(67);
    core::SesrNetwork net(cfg, factory, rng, label);
    Rng xrng(71);
    Tensor x(1, 8, 8, 1);
    x.fill_uniform(xrng, 0.0F, 1.0F);
    Tensor y = net.forward(x, false);
    EXPECT_EQ(y.shape(), Shape(1, 16, 16, 1)) << label;
    core::SesrInference deployed(net);
    EXPECT_LT(max_abs_diff(y, deployed.upscale(x)), 5e-4F) << label;
    EXPECT_NE(net.name().find(label), std::string::npos);
  }
}

TEST(VariantNetworks, ExpandNetVariantDropsShortResiduals) {
  core::SesrConfig cfg;
  cfg.f = 6;
  cfg.m = 2;
  cfg.scale = 2;
  cfg.expand = 24;
  cfg.short_residuals = false;  // ExpandNet-style training (Sec 5.4)
  Rng rng(73);
  core::SesrNetwork net(cfg, rng);
  Rng xrng(79);
  Tensor x(1, 8, 8, 1);
  x.fill_uniform(xrng, 0.0F, 1.0F);
  core::SesrInference deployed(net);
  EXPECT_LT(max_abs_diff(net.forward(x, false), deployed.upscale(x)), 5e-4F);
}

}  // namespace
}  // namespace sesr::baselines
