// Tests for the differential numerical-audit subsystem (src/check): the
// error metrics, the double-precision references (cross-checked against the
// library's own naive paths), and the sweep engine itself — including the
// failure and nondeterminism detection paths, driven by synthetic pairs.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "check/audit.hpp"
#include "check/compare.hpp"
#include "check/reference.hpp"
#include "metrics/psnr.hpp"
#include "metrics/ssim.hpp"
#include "nn/conv2d.hpp"
#include "nn/depth_to_space.hpp"
#include "tensor/tensor_ops.hpp"
#include "tensor/thread_pool.hpp"

namespace sesr::check {
namespace {

TEST(Compare, UlpDistanceUnits) {
  EXPECT_EQ(ulp_distance_f32(1.0F, 1.0), 0.0);
  const float one_up = std::nextafter(1.0F, 2.0F);
  EXPECT_NEAR(ulp_distance_f32(one_up, 1.0), 1.0, 1e-9);
  const float big = 1024.0F;
  EXPECT_NEAR(ulp_distance_f32(std::nextafter(big, 2.0F * big), static_cast<double>(big)), 1.0,
              1e-9);
  // Around zero the spacing is floored at FLT_MIN, so tiny absolute noise does
  // not blow up to astronomic ULP counts.
  EXPECT_LT(ulp_distance_f32(1e-30F, 0.0), 1e10);
  // Non-finite values only match themselves.
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(ulp_distance_f32(std::numeric_limits<float>::infinity(), inf), 0.0);
  EXPECT_TRUE(std::isinf(ulp_distance_f32(1.0F, inf)));
  EXPECT_TRUE(std::isinf(ulp_distance_f32(std::numeric_limits<float>::quiet_NaN(), 1.0)));
}

TEST(Compare, TracksWorstElement) {
  const std::vector<float> got{1.0F, 2.0F, std::nextafter(3.0F, 4.0F)};
  const std::vector<double> want{1.0, 2.0, 3.0};
  const ErrorStats stats = compare_f32(got, want);
  EXPECT_EQ(stats.count, 3);
  EXPECT_EQ(stats.worst_index, 2);
  EXPECT_NEAR(stats.max_ulp, 1.0, 1e-9);
  EXPECT_GT(stats.max_abs, 0.0);
}

TEST(Compare, MergeKeepsWorstAndOffsetsIndex) {
  ErrorStats a = compare_f32(std::vector<float>{1.0F, 1.0F}, std::vector<double>{1.0, 1.0});
  const ErrorStats b =
      compare_f32(std::vector<float>{std::nextafter(2.0F, 3.0F)}, std::vector<double>{2.0});
  a.merge(b);
  EXPECT_EQ(a.count, 3);
  EXPECT_EQ(a.worst_index, 2);  // b's element 0, offset by a's count
  EXPECT_NEAR(a.max_ulp, 1.0, 1e-9);
}

TEST(Compare, HashIsBitSensitive) {
  std::vector<float> data{0.0F, 1.0F, 2.0F};
  const std::uint64_t h0 = hash_bits(data);
  data[2] = std::nextafter(2.0F, 3.0F);
  EXPECT_NE(hash_bits(data), h0);
  // -0.0f and +0.0f differ in bits, so the hash must distinguish them too.
  std::vector<float> zeros{0.0F};
  std::vector<float> neg_zeros{-0.0F};
  EXPECT_NE(hash_bits(zeros), hash_bits(neg_zeros));
}

TEST(Reference, GemmMatchesHandComputation) {
  // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
  const std::vector<float> a{1.0F, 2.0F, 3.0F, 4.0F};
  const std::vector<float> b{5.0F, 6.0F, 7.0F, 8.0F};
  const std::vector<double> c = ref_gemm(a, b, 2, 2, 2);
  EXPECT_DOUBLE_EQ(c[0], 19.0);
  EXPECT_DOUBLE_EQ(c[1], 22.0);
  EXPECT_DOUBLE_EQ(c[2], 43.0);
  EXPECT_DOUBLE_EQ(c[3], 50.0);
}

TEST(Reference, ConvMatchesLibraryNaiveConv) {
  Rng rng(3);
  Tensor x(1, 9, 7, 3);
  x.fill_uniform(rng, -1.0F, 1.0F);
  Tensor w(3, 3, 3, 4);
  w.fill_uniform(rng, -0.5F, 0.5F);
  for (const nn::Padding pad : {nn::Padding::kSame, nn::Padding::kValid}) {
    const Tensor naive = nn::conv2d_naive(x, w, pad);
    const DTensor ref = ref_conv2d(x, w, nn::conv_geometry(x, w, pad));
    ASSERT_EQ(static_cast<std::int64_t>(ref.data.size()), naive.numel());
    const ErrorStats stats = compare_f32(naive.data(), ref.data);
    EXPECT_LT(stats.max_abs, 1e-5);
  }
}

TEST(Reference, DepthToSpaceMatchesLibrary) {
  Rng rng(5);
  Tensor x(2, 3, 4, 8);
  x.fill_uniform(rng, -1.0F, 1.0F);
  const Tensor lib = nn::depth_to_space(x, 2);
  const DTensor ref = ref_depth_to_space(to_dtensor(x), 2);
  const ErrorStats stats = compare_f32(lib.data(), ref.data);
  EXPECT_EQ(stats.max_abs, 0.0);  // a permutation must be exact
  EXPECT_EQ(stats.max_ulp, 0.0);
}

TEST(Reference, MetricsAgreeWithLibrary) {
  Rng rng(7);
  Tensor a(1, 16, 16, 1);
  Tensor b(1, 16, 16, 1);
  a.fill_uniform(rng, 0.0F, 1.0F);
  b.fill_uniform(rng, 0.0F, 1.0F);
  EXPECT_NEAR(ref_psnr(a, b), metrics::psnr(a, b), 1e-9);
  EXPECT_NEAR(ref_ssim(a, b), metrics::ssim(a, b), 1e-9);
  EXPECT_DOUBLE_EQ(ref_psnr(a, a), 100.0);
  EXPECT_DOUBLE_EQ(ref_ssim(a, a), 1.0);
}

TEST(Reference, Int8ConvOverflowGuard) {
  // 1x1 spatial, huge channel count with worst-case codes: |acc| would be
  // 127 * 127 * c. Pick c so it exceeds int32 range and expect the guard.
  const std::int64_t c = 140000;  // 127^2 * 140000 ~ 2.26e9 > 2^31 - 1
  core::QuantizedTensor x;
  x.shape = Shape(1, 1, 1, c);
  x.scale = 1.0F;
  x.values.assign(static_cast<std::size_t>(c), 127);
  core::QuantizedTensor w;
  w.shape = Shape(1, 1, c, 1);
  w.scale = 1.0F;
  w.values.assign(static_cast<std::size_t>(c), 127);
  EXPECT_THROW(ref_conv2d_int8(x, w), std::overflow_error);
}

TEST(Audit, TrialSeedsAreStableAndDistinct) {
  const std::uint64_t s = trial_seed(1, "gemm_scalar", 0);
  EXPECT_EQ(trial_seed(1, "gemm_scalar", 0), s);  // deterministic
  EXPECT_NE(trial_seed(1, "gemm_scalar", 1), s);  // varies with index
  EXPECT_NE(trial_seed(1, "conv2d_striped", 0), s);  // varies with pair
  EXPECT_NE(trial_seed(2, "gemm_scalar", 0), s);  // varies with base seed
}

TEST(Audit, BuiltinRegistryCoversTheFastPaths) {
  const auto& pairs = builtin_pairs();
  EXPECT_GE(pairs.size(), 8U);
  for (const char* name :
       {"gemm_scalar", "conv2d_striped", "conv2d_winograd", "collapse_linear_block",
        "conv2d_int8", "quantized_sesr", "tiled_inference", "resize_bicubic", "ssim"}) {
    EXPECT_NE(find_pair(name), nullptr) << name;
  }
  EXPECT_EQ(find_pair("no_such_pair"), nullptr);
}

TEST(Audit, SweepPassesOnExactPair) {
  AuditOptions options;
  options.trials = 3;
  options.thread_counts = {1, 2};
  options.pair_filter = {"depth_to_space"};
  const auto reports = run_audit(options);
  ASSERT_EQ(reports.size(), 1U);
  EXPECT_TRUE(reports[0].passed());
  EXPECT_EQ(reports[0].trials_run, 3);
  EXPECT_TRUE(all_passed(reports));
}

TEST(Audit, ReplayReproducesTheSweepTrial) {
  const AuditPair* pair = find_pair("conv2d_striped");
  ASSERT_NE(pair, nullptr);
  const std::uint64_t seed = trial_seed(0x5E5A0D17ULL, pair->name, 0);
  const PairReport a = replay_trial(*pair, seed, {1});
  const PairReport b = replay_trial(*pair, seed, {1});
  EXPECT_EQ(a.worst.max_abs, b.worst.max_abs);
  EXPECT_EQ(a.worst.max_ulp, b.worst.max_ulp);
  EXPECT_EQ(a.worst_detail, b.worst_detail);
}

TEST(Audit, ViolationIsReportedWithSeed) {
  // Synthetic pair that always exceeds both tolerances.
  AuditPair bad;
  bad.name = "synthetic_bad";
  bad.tol_abs = 1e-6;
  bad.tol_ulp = 1.0;
  bad.trial = [](std::uint64_t) {
    TrialResult r;
    r.stats = compare_f32(std::vector<float>{1.5F}, std::vector<double>{1.0});
    r.detail = "synthetic";
    r.output_hash = 42;
    return r;
  };
  const PairReport report = replay_trial(bad, 777, {1});
  EXPECT_FALSE(report.passed());
  ASSERT_EQ(report.failures.size(), 1U);
  EXPECT_EQ(report.failures[0].seed, 777ULL);
}

TEST(Audit, PassRequiresExceedingBothTolerances) {
  // Exceeds the ULP tolerance but not the absolute one -> still a pass.
  AuditPair pair;
  pair.name = "synthetic_abs_ok";
  pair.tol_abs = 1.0;
  pair.tol_ulp = 0.5;
  pair.trial = [](std::uint64_t) {
    TrialResult r;
    r.stats = compare_f32(std::vector<float>{std::nextafter(1.0F, 2.0F)},
                          std::vector<double>{1.0});
    return r;
  };
  EXPECT_TRUE(replay_trial(pair, 1, {1}).passed());
}

TEST(Audit, DetectsThreadCountNondeterminism) {
  // Synthetic pair whose "optimized output" depends on the pool width — the
  // exact defect the cross-thread-count hash check exists to catch.
  AuditPair pair;
  pair.name = "synthetic_nondet";
  pair.tol_abs = 1.0;
  pair.tol_ulp = 1e9;
  pair.trial = [](std::uint64_t) {
    TrialResult r;
    const float v = static_cast<float>(ThreadPool::global().worker_count());
    const std::vector<float> out{v};
    r.stats = compare_f32(out, std::vector<double>{static_cast<double>(v)});
    r.output_hash = hash_bits(out);
    return r;
  };
  const PairReport report = replay_trial(pair, 9, {1, 4});
  EXPECT_FALSE(report.passed());
  ASSERT_EQ(report.nondeterministic_seeds.size(), 1U);
  EXPECT_EQ(report.nondeterministic_seeds[0], 9ULL);
}

TEST(Audit, SkippedTrialsDoNotFail) {
  AuditPair pair;
  pair.name = "synthetic_skip";
  pair.trial = [](std::uint64_t) {
    TrialResult r;
    r.skipped = true;
    return r;
  };
  const PairReport report = replay_trial(pair, 3, {1});
  EXPECT_TRUE(report.passed());
  EXPECT_EQ(report.trials_run, 0);
  EXPECT_EQ(report.trials_skipped, 1);
}

TEST(Audit, RestoresGlobalThreadPoolWidth) {
  const unsigned original_width = ThreadPool::global().worker_count() + 1;
  ThreadPool::set_global_threads(3);
  AuditOptions options;
  options.trials = 1;
  options.thread_counts = {1, 2};
  options.pair_filter = {"depth_to_space"};
  run_audit(options);
  EXPECT_EQ(ThreadPool::global().worker_count(), 2U);  // width 3 = 2 workers + caller
  ThreadPool::set_global_threads(original_width);
}

}  // namespace
}  // namespace sesr::check
