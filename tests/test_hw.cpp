// Tests for the NPU performance simulator: IR construction and accounting,
// roofline behavior, cascade fusion, the Table 3 mechanism (FSRCNN's
// bandwidth-bound inversion), and tiling arithmetic.
#include <gtest/gtest.h>

#include "core/macs.hpp"
#include "hw/network_ir.hpp"
#include "hw/npu_simulator.hpp"

namespace sesr::hw {
namespace {

TEST(NetworkIr, SesrMacsMatchAnalyticFormula) {
  const core::SesrConfig cfg = core::sesr_m5(2);
  const NetworkIr ir = sesr_ir(cfg, 1080, 1920);
  EXPECT_EQ(ir.total_macs(), core::sesr_macs(cfg, 1080, 1920).macs);
  EXPECT_EQ(ir.total_parameters(), core::sesr_parameter_count(cfg));
}

TEST(NetworkIr, SesrX4MacsMatchAnalyticFormula) {
  const core::SesrConfig cfg = core::sesr_m5(4);
  const NetworkIr ir = sesr_ir(cfg, 1080, 1920);
  EXPECT_EQ(ir.total_macs(), core::sesr_macs(cfg, 1080, 1920).macs);
}

TEST(NetworkIr, FsrcnnMacsMatchAnalyticFormula) {
  const NetworkIr ir = fsrcnn_ir(1080, 1920, 2);
  EXPECT_EQ(ir.total_macs(), core::fsrcnn_macs(1080, 1920, 2).macs);
  EXPECT_EQ(ir.total_parameters(), core::fsrcnn_parameter_count());
}

TEST(NetworkIr, LayerGeometryChains) {
  const NetworkIr ir = fsrcnn_ir(100, 200, 2);
  const LayerDesc& deconv = ir.layers.back();
  EXPECT_EQ(deconv.kind, OpKind::kConvTranspose);
  EXPECT_EQ(deconv.out_h(), 200);
  EXPECT_EQ(deconv.out_w(), 400);
  EXPECT_EQ(deconv.out_c, 1);
}

TEST(NetworkIr, WithInputRescalesEveryLayer) {
  const NetworkIr ir = sesr_ir(core::sesr_m5(2), 1080, 1920);
  const NetworkIr tile = ir.with_input(300, 400);
  EXPECT_EQ(tile.layers.front().in_h, 300);
  EXPECT_EQ(tile.layers.back().in_h, 300);     // shuffle consumes LR geometry
  EXPECT_EQ(tile.layers.back().out_h(), 600);  // and emits HR
  EXPECT_EQ(tile.total_macs(), core::sesr_macs(core::sesr_m5(2), 300, 400).macs);
}

TEST(NetworkIr, VdsrRunsAtHighResolution) {
  const NetworkIr ir = vdsr_ir(360, 640, 2);
  // VDSR body at HR: ~612.6 GMACs to produce 720p (the paper's number).
  EXPECT_NEAR(static_cast<double>(ir.total_macs()) * 1e-9, 612.6, 15.0);
  EXPECT_NEAR(static_cast<double>(ir.total_parameters()) * 1e-3, 665.0, 25.0);
}

TEST(NetworkIr, GenericResidualHitsMacBudget) {
  const std::int64_t target = 91'200'000'000;  // CARN-M's Table 1 budget
  const NetworkIr ir = generic_residual_ir("CARN-M-like", 360, 640, 2, 64, target);
  const double ratio = static_cast<double>(ir.total_macs()) / static_cast<double>(target);
  EXPECT_GT(ratio, 0.8);
  EXPECT_LT(ratio, 1.2);
}

TEST(Simulator, RuntimeMonotoneInWork) {
  const NpuConfig cfg = ethos_n78_like();
  const PerfReport small = simulate(sesr_ir(core::sesr_m3(2), 540, 960), cfg);
  const PerfReport large = simulate(sesr_ir(core::sesr_m11(2), 1080, 1920), cfg);
  EXPECT_GT(large.runtime_ms, small.runtime_ms);
  EXPECT_GT(small.fps, large.fps);
}

TEST(Simulator, ComputeTimeLowerBound) {
  // Runtime can never beat the pure-compute roofline.
  const NpuConfig cfg = ethos_n78_like();
  const NetworkIr ir = sesr_ir(core::sesr_m5(2), 1080, 1920);
  const PerfReport r = simulate(ir, cfg);
  const double compute_ms = static_cast<double>(ir.total_macs()) / cfg.macs_per_second() * 1e3;
  EXPECT_GE(r.runtime_ms, compute_ms * 0.999);
}

TEST(Simulator, NarrowNetFusesWideNetFractures) {
  // The heart of Table 3: 16-channel SESR streams end-to-end (single or few
  // cascades, low DRAM traffic); FSRCNN's 56-channel maps + 9x9 deconv break
  // fusion and go DRAM-bound.
  const NpuConfig cfg = ethos_n78_like();
  const PerfReport sesr =
      simulate(sesr_ir(core::hardware_variant(core::sesr_m5(2)), 1080, 1920), cfg);
  const PerfReport fsrcnn = simulate(fsrcnn_ir(1080, 1920, 2), cfg);
  EXPECT_LT(sesr.cascades.size(), fsrcnn.cascades.size());
  EXPECT_LT(sesr.dram_traffic_mb, fsrcnn.dram_traffic_mb / 5.0);
}

TEST(Simulator, Table3RuntimeInversionReproduced) {
  // Paper Table 3: SESR-M5 has ~2x fewer MACs than FSRCNN but ~6.15x lower
  // runtime (both x2, 1080p -> 4K). Assert the inversion with a generous band.
  const NpuConfig cfg = ethos_n78_like();
  const PerfReport sesr =
      simulate(sesr_ir(core::hardware_variant(core::sesr_m5(2)), 1080, 1920), cfg);
  const PerfReport fsrcnn = simulate(fsrcnn_ir(1080, 1920, 2), cfg);
  const double mac_ratio = static_cast<double>(fsrcnn.macs) / static_cast<double>(sesr.macs);
  const double runtime_ratio = fsrcnn.runtime_ms / sesr.runtime_ms;
  EXPECT_NEAR(mac_ratio, 1.93, 0.1);          // 54G / 28G
  EXPECT_GT(runtime_ratio, 4.0);              // paper: 6.15x
  EXPECT_LT(runtime_ratio, 9.0);
  EXPECT_GT(runtime_ratio, mac_ratio * 2.0);  // the inversion itself
}

TEST(Simulator, ResidualAddsCostTraffic) {
  // The standard SESR (with long residuals) must move more DRAM bytes than the
  // hardware variant — the paper's motivation for dropping the input residual.
  const NpuConfig cfg = ethos_n78_like();
  const PerfReport standard = simulate(sesr_ir(core::sesr_m5(2), 1080, 1920), cfg);
  const PerfReport hw = simulate(sesr_ir(core::hardware_variant(core::sesr_m5(2)), 1080, 1920), cfg);
  EXPECT_GT(standard.dram_traffic_mb, hw.dram_traffic_mb);
}

TEST(Simulator, BigModelsAreSub3Fps) {
  // Fig. 1(b): VDSR-class models achieve < 3 FPS for 1080p -> 4K on the
  // 4-TOP/s NPU.
  const NpuConfig cfg = ethos_n78_like();
  const PerfReport vdsr = simulate(vdsr_ir(1080, 1920, 2), cfg);
  EXPECT_LT(vdsr.fps, 3.0);
}

TEST(Simulator, EnergyModelSplitsComputeAndDram) {
  const NpuConfig cfg = ethos_n78_like();
  const PerfReport sesr =
      simulate(sesr_ir(core::hardware_variant(core::sesr_m5(2)), 1080, 1920), cfg);
  const PerfReport fsrcnn = simulate(fsrcnn_ir(1080, 1920, 2), cfg);
  EXPECT_NEAR(sesr.energy_mj, sesr.energy_compute_mj + sesr.energy_dram_mj, 1e-9);
  EXPECT_GT(sesr.energy_mj, 0.0);
  // Fused SESR is compute-dominated; fractured FSRCNN is DRAM-dominated.
  EXPECT_GT(sesr.energy_compute_mj, sesr.energy_dram_mj);
  EXPECT_GT(fsrcnn.energy_dram_mj, fsrcnn.energy_compute_mj);
  // And FSRCNN burns several times the energy per frame.
  EXPECT_GT(fsrcnn.energy_mj, 2.0 * sesr.energy_mj);
}

TEST(Simulator, EmptyNetworkThrows) {
  NetworkIr empty;
  empty.name = "empty";
  EXPECT_THROW(simulate(empty, ethos_n78_like()), std::invalid_argument);
}

TEST(Tiling, PaperTileCountIs17_28) {
  const NpuConfig cfg = ethos_n78_like();
  const NetworkIr full = sesr_ir(core::hardware_variant(core::sesr_m5(2)), 1080, 1920);
  const TiledReport r = simulate_tiled(full, 300, 400, cfg);
  EXPECT_NEAR(r.tile_count, 17.28, 1e-9);
  EXPECT_NEAR(r.total_runtime_ms, r.tile.runtime_ms * 17.28, 1e-9);
}

TEST(Tiling, TileMacsMatchPaperRow) {
  const NpuConfig cfg = ethos_n78_like();
  const NetworkIr full = sesr_ir(core::hardware_variant(core::sesr_m5(2)), 1080, 1920);
  const TiledReport r = simulate_tiled(full, 300, 400, cfg);
  EXPECT_NEAR(static_cast<double>(r.tile.macs) * 1e-9, 1.62, 0.01);  // Table 3
}

TEST(Tiling, TilingReducesPerTileDram) {
  const NpuConfig cfg = ethos_n78_like();
  const NetworkIr full = fsrcnn_ir(1080, 1920, 2);
  const PerfReport whole = simulate(full, cfg);
  const TiledReport tiled = simulate_tiled(full, 300, 400, cfg);
  // Per-frame traffic with tiling is lower: tiles fuse where the full frame
  // could not.
  EXPECT_LT(tiled.tile.dram_traffic_mb * tiled.tile_count, whole.dram_traffic_mb);
}

TEST(Tiling, TilingSpeedsUpFracturedNetworks) {
  // FSRCNN fractures at full frame (deconv line-buffer overflow); 400x300
  // tiles restore fusion, so the tiled frame beats the untiled frame.
  const NpuConfig cfg = ethos_n78_like();
  const NetworkIr full = fsrcnn_ir(1080, 1920, 2);
  const PerfReport whole = simulate(full, cfg);
  const TiledReport tiled = simulate_tiled(full, 300, 400, cfg, /*halo=*/4);
  EXPECT_LT(tiled.total_runtime_ms, whole.runtime_ms * 0.7);
}

TEST(Tiling, HaloAddsOverhead) {
  const NpuConfig cfg = ethos_n78_like();
  const NetworkIr full = sesr_ir(core::hardware_variant(core::sesr_m5(2)), 1080, 1920);
  const TiledReport no_halo = simulate_tiled(full, 300, 400, cfg, 0);
  const TiledReport halo = simulate_tiled(full, 300, 400, cfg, 8);
  EXPECT_GT(halo.total_runtime_ms, no_halo.total_runtime_ms);
  EXPECT_THROW(simulate_tiled(full, 0, 400, cfg), std::invalid_argument);
}

TEST(Tiling, X4RowMatchesPaperMacs) {
  const NpuConfig cfg = ethos_n78_like();
  const NetworkIr full = sesr_ir(core::hardware_variant(core::sesr_m5(4)), 1080, 1920);
  const TiledReport r = simulate_tiled(full, 300, 400, cfg);
  EXPECT_NEAR(static_cast<double>(r.tile.macs) * 1e-9, 2.19, 0.01);  // Table 3 x4 tile
}

}  // namespace
}  // namespace sesr::hw
