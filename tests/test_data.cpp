// Tests for the data pipeline: bicubic resize, image I/O, color conversion,
// procedural synthesis, benchmark sets, and LR/HR patch sampling.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "data/augment.hpp"
#include "data/benchmark_sets.hpp"
#include "data/color.hpp"
#include "data/dataset.hpp"
#include "data/image_io.hpp"
#include "data/resize.hpp"
#include "data/synthetic.hpp"
#include "tensor/tensor_ops.hpp"

namespace sesr::data {
namespace {

TEST(CubicKernel, KeysProperties) {
  EXPECT_DOUBLE_EQ(cubic_kernel(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cubic_kernel(1.0), 0.0);
  EXPECT_DOUBLE_EQ(cubic_kernel(2.0), 0.0);
  EXPECT_DOUBLE_EQ(cubic_kernel(2.5), 0.0);
  EXPECT_DOUBLE_EQ(cubic_kernel(-0.5), cubic_kernel(0.5));  // even
  EXPECT_LT(cubic_kernel(1.5), 0.0);                        // negative lobe
}

TEST(Resize, PreservesConstantImages) {
  Tensor x(1, 8, 8, 1);
  x.fill(0.37F);
  Tensor up = upscale_bicubic(x, 2);
  EXPECT_EQ(up.shape(), Shape(1, 16, 16, 1));
  for (float v : up.data()) EXPECT_NEAR(v, 0.37F, 1e-5F);
  Tensor down = downscale_bicubic(x, 2);
  for (float v : down.data()) EXPECT_NEAR(v, 0.37F, 1e-5F);
}

TEST(Resize, PreservesLinearRamps) {
  // Bicubic reproduces degree-1 polynomials away from the borders.
  Tensor x(1, 16, 16, 1);
  for (std::int64_t y = 0; y < 16; ++y) {
    for (std::int64_t i = 0; i < 16; ++i) x(0, y, i, 0) = static_cast<float>(i) / 16.0F;
  }
  Tensor up = resize_bicubic(x, 16, 32);
  for (std::int64_t i = 8; i < 24; ++i) {
    // Input pixel centers map to output centers: x_out = (i + 0.5)/2 - 0.5.
    const float expected = ((static_cast<float>(i) + 0.5F) / 2.0F - 0.5F) / 16.0F;
    EXPECT_NEAR(up(0, 8, i, 0), expected, 5e-3F) << "column " << i;
  }
}

TEST(Resize, DownThenUpApproximatesIdentityOnSmooth) {
  Rng rng(3);
  Tensor smooth = gaussian_blur(plasma_noise(32, 32, 0.5, rng), 2.0);
  Tensor cycled = upscale_bicubic(downscale_bicubic(smooth, 2), 2);
  // Smooth content survives a x2 round trip with small error.
  double err = 0.0;
  for (std::int64_t i = 0; i < smooth.numel(); ++i) {
    err += std::fabs(static_cast<double>(smooth.raw()[i]) - cycled.raw()[i]);
  }
  EXPECT_LT(err / static_cast<double>(smooth.numel()), 0.02);
}

TEST(Resize, RejectsIndivisibleDownscale) {
  Tensor x(1, 9, 8, 1);
  EXPECT_THROW(downscale_bicubic(x, 2), std::invalid_argument);
}

TEST(Resize, GoldenRampUpscaleMatchesMatlabConvention) {
  // Precomputed in double with the MATLAB imresize convention (Keys a = -0.5,
  // pixel centers, symmetric mirror boundary, taps folded before
  // normalization) for the width-8 ramp k/8 upscaled x2. The first/last two
  // values reach mirrored taps two pixels past the border; the pre-fix
  // replicate-style boundary got exactly those entries wrong (~3e-3 off).
  constexpr double kGolden[16] = {
      -0.011718750000, 0.022460937500, 0.090820312500, 0.156250000000,
      0.218750000000,  0.281250000000, 0.343750000000,  0.406250000000,
      0.468750000000,  0.531250000000, 0.593750000000,  0.656250000000,
      0.718750000000,  0.784179687500, 0.852539062500,  0.886718750000};
  Tensor x(1, 1, 8, 1);
  for (std::int64_t k = 0; k < 8; ++k) x(0, 0, k, 0) = static_cast<float>(k) / 8.0F;
  const Tensor up = resize_bicubic(x, 1, 16);
  for (std::int64_t i = 0; i < 16; ++i) {
    EXPECT_NEAR(up(0, 0, i, 0), kGolden[i], 1e-5) << "column " << i;
  }
}

TEST(Resize, GoldenRampDownscaleMatchesMatlabConvention) {
  // Same convention, width-16 ramp k/16 downscaled x2 with antialiasing (the
  // LR-generation path); border values again pin the mirror-fold behaviour.
  constexpr double kGolden[8] = {0.028076171875, 0.155517578125, 0.281250000000,
                                 0.406250000000, 0.531250000000, 0.656250000000,
                                 0.781982421875, 0.909423828125};
  Tensor x(1, 1, 16, 1);
  for (std::int64_t k = 0; k < 16; ++k) x(0, 0, k, 0) = static_cast<float>(k) / 16.0F;
  const Tensor down = resize_bicubic(x, 1, 8);
  for (std::int64_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(down(0, 0, i, 0), kGolden[i], 1e-5) << "column " << i;
  }
}

TEST(ImageIo, PgmRoundTrip) {
  Rng rng(5);
  Tensor img(1, 6, 9, 1);
  img.fill_uniform(rng, 0.0F, 1.0F);
  const auto path = (std::filesystem::temp_directory_path() / "sesr_t.pgm").string();
  write_pnm(path, img);
  Tensor back = read_pnm(path);
  EXPECT_EQ(back.shape(), img.shape());
  EXPECT_LT(max_abs_diff(back, img), 1.0F / 255.0F + 1e-4F);  // 8-bit quantization
  std::filesystem::remove(path);
}

TEST(ImageIo, PpmRoundTrip) {
  Rng rng(7);
  Tensor img(1, 4, 5, 3);
  img.fill_uniform(rng, 0.0F, 1.0F);
  const auto path = (std::filesystem::temp_directory_path() / "sesr_t.ppm").string();
  write_pnm(path, img);
  Tensor back = read_pnm(path);
  EXPECT_EQ(back.shape(), img.shape());
  EXPECT_LT(max_abs_diff(back, img), 1.0F / 255.0F + 1e-4F);
  std::filesystem::remove(path);
}

TEST(ImageIo, HeaderCommentsAreSkipped) {
  const auto path = (std::filesystem::temp_directory_path() / "sesr_comment.pgm").string();
  {
    std::ofstream os(path, std::ios::binary);
    os << "P5\n# a comment line\n2 2\n# another\n255\n";
    const unsigned char px[4] = {0, 85, 170, 255};
    os.write(reinterpret_cast<const char*>(px), 4);
  }
  Tensor img = read_pnm(path);
  EXPECT_EQ(img.shape(), Shape(1, 2, 2, 1));
  EXPECT_NEAR(img(0, 0, 1, 0), 85.0F / 255.0F, 1e-6F);
  EXPECT_NEAR(img(0, 1, 1, 0), 1.0F, 1e-6F);
  std::filesystem::remove(path);
}

TEST(ImageIo, RejectsBadShapesAndFiles) {
  Tensor bad(1, 2, 2, 2);
  EXPECT_THROW(write_pnm("/tmp/x.pnm", bad), std::invalid_argument);
  EXPECT_THROW(read_pnm("/nonexistent/no.pgm"), std::runtime_error);
}

TEST(Color, YcbcrRoundTrip) {
  Rng rng(11);
  Tensor rgb(1, 4, 4, 3);
  rgb.fill_uniform(rng, 0.0F, 1.0F);
  Tensor back = ycbcr_to_rgb(rgb_to_ycbcr(rgb));
  EXPECT_LT(max_abs_diff(rgb, back), 1e-3F);
}

TEST(Color, GrayInputsHaveFlatChroma) {
  Tensor rgb(1, 2, 2, 3);
  rgb.fill(0.5F);
  Tensor ycc = rgb_to_ycbcr(rgb);
  EXPECT_NEAR(ycc(0, 0, 0, 0), 0.5F, 1e-5F);
  EXPECT_NEAR(ycc(0, 0, 0, 1), 0.5F, 1e-5F);
  EXPECT_NEAR(ycc(0, 0, 0, 2), 0.5F, 1e-5F);
}

TEST(Color, ExtractYMatchesLumaWeights) {
  Tensor rgb(1, 1, 1, 3);
  rgb(0, 0, 0, 0) = 1.0F;  // pure red
  Tensor y = extract_y(rgb);
  EXPECT_NEAR(y(0, 0, 0, 0), 0.299F, 1e-5F);
  Tensor gray(1, 2, 2, 1);
  gray.fill(0.3F);
  EXPECT_EQ(max_abs_diff(extract_y(gray), gray), 0.0F);
}

TEST(Synthetic, AllFamiliesProduceValidImages) {
  for (const ImageFamily fam : {ImageFamily::kObjects, ImageFamily::kNatural, ImageFamily::kUrban,
                                ImageFamily::kLineArt}) {
    Rng rng(static_cast<std::uint64_t>(fam) + 100);
    Tensor img = synthesize_image(fam, 48, 64, rng);
    EXPECT_EQ(img.shape(), Shape(1, 48, 64, 1));
    for (float v : img.data()) {
      EXPECT_GE(v, 0.0F);
      EXPECT_LE(v, 1.0F);
    }
    // Images must carry actual content (non-constant).
    EXPECT_GT(max_abs(sub(img, Tensor(img.shape(), std::vector<float>(
                                                       static_cast<std::size_t>(img.numel()),
                                                       mean(img))))),
              0.02F) << to_string(fam);
  }
}

TEST(Synthetic, DeterministicForFixedSeed) {
  Rng a(42);
  Rng b(42);
  Tensor ia = synthesize_image(ImageFamily::kUrban, 32, 32, a);
  Tensor ib = synthesize_image(ImageFamily::kUrban, 32, 32, b);
  EXPECT_EQ(max_abs_diff(ia, ib), 0.0F);
}

TEST(Synthetic, PlasmaNoiseInRangeAndRough) {
  Rng rng(13);
  Tensor p = plasma_noise(33, 47, 0.6, rng);
  EXPECT_EQ(p.shape(), Shape(1, 33, 47, 1));
  float lo = 1.0F;
  float hi = 0.0F;
  for (float v : p.data()) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_NEAR(lo, 0.0F, 1e-5F);
  EXPECT_NEAR(hi, 1.0F, 1e-5F);
}

TEST(Synthetic, GaussianBlurReducesVariance) {
  Rng rng(17);
  Tensor noisy(1, 24, 24, 1);
  noisy.fill_uniform(rng, 0.0F, 1.0F);
  Tensor blurred = gaussian_blur(noisy, 1.5);
  auto variance = [](const Tensor& t) {
    const float mu = mean(t);
    double acc = 0.0;
    for (float v : t.data()) acc += (v - mu) * (v - mu);
    return acc / static_cast<double>(t.numel());
  };
  EXPECT_LT(variance(blurred), variance(noisy) * 0.3);
  // Blur preserves the mean (kernel sums to 1, reflect padding).
  EXPECT_NEAR(mean(blurred), mean(noisy), 0.01F);
}

TEST(Synthetic, MinimumSizeEnforced) {
  Rng rng(19);
  EXPECT_THROW(synthesize_image(ImageFamily::kObjects, 8, 8, rng), std::invalid_argument);
}

TEST(BenchmarkSets, SixSetsWithExpectedNames) {
  const auto sets = make_benchmark_sets(48, /*reduced=*/true);
  ASSERT_EQ(sets.size(), 6U);
  EXPECT_EQ(sets[0].name, "Set5");
  EXPECT_EQ(sets[5].name, "DIV2K");
  for (const auto& set : sets) {
    EXPECT_FALSE(set.hr.empty());
    for (const Tensor& img : set.hr) EXPECT_EQ(img.shape(), Shape(1, 48, 48, 1));
  }
}

TEST(BenchmarkSets, DeterministicAcrossCalls) {
  const auto a = make_benchmark_set("Urban100", 48, true);
  const auto b = make_benchmark_set("Urban100", 48, true);
  ASSERT_EQ(a.hr.size(), b.hr.size());
  for (std::size_t i = 0; i < a.hr.size(); ++i) {
    EXPECT_EQ(max_abs_diff(a.hr[i], b.hr[i]), 0.0F);
  }
}

TEST(BenchmarkSets, UnknownNameThrows) {
  EXPECT_THROW(make_benchmark_set("Set99", 48, true), std::invalid_argument);
  EXPECT_THROW(make_benchmark_sets(30, true), std::invalid_argument);  // not /4
}

TEST(Dataset, SampleBatchShapesAndRange) {
  Rng rng(23);
  SrDataset ds = SrDataset::synthetic_corpus(4, 48, 48, 2, rng);
  Rng batch_rng(29);
  auto [lr, hr] = ds.sample_batch(3, 12, batch_rng);
  EXPECT_EQ(lr.shape(), Shape(3, 12, 12, 1));
  EXPECT_EQ(hr.shape(), Shape(3, 24, 24, 1));
  for (float v : hr.data()) {
    EXPECT_GE(v, 0.0F);
    EXPECT_LE(v, 1.0F);
  }
}

TEST(Dataset, LrIsBicubicDownscaleOfHr) {
  Rng rng(31);
  SrDataset ds = SrDataset::synthetic_corpus(2, 32, 32, 2, rng);
  auto [lr, hr] = ds.image_pair(0);
  EXPECT_EQ(lr.shape(), Shape(1, 16, 16, 1));
  Tensor expected = downscale_bicubic(hr, 2);
  EXPECT_EQ(max_abs_diff(lr, expected), 0.0F);
}

TEST(Dataset, RejectsBadConfigs) {
  Rng rng(37);
  EXPECT_THROW(SrDataset({}, 2), std::invalid_argument);
  std::vector<Tensor> imgs;
  imgs.emplace_back(1, 33, 32, 1);  // not divisible by 2
  EXPECT_THROW(SrDataset(std::move(imgs), 2), std::invalid_argument);
  SrDataset ds = SrDataset::synthetic_corpus(1, 32, 32, 2, rng);
  Rng batch_rng(41);
  EXPECT_THROW(ds.sample_batch(1, 64, batch_rng), std::invalid_argument);  // crop too large
}

TEST(Augment, InverseUndoesEveryTransform) {
  Rng rng(51);
  Tensor img(1, 6, 9, 2);
  img.fill_uniform(rng, 0.0F, 1.0F);
  for (int i = 0; i < 8; ++i) {
    Tensor t = dihedral_transform(img, i);
    Tensor back = dihedral_inverse(t, i);
    EXPECT_EQ(back.shape(), img.shape()) << "index " << i;
    EXPECT_EQ(max_abs_diff(back, img), 0.0F) << "index " << i;
  }
}

TEST(Augment, TransformsAreDistinct) {
  // On an asymmetric image all 8 dihedral variants differ pairwise.
  Tensor img(1, 4, 4, 1);
  for (std::int64_t y = 0; y < 4; ++y) {
    for (std::int64_t x = 0; x < 4; ++x) img(0, y, x, 0) = static_cast<float>(y * 4 + x);
  }
  for (int i = 0; i < 8; ++i) {
    for (int j = i + 1; j < 8; ++j) {
      EXPECT_GT(max_abs_diff(dihedral_transform(img, i), dihedral_transform(img, j)), 0.0F)
          << i << " vs " << j;
    }
  }
}

TEST(Augment, IdentityIsIndexZero) {
  Rng rng(53);
  Tensor img(1, 5, 7, 1);
  img.fill_uniform(rng, 0.0F, 1.0F);
  EXPECT_EQ(max_abs_diff(dihedral_transform(img, 0), img), 0.0F);
}

TEST(Augment, PairGetsSameTransform) {
  // Downscale-then-transform == transform-then-downscale for flips, so the
  // augmented pair must stay consistent: check via a flip-invariant statistic
  // and via direct reconstruction for a known seed.
  Rng rng(57);
  Tensor hr(1, 8, 8, 1);
  hr.fill_uniform(rng, 0.0F, 1.0F);
  Tensor lr(1, 4, 4, 1);
  lr.fill_uniform(rng, 0.0F, 1.0F);
  Rng arng(3);
  auto [alr, ahr] = augment_pair(lr, hr, arng);
  // Whatever index was drawn, some index must map both back simultaneously.
  bool matched = false;
  for (int i = 0; i < 8; ++i) {
    if (max_abs_diff(dihedral_inverse(alr, i), lr) == 0.0F &&
        max_abs_diff(dihedral_inverse(ahr, i), hr) == 0.0F) {
      matched = true;
      break;
    }
  }
  EXPECT_TRUE(matched);
}

TEST(Augment, RejectsBadIndex) {
  Tensor img(1, 2, 2, 1);
  EXPECT_THROW(dihedral_transform(img, 8), std::invalid_argument);
  EXPECT_THROW(dihedral_inverse(img, -1), std::invalid_argument);
}

TEST(Dataset, X4PatchAlignment) {
  Rng rng(43);
  SrDataset ds = SrDataset::synthetic_corpus(2, 64, 64, 4, rng);
  Rng batch_rng(47);
  auto [lr, hr] = ds.sample_batch(2, 8, batch_rng);
  EXPECT_EQ(lr.shape(), Shape(2, 8, 8, 1));
  EXPECT_EQ(hr.shape(), Shape(2, 32, 32, 1));
}

}  // namespace
}  // namespace sesr::data
