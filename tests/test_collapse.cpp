// Property tests for the collapse algebra (paper Algorithms 1 and 2): the core
// correctness claims of the whole method.
//
// Invariant 1 (Algorithm 1): convolving with the collapsed kernel equals
// running the expanded sequence, for every kernel geometry in the SESR + NAS
// search space (odd, even, asymmetric; 1-, 2- and 3-layer sequences).
// Invariant 2 (Algorithm 2): adding the residual kernel W_R equals adding the
// block input.
// Invariant 3: collapse_backward is the exact adjoint of the (linear) collapse.
#include <gtest/gtest.h>

#include <array>
#include <tuple>

#include "core/collapse.hpp"
#include "nn/conv2d.hpp"
#include "nn/init.hpp"
#include "tensor/tensor_ops.hpp"

namespace sesr::core {
namespace {

TEST(ComposedExtent, Formula) {
  const std::array<std::int64_t, 2> a{5, 1};
  EXPECT_EQ(composed_kernel_extent(a), 5);
  const std::array<std::int64_t, 2> b{3, 3};
  EXPECT_EQ(composed_kernel_extent(b), 5);
  const std::array<std::int64_t, 3> c{3, 1, 3};
  EXPECT_EQ(composed_kernel_extent(c), 5);
  const std::array<std::int64_t, 1> d{7};
  EXPECT_EQ(composed_kernel_extent(d), 7);
}

// (kh, kw, in_c, mid_c, out_c) for the standard linear block: k x k then 1 x 1.
class LinearBlockGeometry
    : public ::testing::TestWithParam<std::tuple<int, int, int, int, int>> {};

TEST_P(LinearBlockGeometry, CollapsedConvEqualsExpandedSequence) {
  const auto [kh, kw, in_c, mid_c, out_c] = GetParam();
  Rng rng(kh * 1009 + kw * 101 + in_c * 11 + mid_c + out_c);
  Tensor w1 = nn::he_normal_kernel(kh, kw, in_c, mid_c, rng);
  Tensor w2 = nn::he_normal_kernel(1, 1, mid_c, out_c, rng);
  const std::array<Tensor, 2> weights{w1, w2};
  Tensor wc = collapse_conv_sequence(weights);
  EXPECT_EQ(wc.shape(), Shape(kh, kw, in_c, out_c));

  Tensor x(2, 9, 8, in_c);
  x.fill_uniform(rng, -1.0F, 1.0F);
  Tensor expanded = nn::conv2d(nn::conv2d(x, w1, nn::Padding::kSame), w2, nn::Padding::kSame);
  Tensor collapsed = nn::conv2d(x, wc, nn::Padding::kSame);
  EXPECT_LT(max_abs_diff(expanded, collapsed), 2e-4F)
      << "k=" << kh << "x" << kw << " " << in_c << "->" << mid_c << "->" << out_c;
}

INSTANTIATE_TEST_SUITE_P(
    Space, LinearBlockGeometry,
    ::testing::Values(std::make_tuple(5, 5, 1, 64, 16),   // SESR first block
                      std::make_tuple(3, 3, 16, 64, 16),  // SESR middle block
                      std::make_tuple(5, 5, 16, 64, 4),   // SESR last block (x2)
                      std::make_tuple(5, 5, 16, 64, 16),  // x4 head shape
                      std::make_tuple(1, 1, 8, 32, 8),    // NAS: 1x1
                      std::make_tuple(2, 2, 8, 32, 8),    // NAS: even
                      std::make_tuple(2, 1, 8, 32, 8),    // NAS: asymmetric
                      std::make_tuple(3, 2, 12, 48, 12),  // NAS: asymmetric
                      std::make_tuple(2, 3, 12, 48, 12),
                      std::make_tuple(7, 7, 2, 16, 3)));  // beyond the paper's sizes

TEST(Collapse, ThreeLayerSequence) {
  // 3x3 * 3x3 * 1x1 collapses to a 5x5 kernel that matches the triple conv.
  Rng rng(77);
  Tensor w1 = nn::he_normal_kernel(3, 3, 4, 16, rng);
  Tensor w2 = nn::he_normal_kernel(3, 3, 16, 8, rng);
  Tensor w3 = nn::he_normal_kernel(1, 1, 8, 4, rng);
  const std::array<Tensor, 3> weights{w1, w2, w3};
  Tensor wc = collapse_conv_sequence(weights);
  EXPECT_EQ(wc.shape(), Shape(5, 5, 4, 4));
  Tensor x(1, 10, 10, 4);
  x.fill_uniform(rng, -1.0F, 1.0F);
  Tensor expanded = nn::conv2d(
      nn::conv2d(nn::conv2d(x, w1, nn::Padding::kSame), w2, nn::Padding::kSame), w3,
      nn::Padding::kSame);
  Tensor collapsed = nn::conv2d(x, wc, nn::Padding::kSame);
  // SAME-padded composition differs from the collapsed conv only within the
  // (composed) border; compare the interior.
  Tensor interior_a = crop_spatial(expanded, 2, 2, 6, 6);
  Tensor interior_b = crop_spatial(collapsed, 2, 2, 6, 6);
  EXPECT_LT(max_abs_diff(interior_a, interior_b), 2e-4F);
}

TEST(Collapse, SingleLayerIsIdentityOperation) {
  Rng rng(78);
  Tensor w = nn::he_normal_kernel(3, 3, 2, 5, rng);
  const std::array<Tensor, 1> weights{w};
  Tensor wc = collapse_conv_sequence(weights);
  EXPECT_LT(max_abs_diff(w, wc), 1e-6F);
}

TEST(Collapse, ChannelMismatchThrows) {
  Rng rng(79);
  Tensor w1 = nn::he_normal_kernel(3, 3, 2, 4, rng);
  Tensor w2 = nn::he_normal_kernel(1, 1, 5, 2, rng);  // 5 != 4
  const std::array<Tensor, 2> weights{w1, w2};
  EXPECT_THROW(collapse_conv_sequence(weights), std::invalid_argument);
}

TEST(Collapse, EmptySequenceThrows) {
  const std::vector<Tensor> empty;
  EXPECT_THROW(collapse_conv_sequence(empty), std::invalid_argument);
}

TEST(ResidualKernel, ActsAsIdentity) {
  Rng rng(81);
  Tensor x(1, 6, 6, 4);
  x.fill_uniform(rng, -1.0F, 1.0F);
  Tensor wr = residual_kernel(3, 3, 4);
  Tensor y = nn::conv2d(x, wr, nn::Padding::kSame);
  EXPECT_LT(max_abs_diff(x, y), 1e-6F);
}

TEST(ResidualKernel, FoldEqualsExplicitAdd) {
  // conv(x, W_C + W_R) == conv(x, W_C) + x — the exact Algorithm 2 claim.
  Rng rng(83);
  for (std::int64_t k : {3, 5}) {
    Tensor wc = nn::he_normal_kernel(k, k, 6, 6, rng);
    Tensor folded = wc;
    add_residual_identity(folded);
    Tensor x(1, 7, 9, 6);
    x.fill_uniform(rng, -1.0F, 1.0F);
    Tensor lhs = nn::conv2d(x, folded, nn::Padding::kSame);
    Tensor rhs = add(nn::conv2d(x, wc, nn::Padding::kSame), x);
    EXPECT_LT(max_abs_diff(lhs, rhs), 1e-5F) << "k=" << k;
  }
}

TEST(ResidualKernel, RejectsNonSquareChannels) {
  Rng rng(85);
  Tensor w = nn::he_normal_kernel(3, 3, 4, 8, rng);
  EXPECT_THROW(add_residual_identity(w), std::invalid_argument);
}

TEST(ResidualKernel, RejectsEvenKernels) {
  Rng rng(86);
  Tensor w = nn::he_normal_kernel(2, 2, 4, 4, rng);
  EXPECT_THROW(add_residual_identity(w), std::invalid_argument);
}

TEST(CollapseBackward, IsExactAdjoint) {
  // The collapse C(w1, w2) is linear in each weight; its backward must satisfy
  // <C(w1+d1, w2) - C(w1, w2), g> == <d1, grad_w1> for infinitesimal d (here:
  // exactly, by linearity, for any d in w1 with w2 fixed, and vice versa).
  Rng rng(91);
  Tensor w1 = nn::he_normal_kernel(3, 3, 4, 16, rng);
  Tensor w2 = nn::he_normal_kernel(1, 1, 16, 4, rng);
  const std::array<Tensor, 2> weights{w1, w2};
  CollapseCache cache;
  Tensor wc = collapse_conv_sequence_cached(weights, cache);

  Tensor g(wc.shape());
  g.fill_uniform(rng, -1.0F, 1.0F);
  std::array<Tensor, 2> grads{w1.zeros_like(), w2.zeros_like()};
  collapse_backward(g, weights, cache, grads);

  // Directional derivative in w1.
  Tensor d1(w1.shape());
  d1.fill_uniform(rng, -1.0F, 1.0F);
  Tensor w1p = add(w1, d1);
  const std::array<Tensor, 2> weights_p{w1p, w2};
  Tensor wcp = collapse_conv_sequence(weights_p);
  double lhs = 0.0;
  for (std::int64_t i = 0; i < wc.numel(); ++i) {
    lhs += static_cast<double>(wcp.raw()[i] - wc.raw()[i]) * g.raw()[i];
  }
  double rhs = 0.0;
  for (std::int64_t i = 0; i < d1.numel(); ++i) {
    rhs += static_cast<double>(d1.raw()[i]) * grads[0].raw()[i];
  }
  EXPECT_NEAR(lhs, rhs, 1e-2 * std::max(1.0, std::abs(lhs)));

  // Directional derivative in w2.
  Tensor d2(w2.shape());
  d2.fill_uniform(rng, -1.0F, 1.0F);
  Tensor w2p = add(w2, d2);
  const std::array<Tensor, 2> weights_q{w1, w2p};
  Tensor wcq = collapse_conv_sequence(weights_q);
  double lhs2 = 0.0;
  for (std::int64_t i = 0; i < wc.numel(); ++i) {
    lhs2 += static_cast<double>(wcq.raw()[i] - wc.raw()[i]) * g.raw()[i];
  }
  double rhs2 = 0.0;
  for (std::int64_t i = 0; i < d2.numel(); ++i) {
    rhs2 += static_cast<double>(d2.raw()[i]) * grads[1].raw()[i];
  }
  EXPECT_NEAR(lhs2, rhs2, 1e-2 * std::max(1.0, std::abs(lhs2)));
}

TEST(CollapseBias, MatchesExpandedBiasPropagation) {
  // conv_bias(conv_bias(x, w1, b1), w2, b2) == conv_bias(x, W_C, B_C).
  Rng rng(93);
  Tensor w1 = nn::he_normal_kernel(3, 3, 3, 8, rng);
  Tensor w2 = nn::he_normal_kernel(1, 1, 8, 3, rng);
  Tensor b1(1, 1, 1, 8);
  Tensor b2(1, 1, 1, 3);
  b1.fill_uniform(rng, -0.5F, 0.5F);
  b2.fill_uniform(rng, -0.5F, 0.5F);
  const std::array<Tensor, 2> weights{w1, w2};
  const std::array<Tensor, 2> biases{b1, b2};
  Tensor wc = collapse_conv_sequence(weights);
  Tensor bc = collapse_bias_sequence(weights, biases);

  Tensor x(1, 6, 6, 3);
  x.fill_uniform(rng, -1.0F, 1.0F);
  Tensor expanded = nn::conv2d_bias(nn::conv2d_bias(x, w1, b1, nn::Padding::kSame), w2, b2,
                                    nn::Padding::kSame);
  Tensor collapsed = nn::conv2d_bias(x, wc, bc, nn::Padding::kSame);
  EXPECT_LT(max_abs_diff(expanded, collapsed), 1e-4F);
}

TEST(CollapseBiasBackward, IsExactAdjoint) {
  Rng rng(95);
  Tensor w1 = nn::he_normal_kernel(3, 3, 2, 6, rng);
  Tensor w2 = nn::he_normal_kernel(1, 1, 6, 2, rng);
  Tensor b1(1, 1, 1, 6);
  Tensor b2(1, 1, 1, 2);
  b1.fill_uniform(rng, -0.5F, 0.5F);
  b2.fill_uniform(rng, -0.5F, 0.5F);
  const std::array<Tensor, 2> weights{w1, w2};
  const std::array<Tensor, 2> biases{b1, b2};
  Tensor bc = collapse_bias_sequence(weights, biases);

  Tensor g(bc.shape());
  g.fill_uniform(rng, -1.0F, 1.0F);
  std::array<Tensor, 2> gw{w1.zeros_like(), w2.zeros_like()};
  std::array<Tensor, 2> gb{b1.zeros_like(), b2.zeros_like()};
  collapse_bias_backward(g, weights, biases, gw, gb);

  // Check d(bias)/d(b1) via directional derivative (linear in b1).
  Tensor d(b1.shape());
  d.fill_uniform(rng, -1.0F, 1.0F);
  const std::array<Tensor, 2> biases_p{add(b1, d), b2};
  Tensor bcp = collapse_bias_sequence(weights, biases_p);
  double lhs = 0.0;
  for (std::int64_t i = 0; i < bc.numel(); ++i) {
    lhs += static_cast<double>(bcp.raw()[i] - bc.raw()[i]) * g.raw()[i];
  }
  double rhs = 0.0;
  for (std::int64_t i = 0; i < d.numel(); ++i) {
    rhs += static_cast<double>(d.raw()[i]) * gb[0].raw()[i];
  }
  EXPECT_NEAR(lhs, rhs, 1e-3 * std::max(1.0, std::abs(lhs)));

  // d(bias)/d(w2): finite difference on one sampled weight entry.
  constexpr float kEps = 1e-3F;
  auto bias_loss = [&](Tensor& w, std::int64_t idx, float delta) {
    w.raw()[idx] += delta;
    const std::array<Tensor, 2> ws{w1, w2};
    Tensor b = collapse_bias_sequence(ws, biases);
    w.raw()[idx] -= delta;
    double acc = 0.0;
    for (std::int64_t i = 0; i < b.numel(); ++i) {
      acc += static_cast<double>(b.raw()[i]) * g.raw()[i];
    }
    return acc;
  };
  for (std::int64_t i = 0; i < w2.numel(); i += 4) {
    const double numeric = (bias_loss(w2, i, kEps) - bias_loss(w2, i, -kEps)) / (2.0 * kEps);
    EXPECT_NEAR(gw[1].raw()[i], numeric, 5e-2) << "w2 index " << i;
  }
}

}  // namespace
}  // namespace sesr::core
