// Tests for the SESR network graph and its collapsed inference form:
// shapes, whole-network collapse exactness (training graph == deployed
// VGG-like net), x4 double depth-to-space, hardware variant, checkpointing.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/sesr_inference.hpp"
#include "core/sesr_network.hpp"
#include "core/macs.hpp"
#include "core/two_stage_x4.hpp"
#include "tensor/tensor_ops.hpp"
#include "train/loss.hpp"
#include "train/optimizer.hpp"

namespace sesr::core {
namespace {

SesrConfig tiny_config(std::int64_t scale, BlockMode mode) {
  SesrConfig c;
  c.f = 6;
  c.m = 2;
  c.scale = scale;
  c.expand = 24;
  c.mode = mode;
  return c;
}

TEST(SesrNetwork, OutputShapeX2) {
  Rng rng(1);
  SesrNetwork net(tiny_config(2, BlockMode::kCollapsedForward), rng);
  Tensor x(2, 8, 10, 1);
  Tensor y = net.forward(x, false);
  EXPECT_EQ(y.shape(), Shape(2, 16, 20, 1));
}

TEST(SesrNetwork, OutputShapeX4UsesDoubleShuffle) {
  Rng rng(2);
  SesrNetwork net(tiny_config(4, BlockMode::kCollapsedForward), rng);
  Tensor x(1, 6, 5, 1);
  Tensor y = net.forward(x, false);
  EXPECT_EQ(y.shape(), Shape(1, 24, 20, 1));
}

TEST(SesrNetwork, RejectsMultiChannelInput) {
  Rng rng(3);
  SesrNetwork net(tiny_config(2, BlockMode::kCollapsedForward), rng);
  Tensor x(1, 8, 8, 3);
  EXPECT_THROW(net.forward(x, false), std::invalid_argument);
}

TEST(SesrNetwork, RejectsBadScale) {
  Rng rng(4);
  SesrConfig c = tiny_config(3, BlockMode::kExpanded);
  EXPECT_THROW(SesrNetwork(c, rng), std::invalid_argument);
}

TEST(SesrNetwork, ModesAgreeOnForward) {
  Rng rng_a(7);
  Rng rng_b(7);
  SesrNetwork a(tiny_config(2, BlockMode::kExpanded), rng_a);
  SesrNetwork b(tiny_config(2, BlockMode::kCollapsedForward), rng_b);
  Rng xrng(9);
  Tensor x(1, 8, 8, 1);
  x.fill_uniform(xrng, 0.0F, 1.0F);
  EXPECT_LT(max_abs_diff(a.forward(x, false), b.forward(x, false)), 5e-4F);
}

TEST(SesrNetwork, ModesAgreeOnGradients) {
  Rng rng_a(11);
  Rng rng_b(11);
  SesrNetwork a(tiny_config(2, BlockMode::kExpanded), rng_a);
  SesrNetwork b(tiny_config(2, BlockMode::kCollapsedForward), rng_b);
  Rng xrng(13);
  Tensor x(1, 6, 6, 1);
  x.fill_uniform(xrng, 0.0F, 1.0F);
  Tensor g(1, 12, 12, 1);
  g.fill_uniform(xrng, -1.0F, 1.0F);

  a.forward(x, true);
  nn::zero_gradients(a.parameters());
  a.backward(g);
  b.forward(x, true);
  nn::zero_gradients(b.parameters());
  b.backward(g);

  auto pa = a.parameters();
  auto pb = b.parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_LT(max_abs_diff(pa[i]->grad, pb[i]->grad), 1e-2F) << pa[i]->name;
  }
}

TEST(SesrNetwork, GradientsNonZeroEverywhere) {
  Rng rng(17);
  SesrNetwork net(tiny_config(2, BlockMode::kCollapsedForward), rng);
  Rng xrng(19);
  Tensor x(1, 8, 8, 1);
  x.fill_uniform(xrng, 0.0F, 1.0F);
  Tensor y = net.forward(x, true);
  nn::zero_gradients(net.parameters());
  Tensor g(y.shape());
  g.fill_uniform(xrng, -1.0F, 1.0F);
  net.backward(g);
  for (nn::Parameter* p : net.parameters()) {
    EXPECT_GT(max_abs(p->grad), 0.0F) << p->name << " got no gradient";
  }
}

TEST(SesrNetwork, NamedConfigsMatchPaper) {
  EXPECT_EQ(sesr_m5().m, 5);
  EXPECT_EQ(sesr_m5().f, 16);
  EXPECT_EQ(sesr_xl().f, 32);
  EXPECT_EQ(sesr_xl().m, 11);
  EXPECT_EQ(sesr_m3(4).scale, 4);
  const SesrConfig hw = hardware_variant(sesr_m5());
  EXPECT_FALSE(hw.prelu);
  EXPECT_FALSE(hw.input_residual);
  EXPECT_TRUE(sesr_m5().prelu);
}

TEST(SesrNetwork, InputResidualChangesOutput) {
  Rng rng_a(23);
  Rng rng_b(23);
  SesrConfig with = tiny_config(2, BlockMode::kCollapsedForward);
  SesrConfig without = with;
  without.input_residual = false;
  SesrNetwork a(with, rng_a);
  SesrNetwork b(without, rng_b);
  Rng xrng(29);
  Tensor x(1, 6, 6, 1);
  x.fill_uniform(xrng, 0.5F, 1.0F);  // strictly positive input
  Tensor ya = a.forward(x, false);
  Tensor yb = b.forward(x, false);
  EXPECT_GT(max_abs_diff(ya, yb), 1e-3F);
}

TEST(SesrInference, MatchesTrainingGraphX2) {
  Rng rng(31);
  SesrNetwork net(tiny_config(2, BlockMode::kCollapsedForward), rng);
  SesrInference deployed(net);
  Rng xrng(37);
  Tensor x(1, 9, 7, 1);
  x.fill_uniform(xrng, 0.0F, 1.0F);
  EXPECT_LT(max_abs_diff(net.forward(x, false), deployed.upscale(x)), 5e-4F);
}

TEST(SesrInference, MatchesTrainingGraphX4) {
  Rng rng(41);
  SesrNetwork net(tiny_config(4, BlockMode::kExpanded), rng);
  SesrInference deployed(net);
  Rng xrng(43);
  Tensor x(1, 5, 6, 1);
  x.fill_uniform(xrng, 0.0F, 1.0F);
  EXPECT_LT(max_abs_diff(net.forward(x, false), deployed.upscale(x)), 5e-4F);
}

TEST(SesrInference, MatchesAfterTrainingSteps) {
  // Collapse must remain exact after the weights have moved (trained state).
  Rng rng(47);
  SesrNetwork net(tiny_config(2, BlockMode::kCollapsedForward), rng);
  train::Adam adam(1e-3F);
  Rng xrng(53);
  for (int step = 0; step < 5; ++step) {
    Tensor x(1, 8, 8, 1);
    x.fill_uniform(xrng, 0.0F, 1.0F);
    Tensor target(1, 16, 16, 1);
    target.fill_uniform(xrng, 0.0F, 1.0F);
    nn::zero_gradients(net.parameters());
    Tensor y = net.forward(x, true);
    auto loss = train::l1_loss(y, target);
    net.backward(loss.grad);
    adam.step(net.parameters());
  }
  SesrInference deployed(net);
  Tensor x(1, 8, 8, 1);
  x.fill_uniform(xrng, 0.0F, 1.0F);
  EXPECT_LT(max_abs_diff(net.forward(x, false), deployed.upscale(x)), 5e-4F);
}

TEST(SesrInference, HardwareVariantUsesRelu) {
  Rng rng(59);
  SesrConfig cfg = hardware_variant(tiny_config(2, BlockMode::kCollapsedForward));
  SesrNetwork net(cfg, rng);
  SesrInference deployed(net);
  Rng xrng(61);
  Tensor x(1, 8, 8, 1);
  x.fill_uniform(xrng, 0.0F, 1.0F);
  EXPECT_LT(max_abs_diff(net.forward(x, false), deployed.upscale(x)), 5e-4F);
}

TEST(SesrInference, ParameterCountMatchesFormula) {
  Rng rng(67);
  SesrNetwork net(sesr_m5(2), rng);
  SesrInference deployed(net);
  EXPECT_EQ(deployed.parameter_count(), 13520);
  EXPECT_EQ(net.collapsed_parameter_count(), 13520);
}

TEST(SesrInference, CheckpointRoundTrip) {
  Rng rng(71);
  SesrNetwork net(tiny_config(2, BlockMode::kCollapsedForward), rng);
  SesrInference deployed(net);
  const std::string path =
      (std::filesystem::temp_directory_path() / "sesr_inference.ckpt").string();
  save_tensors(path, deployed.to_tensor_map());
  SesrInference restored(load_tensors(path));
  EXPECT_EQ(restored.config().f, deployed.config().f);
  EXPECT_EQ(restored.config().m, deployed.config().m);
  Rng xrng(73);
  Tensor x(1, 8, 8, 1);
  x.fill_uniform(xrng, 0.0F, 1.0F);
  EXPECT_EQ(max_abs_diff(restored.upscale(x), deployed.upscale(x)), 0.0F);
  std::filesystem::remove(path);
}

TEST(TwoStageX4, OutputShape) {
  Rng rng(81);
  SesrTwoStageX4 net(6, 2, 24, rng);
  Tensor x(1, 7, 9, 1);
  Tensor y = net.forward(x, false);
  EXPECT_EQ(y.shape(), Shape(1, 28, 36, 1));
}

TEST(TwoStageX4, ParameterAndMacAccounting) {
  Rng rng(83);
  SesrTwoStageX4 net(16, 5, 256, rng);
  // body: 25*16 + 5*9*256 + head1 25*16*64 + head2 25*16*4.
  const std::int64_t expected =
      25 * 16 + 5 * 9 * 16 * 16 + 25 * 16 * 64 + 25 * 16 * 4;
  EXPECT_EQ(net.collapsed_parameter_count(), expected);
  // MACs: body+head1 at 1x, head2 at 2x resolution.
  const std::int64_t body = 25 * 16 + 5 * 9 * 16 * 16 + 25 * 16 * 64;
  EXPECT_EQ(net.collapsed_macs(10, 20), 10 * 20 * body + (2 * 10) * (2 * 20) * (25 * 16 * 4));
  // More MACs than the paper's one-shot head — the cost the paper avoids.
  EXPECT_GT(net.collapsed_macs(180, 320), core::sesr_macs(core::sesr_m5(4), 180, 320).macs);
}

TEST(TwoStageX4, GradientsFlowEverywhere) {
  Rng rng(85);
  SesrTwoStageX4 net(4, 1, 16, rng);
  Rng xrng(87);
  Tensor x(1, 6, 6, 1);
  x.fill_uniform(xrng, 0.0F, 1.0F);
  Tensor y = net.forward(x, true);
  nn::zero_gradients(net.parameters());
  Tensor g(y.shape());
  g.fill_uniform(xrng, -1.0F, 1.0F);
  net.backward(g);
  for (nn::Parameter* p : net.parameters()) {
    EXPECT_GT(max_abs(p->grad), 0.0F) << p->name;
  }
}

TEST(TwoStageX4, TrainsWithSharedHarness) {
  Rng rng(89);
  SesrTwoStageX4 net(4, 1, 16, rng);
  train::Adam adam(1e-3F);
  Rng xrng(91);
  float first = -1.0F;
  float last = 0.0F;
  for (int step = 0; step < 30; ++step) {
    Tensor x(1, 6, 6, 1);
    x.fill_uniform(xrng, 0.0F, 1.0F);
    Tensor target(1, 24, 24, 1);
    for (std::int64_t yy = 0; yy < 24; ++yy) {
      for (std::int64_t xx = 0; xx < 24; ++xx) target(0, yy, xx, 0) = x(0, yy / 4, xx / 4, 0);
    }
    nn::zero_gradients(net.parameters());
    Tensor y = net.forward(x, true);
    auto loss = train::l1_loss(y, target);
    net.backward(loss.grad);
    adam.step(net.parameters());
    if (first < 0.0F) first = loss.value;
    last = loss.value;
  }
  EXPECT_LT(last, first);
}

TEST(SesrInference, MissingConfigThrows) {
  TensorMap empty;
  EXPECT_THROW(SesrInference{empty}, std::runtime_error);
}

}  // namespace
}  // namespace sesr::core
