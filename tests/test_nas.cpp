// Tests for the NAS subsystem: search-space validity, genome operators,
// candidate networks (shape, collapse-compatible residual rules), latency
// oracle consistency, and a smoke run of the evolutionary search.
#include <gtest/gtest.h>

#include "data/dataset.hpp"
#include "nas/candidate_network.hpp"
#include "nas/dnas.hpp"
#include "nas/evolution.hpp"
#include "nas/search_space.hpp"
#include "tensor/tensor_ops.hpp"

namespace sesr::nas {
namespace {

TEST(SearchSpace, MenusContainPaperKernels) {
  const auto& menu = block_kernel_menu();
  auto contains = [&](std::int64_t kh, std::int64_t kw) {
    for (const KernelChoice& k : menu) {
      if (k.kh == kh && k.kw == kw) return true;
    }
    return false;
  };
  // Fig. 9(b) uses 2x2, 2x1, 2x3, 3x2 and 3x3 kernels.
  EXPECT_TRUE(contains(2, 2));
  EXPECT_TRUE(contains(2, 1));
  EXPECT_TRUE(contains(2, 3));
  EXPECT_TRUE(contains(3, 2));
  EXPECT_TRUE(contains(3, 3));
}

TEST(SearchSpace, RandomGenomeRespectsBounds) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const Genome g = random_genome(2, 2, 8, rng);
    EXPECT_GE(static_cast<std::int64_t>(g.blocks.size()), 2);
    EXPECT_LE(static_cast<std::int64_t>(g.blocks.size()), 8);
    EXPECT_EQ(g.scale, 2);
    EXPECT_GT(g.f, 0);
  }
}

TEST(SearchSpace, ParameterCountFormula) {
  Genome g;
  g.f = 16;
  g.scale = 2;
  g.first = {5, 5};
  g.last = {5, 5};
  g.blocks = {{3, 3}, {3, 3}, {3, 3}, {3, 3}, {3, 3}};
  // This genome IS SESR-M5: the counts must agree.
  EXPECT_EQ(g.parameter_count(), 13520);
}

TEST(SearchSpace, MutationStaysInSpace) {
  Rng rng(3);
  Genome g = random_genome(2, 2, 8, rng);
  for (int i = 0; i < 200; ++i) {
    g = mutate(g, rng, 2, 8);
    EXPECT_GE(static_cast<std::int64_t>(g.blocks.size()), 2);
    EXPECT_LE(static_cast<std::int64_t>(g.blocks.size()), 8);
  }
}

TEST(SearchSpace, CrossoverMixesParents) {
  Rng rng(5);
  Genome a = random_genome(2, 4, 4, rng);
  Genome b = random_genome(2, 4, 4, rng);
  const Genome c = crossover(a, b, rng);
  EXPECT_GE(c.blocks.size(), 1U);
  EXPECT_TRUE(c.f == a.f || c.f == b.f);
}

TEST(SearchSpace, GenomeIrAccounting) {
  Genome g;
  g.f = 16;
  g.scale = 2;
  g.blocks = {{3, 3}, {2, 2}, {3, 2}};
  const hw::NetworkIr ir = genome_ir(g, 100, 100);
  EXPECT_EQ(ir.total_parameters(), g.parameter_count());
  EXPECT_EQ(ir.total_macs(), 100 * 100 * g.parameter_count());
}

TEST(CandidateNetwork, ForwardShapeWithMixedKernels) {
  Genome g;
  g.f = 8;
  g.scale = 2;
  g.first = {3, 3};
  g.last = {5, 5};
  g.blocks = {{2, 2}, {3, 2}, {1, 1}};
  Rng rng(7);
  CandidateNetwork net(g, 16, rng);
  Tensor x(1, 10, 12, 1);
  Tensor y = net.forward(x, false);
  EXPECT_EQ(y.shape(), Shape(1, 20, 24, 1));
  EXPECT_EQ(net.collapsed_parameter_count(), g.parameter_count());
}

TEST(CandidateNetwork, GradientsFlowThroughMixedKernels) {
  Genome g;
  g.f = 6;
  g.scale = 2;
  g.first = {3, 3};
  g.last = {3, 3};
  g.blocks = {{2, 3}, {3, 3}};
  Rng rng(9);
  CandidateNetwork net(g, 12, rng);
  Rng xrng(11);
  Tensor x(1, 8, 8, 1);
  x.fill_uniform(xrng, 0.0F, 1.0F);
  Tensor y = net.forward(x, true);
  nn::zero_gradients(net.parameters());
  Tensor grad(y.shape());
  grad.fill_uniform(xrng, -1.0F, 1.0F);
  net.backward(grad);
  for (nn::Parameter* p : net.parameters()) {
    EXPECT_GT(max_abs(p->grad), 0.0F) << p->name;
  }
}

TEST(LatencyOracle, MonotoneInDepth) {
  const hw::NpuConfig npu = hw::ethos_n78_like();
  Genome shallow;
  shallow.f = 16;
  shallow.blocks = std::vector<KernelChoice>(3, KernelChoice{3, 3});
  Genome deep = shallow;
  deep.blocks.assign(9, KernelChoice{3, 3});
  EXPECT_LT(candidate_latency_ms(shallow, npu, 200, 200),
            candidate_latency_ms(deep, npu, 200, 200));
}

TEST(LatencyOracle, MonotoneInWidth) {
  const hw::NpuConfig npu = hw::ethos_n78_like();
  Genome narrow;
  narrow.f = 8;
  narrow.blocks = std::vector<KernelChoice>(5, KernelChoice{3, 3});
  Genome wide = narrow;
  wide.f = 32;
  EXPECT_LT(candidate_latency_ms(narrow, npu, 200, 200),
            candidate_latency_ms(wide, npu, 200, 200));
}

TEST(LatencyOracle, SmallerKernelsAreFaster) {
  const hw::NpuConfig npu = hw::ethos_n78_like();
  Genome big;
  big.f = 16;
  big.scale = 2;
  big.blocks = std::vector<KernelChoice>(5, KernelChoice{3, 3});
  Genome small = big;
  small.blocks = std::vector<KernelChoice>(5, KernelChoice{2, 2});
  const double lat_big = candidate_latency_ms(big, npu, 200, 200);
  const double lat_small = candidate_latency_ms(small, npu, 200, 200);
  EXPECT_LT(lat_small, lat_big);
}

TEST(Evolution, SmokeRunFindsFeasibleCandidate) {
  Rng rng(13);
  data::SrDataset dataset = data::SrDataset::synthetic_corpus(3, 32, 32, 2, rng);
  const hw::NpuConfig npu = hw::ethos_n78_like();

  SearchOptions options;
  options.population = 4;
  options.generations = 2;
  options.keep_top = 1;
  options.proxy_steps = 6;
  options.proxy_expand = 16;
  options.proxy_batch = 2;
  options.proxy_crop = 8;
  options.eval_images = 1;
  options.min_depth = 2;
  options.max_depth = 4;
  options.latency_h = 64;
  options.latency_w = 64;
  // A permissive budget so the tiny run can satisfy it.
  Genome reference;
  reference.f = 16;
  reference.blocks = std::vector<KernelChoice>(5, KernelChoice{3, 3});
  options.latency_limit_ms = candidate_latency_ms(reference, npu, 64, 64);

  const SearchResult result = evolutionary_search(dataset, npu, options);
  EXPECT_EQ(result.final_population.size(), 4U);
  EXPECT_TRUE(result.best.feasible);
  EXPECT_LE(result.best.latency_ms, options.latency_limit_ms);
  EXPECT_GT(result.best.psnr, 5.0);  // produced *some* reconstruction
  // Elitism: best fitness never regresses across generations.
  for (std::size_t i = 1; i < result.best_fitness_per_generation.size(); ++i) {
    EXPECT_GE(result.best_fitness_per_generation[i],
              result.best_fitness_per_generation[i - 1] - 1e-9);
  }
}

DnasOptions tiny_dnas() {
  DnasOptions o;
  o.slots = 3;
  o.f = 6;
  o.expand = 12;
  o.steps = 8;
  o.batch = 1;
  o.crop = 8;
  o.latency_h = 32;
  o.latency_w = 32;
  return o;
}

TEST(Dnas, SupernetForwardShapeAndUniformInit) {
  Rng rng(41);
  const hw::NpuConfig npu = hw::ethos_n78_like();
  DnasSupernet net(tiny_dnas(), npu, rng);
  Tensor x(1, 8, 8, 1);
  Tensor y = net.forward(x, false);
  EXPECT_EQ(y.shape(), Shape(1, 16, 16, 1));
  const auto p = net.slot_probabilities(0);
  ASSERT_EQ(p.size(), net.branch_count());
  double total = 0.0;
  for (const double v : p) {
    EXPECT_NEAR(v, 1.0 / static_cast<double>(p.size()), 1e-9);  // zero logits
    total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Dnas, BackwardPopulatesWeightAndThetaGradients) {
  Rng rng(43);
  const hw::NpuConfig npu = hw::ethos_n78_like();
  DnasSupernet net(tiny_dnas(), npu, rng);
  Rng xrng(47);
  Tensor x(1, 8, 8, 1);
  x.fill_uniform(xrng, 0.0F, 1.0F);
  Tensor y = net.forward(x, true);
  nn::zero_gradients(net.parameters());
  nn::zero_gradients(net.architecture_parameters());
  Tensor g(y.shape());
  g.fill_uniform(xrng, -1.0F, 1.0F);
  net.backward(g);
  for (nn::Parameter* p : net.parameters()) EXPECT_GT(max_abs(p->grad), 0.0F) << p->name;
  for (nn::Parameter* t : net.architecture_parameters()) {
    EXPECT_GT(max_abs(t->grad), 0.0F) << t->name;
    // Softmax Jacobian output sums to ~0 along the logits.
    EXPECT_NEAR(sum(t->grad), 0.0F, 1e-5F);
  }
}

TEST(Dnas, PureLatencyPressureSelectsSkip) {
  // With only the latency term driving theta, every slot should converge to
  // the free skip branch.
  Rng rng(53);
  const hw::NpuConfig npu = hw::ethos_n78_like();
  DnasOptions o = tiny_dnas();
  o.latency_h = o.latency_w = 200;  // realistic geometry -> meaningful latencies
  DnasSupernet net(o, npu, rng);
  auto thetas = net.architecture_parameters();
  for (int step = 0; step < 500; ++step) {
    nn::zero_gradients(thetas);
    net.accumulate_latency_gradients(/*lambda=*/200.0);
    for (nn::Parameter* t : thetas) axpy_inplace(t->value, t->grad, -0.2F);
  }
  for (std::size_t s = 0; s < 3; ++s) {
    const auto p = net.slot_probabilities(s);
    std::size_t best = 0;
    for (std::size_t k = 1; k < p.size(); ++k) {
      if (p[k] > p[best]) best = k;
    }
    EXPECT_EQ(best, p.size() - 1) << "slot " << s << ": skip is not the argmax";
    EXPECT_GT(p.back(), 0.5) << "slot " << s << " did not favor skip strongly";
  }
  const Genome g = net.decode();
  EXPECT_EQ(g.blocks.size(), 1U);  // degenerate-decode guard keeps one block
}

TEST(Dnas, SearchSmokeRunProducesValidGenome) {
  Rng rng(59);
  data::SrDataset dataset = data::SrDataset::synthetic_corpus(2, 32, 32, 2, rng);
  const hw::NpuConfig npu = hw::ethos_n78_like();
  DnasOptions o = tiny_dnas();
  o.latency_weight = 0.01;
  const DnasResult result = dnas_search(dataset, npu, o);
  EXPECT_GE(result.genome.blocks.size(), 1U);
  EXPECT_LE(result.genome.blocks.size(), 3U);
  EXPECT_GT(result.decoded_latency_ms, 0.0);
  EXPECT_GT(result.expected_latency_ms, 0.0);
  // The decoded genome must be trainable by the candidate machinery.
  Rng crng(61);
  CandidateNetwork net(result.genome, 12, crng);
  Tensor x(1, 8, 8, 1);
  EXPECT_EQ(net.forward(x, false).shape(), Shape(1, 16, 16, 1));
}

TEST(Evolution, RejectsBadOptions) {
  Rng rng(17);
  data::SrDataset dataset = data::SrDataset::synthetic_corpus(1, 32, 32, 2, rng);
  const hw::NpuConfig npu = hw::ethos_n78_like();
  SearchOptions options;
  options.latency_limit_ms = 0.0;
  EXPECT_THROW(evolutionary_search(dataset, npu, options), std::invalid_argument);
  options.latency_limit_ms = 1.0;
  options.population = 1;
  EXPECT_THROW(evolutionary_search(dataset, npu, options), std::invalid_argument);
}

}  // namespace
}  // namespace sesr::nas
