// Tests for the tools/ command-line argument parser and the sesr-serve
// option table (bad values must raise UsageError — sesr-serve turns that
// into usage text plus a nonzero exit).
#include <gtest/gtest.h>

#include "../bench/bench_common.hpp"
#include "../tools/cli_args.hpp"
#include "../tools/serve_cli.hpp"

namespace sesr::cli {
namespace {

std::vector<Args::Option> options() {
  return {
      {"steps", "100", "training steps"},
      {"lr", "5e-4", "learning rate"},
      {"name", "model", "output name"},
      {"verbose", "", "boolean flag"},
  };
}

Args parse(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return Args(options(), static_cast<int>(argv.size()),
              const_cast<char**>(argv.data()));
}

TEST(CliArgs, DefaultsApply) {
  Args args = parse({});
  EXPECT_EQ(args.get_int("steps"), 100);
  EXPECT_DOUBLE_EQ(args.get_double("lr"), 5e-4);
  EXPECT_EQ(args.get("name"), "model");
  EXPECT_FALSE(args.get_flag("verbose"));
}

TEST(CliArgs, EqualsFormParses) {
  Args args = parse({"--steps=250", "--lr=0.01", "--name=foo"});
  EXPECT_EQ(args.get_int("steps"), 250);
  EXPECT_DOUBLE_EQ(args.get_double("lr"), 0.01);
  EXPECT_EQ(args.get("name"), "foo");
}

TEST(CliArgs, SpaceFormParses) {
  Args args = parse({"--steps", "42", "--name", "bar"});
  EXPECT_EQ(args.get_int("steps"), 42);
  EXPECT_EQ(args.get("name"), "bar");
}

TEST(CliArgs, BooleanFlag) {
  Args args = parse({"--verbose"});
  EXPECT_TRUE(args.get_flag("verbose"));
  Args off = parse({"--verbose=0"});
  EXPECT_FALSE(off.get_flag("verbose"));
  Args truthy = parse({"--verbose=true"});
  EXPECT_TRUE(truthy.get_flag("verbose"));
}

TEST(CliArgs, UnknownOptionThrows) {
  EXPECT_THROW(parse({"--bogus=1"}), std::invalid_argument);
  EXPECT_THROW(parse({"--stepz", "10"}), std::invalid_argument);
}

TEST(CliArgs, PositionalArgumentsCollected) {
  Args args = parse({"input.pgm", "--steps=5", "output.pgm"});
  ASSERT_EQ(args.positional().size(), 2U);
  EXPECT_EQ(args.positional()[0], "input.pgm");
  EXPECT_EQ(args.positional()[1], "output.pgm");
  EXPECT_EQ(args.get_int("steps"), 5);
}

TEST(CliArgs, LastValueWins) {
  Args args = parse({"--steps=1", "--steps=2"});
  EXPECT_EQ(args.get_int("steps"), 2);
}

// ------------------------- sesr-serve option table ---------------------------

ServeCliConfig parse_serve(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "sesr-serve");
  const Args args(serve_cli_options(), static_cast<int>(argv.size()),
                  const_cast<char**>(argv.data()));
  return parse_serve_cli(args);
}

TEST(ServeCli, DefaultsAreServable) {
  const ServeCliConfig config = parse_serve({});
  EXPECT_EQ(config.net, "m5");
  EXPECT_EQ(config.scale, 2);
  EXPECT_EQ(config.serve.workers, 4);
  EXPECT_EQ(config.serve.max_batch, 8);
  EXPECT_EQ(config.serve.overload, serve::OverloadPolicy::kBlock);
  EXPECT_EQ(config.serve.mode, serve::ExecMode::kFullFrame);
  EXPECT_DOUBLE_EQ(config.qps, 0.0);  // closed loop
  ASSERT_EQ(config.shapes.size(), 1U);
  EXPECT_EQ(config.shapes[0].first, 64);
  EXPECT_EQ(config.shapes[0].second, 64);
}

TEST(ServeCli, ParsesFullTrafficSpec) {
  const ServeCliConfig config =
      parse_serve({"--net=m3", "--scale=4", "--workers=2", "--max-batch=4", "--policy=reject",
                   "--mode=auto", "--qps=120.5", "--shapes=64x64,128x96", "--threads=2"});
  EXPECT_EQ(config.net, "m3");
  EXPECT_EQ(config.scale, 4);
  EXPECT_EQ(config.serve.workers, 2);
  EXPECT_EQ(config.serve.overload, serve::OverloadPolicy::kReject);
  EXPECT_EQ(config.serve.mode, serve::ExecMode::kAuto);
  EXPECT_DOUBLE_EQ(config.qps, 120.5);
  ASSERT_EQ(config.shapes.size(), 2U);
  EXPECT_EQ(config.shapes[1].first, 128);
  EXPECT_EQ(config.shapes[1].second, 96);
}

TEST(ServeCli, PrecisionParses) {
  EXPECT_EQ(parse_serve({}).serve.precision, core::InferencePrecision::kFp32);
  EXPECT_EQ(parse_serve({"--precision=fp32"}).serve.precision, core::InferencePrecision::kFp32);
  EXPECT_EQ(parse_serve({"--precision=fp16"}).serve.precision, core::InferencePrecision::kFp16);
  EXPECT_EQ(parse_serve({"--precision=int8"}).serve.precision, core::InferencePrecision::kInt8);
  EXPECT_EQ(parse_serve({"--precision=hybrid"}).serve.precision,
            core::InferencePrecision::kHybrid);
  EXPECT_THROW(parse_serve({"--precision=half"}), UsageError);
}

TEST(ServeCli, BadQpsRaisesUsageError) {
  EXPECT_THROW(parse_serve({"--qps=-1"}), UsageError);
  EXPECT_THROW(parse_serve({"--qps", "-0.5"}), UsageError);
}

TEST(ServeCli, ZeroWorkersRaisesUsageError) {
  EXPECT_THROW(parse_serve({"--workers=0"}), UsageError);
  EXPECT_THROW(parse_serve({"--workers=-2"}), UsageError);
}

TEST(ServeCli, MutuallyExclusiveStopConditionsRaiseUsageError) {
  EXPECT_THROW(parse_serve({"--frames=10", "--duration-s=2"}), UsageError);
  // Each alone is fine.
  EXPECT_EQ(parse_serve({"--frames=10"}).frames, 10);
  EXPECT_DOUBLE_EQ(parse_serve({"--duration-s=2"}).duration_s, 2.0);
}

TEST(ServeCli, BadEnumsRaiseUsageError) {
  EXPECT_THROW(parse_serve({"--mode=bogus"}), UsageError);
  EXPECT_THROW(parse_serve({"--policy=maybe"}), UsageError);
  EXPECT_THROW(parse_serve({"--net=m4"}), UsageError);
  EXPECT_THROW(parse_serve({"--scale=3"}), UsageError);
}

TEST(ServeCli, BadShapesRaiseUsageError) {
  EXPECT_THROW(parse_serve({"--shapes=64"}), UsageError);
  EXPECT_THROW(parse_serve({"--shapes=64x"}), UsageError);
  EXPECT_THROW(parse_serve({"--shapes=0x64"}), UsageError);
  EXPECT_THROW(parse_serve({"--shapes=64x64,,32x32"}), UsageError);
}

TEST(ServeCli, BadBatchingKnobsRaiseUsageError) {
  EXPECT_THROW(parse_serve({"--max-batch=0"}), UsageError);
  EXPECT_THROW(parse_serve({"--max-delay-us=-1"}), UsageError);
  EXPECT_THROW(parse_serve({"--queue-capacity=0"}), UsageError);
  EXPECT_THROW(parse_serve({"--tile=0"}), UsageError);
  EXPECT_THROW(parse_serve({"--threads=0"}), UsageError);
}

TEST(ServeCli, DefaultRoutesMirrorSingleNetworkFlags) {
  const ServeCliConfig config = parse_serve({"--net=m11", "--scale=4", "--precision=fp16"});
  ASSERT_EQ(config.routes.size(), 1U);
  EXPECT_EQ(config.routes[0].network, "m11");
  EXPECT_EQ(config.routes[0].scale, 4);
  EXPECT_EQ(config.routes[0].precision, core::InferencePrecision::kFp16);
}

TEST(ServeCli, NetworksFlagParsesShardedRoutes) {
  const ServeCliConfig config = parse_serve({"--networks", "m5:2,m11:2:fp16,m3:4"});
  ASSERT_EQ(config.routes.size(), 3U);
  EXPECT_EQ(config.routes[0].network, "m5");
  EXPECT_EQ(config.routes[0].precision, core::InferencePrecision::kFp32);
  EXPECT_EQ(config.routes[1].network, "m11");
  EXPECT_EQ(config.routes[1].precision, core::InferencePrecision::kFp16);
  EXPECT_EQ(config.routes[2].network, "m3");
  EXPECT_EQ(config.routes[2].scale, 4);
}

TEST(ServeCli, BadNetworksRaiseUsageError) {
  EXPECT_THROW(parse_serve({"--networks=m5"}), UsageError);          // missing scale
  EXPECT_THROW(parse_serve({"--networks=m4:2"}), UsageError);        // unknown net
  EXPECT_THROW(parse_serve({"--networks=m5:3"}), UsageError);        // bad scale
  EXPECT_THROW(parse_serve({"--networks=m5:2:int4"}), UsageError);   // bad precision
  EXPECT_THROW(parse_serve({"--networks=m5:2,m5:2"}), UsageError);   // duplicate route
  EXPECT_THROW(parse_serve({"--networks=m5:2,,m3:2"}), UsageError);  // empty entry
}

TEST(ServeCli, CacheAndFairnessKnobsParse) {
  const ServeCliConfig defaults = parse_serve({});
  EXPECT_EQ(defaults.serve.cache_entries, 0U);
  EXPECT_EQ(defaults.unique_frames, 1);
  EXPECT_TRUE(defaults.serve.fair_tiles);
  const ServeCliConfig config =
      parse_serve({"--cache-entries=128", "--unique-frames=5", "--fair-tiles=0"});
  EXPECT_EQ(config.serve.cache_entries, 128U);
  EXPECT_EQ(config.unique_frames, 5);
  EXPECT_FALSE(config.serve.fair_tiles);
  EXPECT_THROW(parse_serve({"--cache-entries=-1"}), UsageError);
  EXPECT_THROW(parse_serve({"--unique-frames=0"}), UsageError);
}

TEST(ServeCli, VideoKnobsParse) {
  const ServeCliConfig defaults = parse_serve({});
  EXPECT_EQ(defaults.video, "none");
  EXPECT_EQ(defaults.serve.video_sessions, 64U);
  const ServeCliConfig config = parse_serve({"--video=pan", "--video-sessions=8"});
  EXPECT_EQ(config.video, "pan");
  EXPECT_EQ(config.serve.video_sessions, 8U);
  EXPECT_EQ(parse_serve({"--video=mixed"}).video, "mixed");
  EXPECT_EQ(parse_serve({"--video-sessions=0"}).serve.video_sessions, 0U);
}

TEST(ServeCli, DeploymentKnobsParse) {
  const ServeCliConfig defaults = parse_serve({});
  EXPECT_EQ(defaults.bind_address, "127.0.0.1");
  EXPECT_TRUE(defaults.auth_token.empty());  // "none" sentinel → no auth
  EXPECT_EQ(defaults.io_shards, 1);
  const ServeCliConfig config = parse_serve(
      {"--listen=0", "--bind=0.0.0.0", "--auth-token=s3cret", "--io-shards=4"});
  EXPECT_EQ(config.bind_address, "0.0.0.0");
  EXPECT_EQ(config.auth_token, "s3cret");
  EXPECT_EQ(config.io_shards, 4);
  // A client can carry a token too (it is sent with every request).
  EXPECT_EQ(parse_serve({"--connect=127.0.0.1:9", "--auth-token=s3cret"}).auth_token, "s3cret");
}

TEST(ServeCli, BadDeploymentKnobsRaiseUsageError) {
  // An open bind without a shared secret is refused outright.
  EXPECT_THROW(parse_serve({"--listen=0", "--bind=0.0.0.0"}), UsageError);
  // Loopback binds stay tokenless-friendly.
  EXPECT_EQ(parse_serve({"--listen=0", "--bind=127.0.0.1"}).bind_address, "127.0.0.1");
  // Server-only knobs outside server mode.
  EXPECT_THROW(parse_serve({"--bind=10.0.0.1", "--auth-token=x"}), UsageError);
  EXPECT_THROW(parse_serve({"--io-shards=2"}), UsageError);
  // Shard-count and bind sanity.
  EXPECT_THROW(parse_serve({"--listen=0", "--io-shards=0"}), UsageError);
  EXPECT_THROW(parse_serve({"--listen=0", "--io-shards=65"}), UsageError);
  EXPECT_THROW(parse_serve({"--listen=0", "--bind="}), UsageError);
  EXPECT_THROW(parse_serve({"--listen=65536"}), UsageError);
  const std::string oversized = "--auth-token=" + std::string(4097, 'a');
  EXPECT_THROW(parse_serve({"--listen=0", oversized.c_str()}), UsageError);
  // SLO headroom is a fraction of the budget.
  EXPECT_DOUBLE_EQ(parse_serve({"--slo-headroom=0.5"}).serve.slo.headroom, 0.5);
  EXPECT_THROW(parse_serve({"--slo-headroom=0"}), UsageError);
  EXPECT_THROW(parse_serve({"--slo-headroom=1.5"}), UsageError);
}

TEST(ServeCli, BadVideoKnobsRaiseUsageError) {
  EXPECT_THROW(parse_serve({"--video=strobe"}), UsageError);
  EXPECT_THROW(parse_serve({"--video-sessions=-1"}), UsageError);
  // Sessions replay closed-loop; an open-loop rate would only measure gaps.
  EXPECT_THROW(parse_serve({"--video=static", "--qps=30"}), UsageError);
  // The malformed chaos case never sends a video frame.
  EXPECT_THROW(parse_serve({"--video=static", "--chaos=malformed", "--connect=127.0.0.1:1"}),
               UsageError);
}

// ------------------------------ bench JSON escaping --------------------------

TEST(JsonEscape, PassesPlainStringsThrough) {
  EXPECT_EQ(bench::json_escape("workers4/batch8"), "workers4/batch8");
  EXPECT_EQ(bench::json_escape(""), "");
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(bench::json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(bench::json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(bench::json_escape("line\nbreak\ttab\r"), "line\\nbreak\\ttab\\r");
  EXPECT_EQ(bench::json_escape(std::string("nul\x01") + "x"), "nul\\u0001x");
  EXPECT_EQ(bench::json_escape("\b\f"), "\\b\\f");
}

TEST(JsonEscape, RoundTripsThroughAnUnescaper) {
  // Un-escape json_escape's output and require the original bytes back — the
  // round-trip check that catches both under- and over-escaping.
  const auto unescape = [](const std::string& s) {
    std::string out;
    for (std::size_t i = 0; i < s.size(); ++i) {
      if (s[i] != '\\') {
        out += s[i];
        continue;
      }
      ++i;
      switch (s[i]) {
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u':
          out += static_cast<char>(std::stoi(s.substr(i + 1, 4), nullptr, 16));
          i += 4;
          break;
        default: out += s[i];  // \" and \\ and anything else escaped literally
      }
    }
    return out;
  };
  const std::string nasty = "shape \"64x64\"\\path\n\ttab\x01\x1f end";
  EXPECT_EQ(unescape(bench::json_escape(nasty)), nasty);
  const std::string escaped = bench::json_escape(nasty);
  // The escaped form must contain no raw quote, backslash-run ambiguity, or
  // control bytes — i.e. it is safe inside a JSON string literal.
  for (const char c : escaped) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20U);
  }
}

}  // namespace
}  // namespace sesr::cli
