// Tests for the tools/ command-line argument parser.
#include <gtest/gtest.h>

#include "../tools/cli_args.hpp"

namespace sesr::cli {
namespace {

std::vector<Args::Option> options() {
  return {
      {"steps", "100", "training steps"},
      {"lr", "5e-4", "learning rate"},
      {"name", "model", "output name"},
      {"verbose", "", "boolean flag"},
  };
}

Args parse(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return Args(options(), static_cast<int>(argv.size()),
              const_cast<char**>(argv.data()));
}

TEST(CliArgs, DefaultsApply) {
  Args args = parse({});
  EXPECT_EQ(args.get_int("steps"), 100);
  EXPECT_DOUBLE_EQ(args.get_double("lr"), 5e-4);
  EXPECT_EQ(args.get("name"), "model");
  EXPECT_FALSE(args.get_flag("verbose"));
}

TEST(CliArgs, EqualsFormParses) {
  Args args = parse({"--steps=250", "--lr=0.01", "--name=foo"});
  EXPECT_EQ(args.get_int("steps"), 250);
  EXPECT_DOUBLE_EQ(args.get_double("lr"), 0.01);
  EXPECT_EQ(args.get("name"), "foo");
}

TEST(CliArgs, SpaceFormParses) {
  Args args = parse({"--steps", "42", "--name", "bar"});
  EXPECT_EQ(args.get_int("steps"), 42);
  EXPECT_EQ(args.get("name"), "bar");
}

TEST(CliArgs, BooleanFlag) {
  Args args = parse({"--verbose"});
  EXPECT_TRUE(args.get_flag("verbose"));
  Args off = parse({"--verbose=0"});
  EXPECT_FALSE(off.get_flag("verbose"));
  Args truthy = parse({"--verbose=true"});
  EXPECT_TRUE(truthy.get_flag("verbose"));
}

TEST(CliArgs, UnknownOptionThrows) {
  EXPECT_THROW(parse({"--bogus=1"}), std::invalid_argument);
  EXPECT_THROW(parse({"--stepz", "10"}), std::invalid_argument);
}

TEST(CliArgs, PositionalArgumentsCollected) {
  Args args = parse({"input.pgm", "--steps=5", "output.pgm"});
  ASSERT_EQ(args.positional().size(), 2U);
  EXPECT_EQ(args.positional()[0], "input.pgm");
  EXPECT_EQ(args.positional()[1], "output.pgm");
  EXPECT_EQ(args.get_int("steps"), 5);
}

TEST(CliArgs, LastValueWins) {
  Args args = parse({"--steps=1", "--steps=2"});
  EXPECT_EQ(args.get_int("steps"), 2);
}

}  // namespace
}  // namespace sesr::cli
