// Tests for the execution-plan compiler: pass-pipeline structure, the
// liveness memory planner's no-alias property, bitwise equivalence of the
// planned executor against the direct per-layer path (including stale-arena
// reuse and plan-cache eviction), arena reserve/trim, exact per-pixel
// footprints, and the scratch trim / high-water seams the serve workers use.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/plan/execution_plan.hpp"
#include "core/plan/memory_planner.hpp"
#include "core/plan/passes.hpp"
#include "core/sesr_inference.hpp"
#include "core/sesr_network.hpp"
#include "core/tiled_inference.hpp"
#include "hw/network_ir.hpp"
#include "tensor/rng.hpp"
#include "tensor/scratch.hpp"
#include "tensor/tensor.hpp"

namespace sesr::core::plan {
namespace {

Tensor random_frame(Rng& rng, std::int64_t n, std::int64_t h, std::int64_t w) {
  Tensor t(n, h, w, 1);
  t.fill_uniform(rng, 0.0F, 1.0F);
  return t;
}

void expect_bitwise(const Tensor& got, const Tensor& want) {
  ASSERT_EQ(got.numel(), want.numel());
  EXPECT_EQ(std::memcmp(got.raw(), want.raw(),
                        static_cast<std::size_t>(got.numel()) * sizeof(float)),
            0);
}

SesrConfig make_config(std::int64_t m, std::int64_t scale, bool prelu, bool input_residual,
                       bool with_bias) {
  SesrConfig config;
  config.f = 8;
  config.m = m;
  config.scale = scale;
  config.expand = 16;
  config.prelu = prelu;
  config.input_residual = input_residual;
  config.with_bias = with_bias;
  return config;
}

// A calibrated inference with a hybrid plan, so every precision is settable.
SesrInference make_inference(const SesrConfig& config, std::uint64_t seed) {
  Rng rng(seed);
  Rng init = rng.fork();
  const SesrNetwork network(config, init);
  SesrInference inference(network);
  inference.calibrate_int8({random_frame(rng, 1, 12, 12)});
  std::vector<LayerPrecision> plan(inference.convolutions().size(), LayerPrecision::kFp16);
  for (std::size_t i = 0; i < plan.size(); i += 2) plan[i] = LayerPrecision::kInt8;
  inference.set_hybrid_plan(std::move(plan));
  return inference;
}

constexpr InferencePrecision kAllPrecisions[] = {
    InferencePrecision::kFp32, InferencePrecision::kFp16, InferencePrecision::kInt8,
    InferencePrecision::kHybrid};

// ------------------------------------------------------------ memory planner

TEST(MemoryPlanner, SimultaneouslyLiveValuesNeverShareBytes) {
  Rng rng(0x51ab7e01);
  for (int trial = 0; trial < 300; ++trial) {
    const std::int64_t n = rng.uniform_int(1, 14);
    const std::int64_t horizon = rng.uniform_int(0, 12);
    std::vector<ValueInterval> intervals(static_cast<std::size_t>(n));
    std::int64_t total = 0;
    for (ValueInterval& v : intervals) {
      v.def = static_cast<int>(rng.uniform_int(0, horizon));
      v.last_use = v.def + static_cast<int>(rng.uniform_int(0, horizon - v.def));
      v.elements = rng.bernoulli(0.15) ? 0 : rng.uniform_int(1, 96);
      total += v.elements;
    }
    const MemoryPlan plan = plan_memory(intervals);
    // Fragmentation never exceeds packing everything disjointly.
    EXPECT_LE(plan.arena_elements, total);
    for (std::size_t i = 0; i < intervals.size(); ++i) {
      if (intervals[i].elements == 0) continue;
      EXPECT_LE(plan.offsets[i] + intervals[i].elements, plan.arena_elements);
      for (std::size_t j = i + 1; j < intervals.size(); ++j) {
        if (intervals[j].elements == 0) continue;
        if (!intervals_overlap(intervals[i], intervals[j])) continue;
        const bool disjoint =
            plan.offsets[i] + intervals[i].elements <= plan.offsets[j] ||
            plan.offsets[j] + intervals[j].elements <= plan.offsets[i];
        EXPECT_TRUE(disjoint) << "trial " << trial << ": values " << i << " and " << j
                              << " are live together but share arena bytes";
      }
    }
  }
}

TEST(MemoryPlanner, ArenaCoversPeakSimultaneousFootprint) {
  // Two values alive at once plus one that dies first: the survivor may reuse
  // the dead value's bytes, the concurrent one may not.
  std::vector<ValueInterval> intervals = {
      {/*elements=*/10, /*def=*/0, /*last_use=*/1},   // dies at step 1
      {/*elements=*/10, /*def=*/0, /*last_use=*/3},   // pinned across everything
      {/*elements=*/10, /*def=*/2, /*last_use=*/3},   // may reuse value 0's bytes
  };
  const MemoryPlan plan = plan_memory(intervals);
  EXPECT_EQ(plan.arena_elements, 20);
  EXPECT_EQ(plan.offsets[0], plan.offsets[2]);
}

TEST(MemoryPlanner, RejectsBackwardInterval) {
  std::vector<ValueInterval> intervals = {{/*elements=*/4, /*def=*/3, /*last_use=*/1}};
  EXPECT_THROW(plan_memory(intervals), std::invalid_argument);
}

// ------------------------------------------------------------- pass pipeline

TEST(Passes, SesrGraphFusesToConvsPlusOneShuffle) {
  for (const std::int64_t m : {std::int64_t{0}, std::int64_t{1}, std::int64_t{2},
                               std::int64_t{5}}) {
    for (const std::int64_t scale : {std::int64_t{2}, std::int64_t{4}}) {
      for (const bool input_residual : {false, true}) {
        const SesrConfig config = make_config(m, scale, true, input_residual, false);
        const hw::NetworkIr ir = hw::sesr_ir(config, 16, 20);
        const std::vector<PlanOp> ops = lower_and_fuse(ir);
        // Every activation, residual add, and chained shuffle stage fuses
        // away: m+2 convs plus exactly one depth-to-space survive.
        ASSERT_EQ(ops.size(), static_cast<std::size_t>(m + 3))
            << "m=" << m << " scale=" << scale;
        std::int64_t shuffle_factor = 1;
        for (std::size_t i = 0; i < ops.size(); ++i) {
          const PlanOp& op = ops[i];
          if (i + 1 < ops.size()) {
            EXPECT_EQ(op.kind, hw::OpKind::kConv);
          } else {
            EXPECT_EQ(op.kind, hw::OpKind::kDepthToSpace);
            for (const std::int64_t b : op.blocks) shuffle_factor *= b;
          }
          if (op.kind == hw::OpKind::kConv && i + 2 < ops.size()) {
            EXPECT_GE(op.act_index, 0) << "conv step " << i << " lost its fused activation";
          }
        }
        EXPECT_EQ(shuffle_factor, scale);
        // The long (blue) residual lands fused on the last feature conv; the
        // input (black) residual on the final conv when configured.
        EXPECT_NE(ops[static_cast<std::size_t>(m)].skip, kNoValue);
        const PlanOp& last_conv = ops[static_cast<std::size_t>(m + 1)];
        EXPECT_LT(last_conv.act_index, 0);
        EXPECT_EQ(last_conv.skip, input_residual ? kInputValue : kNoValue);
      }
    }
  }
}

TEST(Passes, ResidualSkipOntoOwnProducerBecomesSelfSkip) {
  // m = 0: the long residual's source is the same conv it fuses into; the
  // fused op must reference its own (renamed) output, never a dangling id.
  const SesrConfig config = make_config(0, 2, false, false, false);
  const std::vector<PlanOp> ops = lower_and_fuse(hw::sesr_ir(config, 8, 8));
  ASSERT_GE(ops.size(), 1U);
  EXPECT_EQ(ops[0].skip, ops[0].output);
}

// ------------------------------------------------------------ compiled plans

TEST(ExecutionPlan, LiveValuesDisjointForRandomConfigsAndPrecisions) {
  Rng rng(0xc0ffee11);
  for (int trial = 0; trial < 40; ++trial) {
    const SesrConfig config =
        make_config(rng.uniform_int(0, 3), rng.bernoulli(0.5) ? 2 : 4, rng.bernoulli(0.5),
                    rng.bernoulli(0.5), rng.bernoulli(0.5));
    SesrInference net = make_inference(config, 0x1000 + static_cast<std::uint64_t>(trial));
    net.set_precision(kAllPrecisions[rng.uniform_int(0, 3)]);
    const ExecutionPlan plan =
        ExecutionPlan::compile(net, rng.uniform_int(4, 20), rng.uniform_int(4, 20));
    const std::vector<PlanValue>& values = plan.values();
    for (std::size_t i = 0; i < values.size(); ++i) {
      const PlanValue& a = values[i];
      if (a.external || a.elements == 0) continue;
      const std::int64_t arena = a.space == ValueSpace::kFloat ? plan.float_arena_elements()
                                                               : plan.half_arena_elements();
      EXPECT_LE(a.offset + a.elements, arena);
      for (std::size_t j = i + 1; j < values.size(); ++j) {
        const PlanValue& b = values[j];
        if (b.external || b.elements == 0 || b.space != a.space) continue;
        if (a.def > b.last_use || b.def > a.last_use) continue;  // never live together
        const bool disjoint =
            a.offset + a.elements <= b.offset || b.offset + b.elements <= a.offset;
        EXPECT_TRUE(disjoint) << "trial " << trial << ": values " << i << " and " << j;
      }
    }
  }
}

TEST(ExecutionPlan, FootprintCoefficientsExactAcrossShapes) {
  SesrInference net = make_inference(make_config(2, 2, true, true, false), 7);
  for (const InferencePrecision precision : kAllPrecisions) {
    net.set_precision(precision);
    const ExecutionPlan small = ExecutionPlan::compile(net, 16, 16);
    const ExecutionPlan wide = ExecutionPlan::compile(net, 24, 40);
    const PlanFootprint fs = small.footprint();
    const PlanFootprint fw = wide.footprint();
    // Per-pixel coefficients are shape-independent and reproduce the arena
    // byte-for-byte — the registry records them per route at registration.
    EXPECT_EQ(fs.float_per_pixel, fw.float_per_pixel);
    EXPECT_EQ(fs.half_per_pixel, fw.half_per_pixel);
    EXPECT_EQ(fs.bytes(16 * 16), small.peak_activation_bytes());
    EXPECT_EQ(fw.bytes(24 * 40), wide.peak_activation_bytes());
    EXPECT_GT(fs.float_per_pixel, 0);
  }
}

TEST(ExecutionPlan, PlannedArenaBeatsSumOfLayerOutputs) {
  // The planner's whole point: the packed arena is far below materializing
  // every fused step's output at once (the direct path's steady footprint).
  SesrInference net = make_inference(make_config(5, 2, false, true, false), 11);
  const ExecutionPlan plan = ExecutionPlan::compile(net, 32, 32);
  std::int64_t direct_sum = 0;
  for (const PlanStep& step : plan.steps()) direct_sum += step.op.output_elements();
  EXPECT_LE(plan.float_arena_elements() * 2, direct_sum);
}

// ---------------------------------------------------------- planned executor

TEST(PlannedExecutor, BitIdenticalToDirectAllPrecisions) {
  SesrInference planned = make_inference(make_config(2, 2, true, true, true), 21);
  Rng rng(22);
  const Tensor frame = random_frame(rng, 1, 10, 14);
  const Tensor batch = random_frame(rng, 3, 10, 14);
  for (const InferencePrecision precision : kAllPrecisions) {
    planned.set_precision(precision);
    SesrInference direct = planned;
    direct.set_use_plan(false);
    expect_bitwise(planned.upscale(frame), direct.upscale(frame));
    expect_bitwise(planned.upscale(batch), direct.upscale(batch));
  }
}

TEST(PlannedExecutor, StaleArenaBytesNeverLeakIntoSmallerFrames) {
  // Run a large frame first so the arena holds stale activations, then a
  // small one: any offset bug that reads bytes the small plan never wrote
  // would surface as a bitwise mismatch against the fresh direct path.
  SesrInference planned = make_inference(make_config(1, 4, true, true, false), 31);
  SesrInference direct = planned;
  direct.set_use_plan(false);
  Rng rng(32);
  for (const InferencePrecision precision : kAllPrecisions) {
    planned.set_precision(precision);
    direct.set_precision(precision);
    (void)planned.upscale(random_frame(rng, 1, 24, 24));
    const Tensor small = random_frame(rng, 1, 5, 3);
    expect_bitwise(planned.upscale(small), direct.upscale(small));
  }
}

TEST(PlannedExecutor, PlanCacheEvictionRecompilesCorrectly) {
  // More distinct shapes than the bounded plan cache holds: the comparison
  // shape is compiled, evicted, and recompiled — all bit-identical.
  SesrInference planned = make_inference(make_config(1, 2, false, true, false), 41);
  SesrInference direct = planned;
  direct.set_use_plan(false);
  Rng rng(42);
  const Tensor probe = random_frame(rng, 1, 9, 9);
  const Tensor first = planned.upscale(probe);
  for (std::int64_t i = 0; i < 12; ++i) {
    (void)planned.upscale(random_frame(rng, 1, 4 + i, 4));
  }
  const Tensor recompiled = planned.upscale(probe);
  expect_bitwise(recompiled, first);
  expect_bitwise(recompiled, direct.upscale(probe));
}

TEST(PlannedExecutor, TiledUpscaleRunsThroughThePlan) {
  SesrInference planned = make_inference(make_config(2, 2, true, true, false), 51);
  SesrInference direct = planned;
  direct.set_use_plan(false);
  Rng rng(52);
  const Tensor frame = random_frame(rng, 1, 20, 17);
  TilingOptions options;
  options.tile_h = 7;
  options.tile_w = 6;
  options.halo = receptive_field_radius(planned);
  expect_bitwise(upscale_tiled(planned, frame, options), upscale_tiled(direct, frame, options));
}

TEST(PlannedExecutor, ReserveAndTrimGovernArenaBytes) {
  SesrInference net = make_inference(make_config(2, 2, false, true, false), 61);
  const PlanFootprint f = ExecutionPlan::compile(net, 16, 16).footprint();
  EXPECT_EQ(net.plan_arena_bytes(), 0);  // nothing compiled or reserved yet
  net.plan_reserve(24 * 24);
  EXPECT_EQ(net.plan_arena_bytes(), f.bytes(24 * 24));
  Rng rng(62);
  // A frame within the reservation must not grow the arena...
  (void)net.upscale(random_frame(rng, 1, 20, 20));
  EXPECT_EQ(net.plan_arena_bytes(), f.bytes(24 * 24));
  // ...an oversized one grows it, and trim gives the excess back.
  (void)net.upscale(random_frame(rng, 1, 40, 40));
  EXPECT_GE(net.plan_arena_bytes(), f.bytes(40 * 40));
  net.plan_trim(24 * 24);
  EXPECT_EQ(net.plan_arena_bytes(), f.bytes(24 * 24));
  // Still correct after the trim.
  SesrInference direct = net;
  direct.set_use_plan(false);
  const Tensor frame = random_frame(rng, 1, 10, 10);
  expect_bitwise(net.upscale(frame), direct.upscale(frame));
}

// ------------------------------------------------------------- scratch seams

TEST(ScratchTrim, TrimIsDeferredToTheSlotsNextRequest) {
  (void)scratch_floats(ScratchSlot::kIm2col, 1 << 16);
  const std::size_t before = scratch_thread_retained_bytes();
  EXPECT_GE(before, (std::size_t{1} << 16) * sizeof(float));
  scratch_trim();
  // Nothing freed yet: a span handed out before the trim stays valid until
  // its own slot is requested again.
  EXPECT_EQ(scratch_thread_retained_bytes(), before);
  (void)scratch_floats(ScratchSlot::kIm2col, 16);
  EXPECT_LE(scratch_thread_retained_bytes(),
            before - ((std::size_t{1} << 16) - 16) * sizeof(float));
}

TEST(ScratchTrim, HighWaterRecordsLargestRequestAcrossTrims) {
  scratch_reset_high_water();
  (void)scratch_floats(ScratchSlot::kGemmPackA, 1234);
  (void)scratch_floats(ScratchSlot::kGemmPackA, 10);
  scratch_trim();
  (void)scratch_floats(ScratchSlot::kGemmPackA, 10);  // applies the trim
  // The mark survives the trim: it reports the largest request ever served,
  // not the currently retained capacity.
  EXPECT_GE(scratch_high_water(ScratchSlot::kGemmPackA).float_elems, std::size_t{1234});
  EXPECT_GE(scratch_high_water_bytes(), 1234 * sizeof(float));
}

}  // namespace
}  // namespace sesr::core::plan
