// Tests for grouped convolution and the TPSR-like / CARN-M-like trainable
// baselines (the paper's medium/large-regime comparison rows).
#include <gtest/gtest.h>

#include "baselines/compact_nets.hpp"
#include "nn/group_conv.hpp"
#include "nn/init.hpp"
#include "tensor/tensor_ops.hpp"
#include "train/loss.hpp"
#include "train/optimizer.hpp"

namespace sesr::baselines {
namespace {

TEST(GroupConv, EquivalentToBlockDiagonalDense) {
  Rng rng(1);
  constexpr std::int64_t groups = 4;
  Tensor w = nn::glorot_uniform_kernel(3, 3, 8 / groups, 8, rng);  // (3,3,2,8)
  Tensor x(2, 6, 6, 8);
  x.fill_uniform(rng, -1.0F, 1.0F);
  Tensor grouped = nn::conv2d_grouped(x, w, groups, nn::Padding::kSame);
  Tensor dense = nn::conv2d(x, nn::grouped_to_dense(w, groups), nn::Padding::kSame);
  EXPECT_EQ(grouped.shape(), dense.shape());
  EXPECT_LT(max_abs_diff(grouped, dense), 1e-5F);
}

TEST(GroupConv, OneGroupIsPlainConv) {
  Rng rng(3);
  Tensor w = nn::glorot_uniform_kernel(3, 3, 4, 6, rng);
  Tensor x(1, 5, 5, 4);
  x.fill_uniform(rng, -1.0F, 1.0F);
  Tensor a = nn::conv2d_grouped(x, w, 1, nn::Padding::kSame);
  Tensor b = nn::conv2d(x, w, nn::Padding::kSame);
  EXPECT_LT(max_abs_diff(a, b), 1e-6F);
}

TEST(GroupConv, DepthwiseExtreme) {
  // groups == channels: each channel convolved independently.
  Rng rng(5);
  Tensor w = nn::glorot_uniform_kernel(3, 3, 1, 4, rng);
  Tensor x(1, 6, 6, 4);
  x.fill_uniform(rng, -1.0F, 1.0F);
  Tensor y = nn::conv2d_grouped(x, w, 4, nn::Padding::kSame);
  EXPECT_EQ(y.shape(), x.shape());
  // Channel 0 of the output only depends on channel 0 of the input.
  Tensor x2 = x;
  for (std::int64_t i = 0; i < x2.numel(); i += 4) x2.raw()[i + 1] += 1.0F;  // perturb ch 1
  Tensor y2 = nn::conv2d_grouped(x2, w, 4, nn::Padding::kSame);
  for (std::int64_t n = 0; n < y.numel(); n += 4) {
    EXPECT_EQ(y.raw()[n], y2.raw()[n]);  // ch 0 unchanged
  }
}

TEST(GroupConv, RejectsBadGrouping) {
  Rng rng(7);
  Tensor w = nn::glorot_uniform_kernel(3, 3, 2, 6, rng);
  Tensor x(1, 4, 4, 7);  // 7 not divisible by 3
  EXPECT_THROW(nn::conv2d_grouped(x, w, 3, nn::Padding::kSame), std::invalid_argument);
  EXPECT_THROW(nn::conv2d_grouped(x, w, 0, nn::Padding::kSame), std::invalid_argument);
}

TEST(GroupConv, LayerGradientMatchesDenseEquivalent) {
  // Gradients of the grouped layer == block-diagonal entries of the dense
  // layer's gradient.
  Rng rng(9);
  nn::GroupedConv2d grouped("g", 3, 3, 4, 4, 2, nn::Padding::kSame, rng);
  Tensor dense_w = nn::grouped_to_dense(grouped.weight().value, 2);
  Tensor x(1, 5, 5, 4);
  x.fill_uniform(rng, -1.0F, 1.0F);
  Tensor grad_out(1, 5, 5, 4);
  grad_out.fill_uniform(rng, -1.0F, 1.0F);

  grouped.forward(x, true);
  nn::zero_gradients(grouped.parameters());
  Tensor gi_grouped = grouped.backward(grad_out);

  Tensor dense_grad(dense_w.shape());
  nn::conv2d_backward_weight(x, grad_out, dense_grad, nn::Padding::kSame);
  Tensor gi_dense = nn::conv2d_backward_input(grad_out, dense_w, x.shape(), nn::Padding::kSame);

  EXPECT_LT(max_abs_diff(gi_grouped, gi_dense), 1e-4F);
  // Compare the block-diagonal part of the dense weight grad.
  const Tensor& gw = grouped.weight().grad;
  for (std::int64_t ky = 0; ky < 3; ++ky) {
    for (std::int64_t kx = 0; kx < 3; ++kx) {
      for (std::int64_t g = 0; g < 2; ++g) {
        for (std::int64_t ic = 0; ic < 2; ++ic) {
          for (std::int64_t oc = 0; oc < 2; ++oc) {
            EXPECT_NEAR(gw(ky, kx, ic, g * 2 + oc),
                        dense_grad(ky, kx, g * 2 + ic, g * 2 + oc), 1e-4F);
          }
        }
      }
    }
  }
}

TEST(TpsrLike, ShapeAndParameterRegime) {
  Rng rng(11);
  TpsrConfig cfg;  // default ~58K params, the paper's medium regime
  TpsrLike net(cfg, rng);
  Tensor x(1, 8, 10, 1);
  Tensor y = net.forward(x, false);
  EXPECT_EQ(y.shape(), Shape(1, 16, 20, 1));
  std::int64_t total = 0;
  for (nn::Parameter* p : net.parameters()) total += p->value.numel();
  EXPECT_EQ(total, net.parameter_count());
  EXPECT_NEAR(static_cast<double>(total) * 1e-3, 60.0, 5.0);  // paper: ~60K
}

TEST(TpsrLike, TrainsAndGradientsFlow) {
  Rng rng(13);
  TpsrConfig cfg;
  cfg.f = 8;
  cfg.blocks = 2;
  TpsrLike net(cfg, rng);
  Rng xrng(17);
  Tensor x(1, 6, 6, 1);
  x.fill_uniform(xrng, 0.0F, 1.0F);
  Tensor target(1, 12, 12, 1);
  target.fill_uniform(xrng, 0.0F, 1.0F);
  train::Adam adam(1e-3F);
  float first = -1.0F;
  float last = 0.0F;
  for (int step = 0; step < 25; ++step) {
    nn::zero_gradients(net.parameters());
    Tensor y = net.forward(x, true);
    auto loss = train::l1_loss(y, target);
    net.backward(loss.grad);
    adam.step(net.parameters());
    if (first < 0.0F) first = loss.value;
    last = loss.value;
  }
  EXPECT_LT(last, first);
  for (nn::Parameter* p : net.parameters()) EXPECT_GT(max_abs(p->grad), 0.0F) << p->name;
}

TEST(CarnMLike, ShapeAndX4) {
  Rng rng(19);
  CarnMConfig cfg;
  CarnMLike net(cfg, rng);
  Tensor x(1, 8, 8, 1);
  EXPECT_EQ(net.forward(x, false).shape(), Shape(1, 16, 16, 1));
  CarnMConfig cfg4;
  cfg4.scale = 4;
  Rng rng4(21);
  CarnMLike net4(cfg4, rng4);
  EXPECT_EQ(net4.forward(x, false).shape(), Shape(1, 32, 32, 1));
}

TEST(CarnMLike, ParameterCountMatchesLayers) {
  Rng rng(23);
  CarnMConfig cfg;
  CarnMLike net(cfg, rng);
  std::int64_t total = 0;
  for (nn::Parameter* p : net.parameters()) total += p->value.numel();
  EXPECT_EQ(total, net.parameter_count());
  // Group conv saves parameters: grouped block part < dense equivalent.
  EXPECT_LT(9 * (cfg.f / cfg.groups) * cfg.f, 9 * cfg.f * cfg.f);
}

TEST(CarnMLike, TrainsAndGradientsFlow) {
  Rng rng(29);
  CarnMConfig cfg;
  cfg.f = 8;
  cfg.blocks = 2;
  cfg.groups = 2;
  CarnMLike net(cfg, rng);
  Rng xrng(31);
  Tensor x(1, 6, 6, 1);
  x.fill_uniform(xrng, 0.0F, 1.0F);
  Tensor target(1, 12, 12, 1);
  target.fill_uniform(xrng, 0.0F, 1.0F);
  train::Adam adam(1e-3F);
  float first = -1.0F;
  float last = 0.0F;
  for (int step = 0; step < 25; ++step) {
    nn::zero_gradients(net.parameters());
    Tensor y = net.forward(x, true);
    auto loss = train::l1_loss(y, target);
    net.backward(loss.grad);
    adam.step(net.parameters());
    if (first < 0.0F) first = loss.value;
    last = loss.value;
  }
  EXPECT_LT(last, first);
  for (nn::Parameter* p : net.parameters()) EXPECT_GT(max_abs(p->grad), 0.0F) << p->name;
}

TEST(CarnMLike, RejectsBadConfig) {
  Rng rng(37);
  CarnMConfig cfg;
  cfg.f = 10;
  cfg.groups = 4;  // 10 % 4 != 0
  EXPECT_THROW(CarnMLike(cfg, rng), std::invalid_argument);
}

}  // namespace
}  // namespace sesr::baselines
