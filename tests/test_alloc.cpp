// Steady-state allocation regression test for the planned executor.
//
// The execution-plan compiler's contract is ZERO-ALLOCATION steady-state
// inference: once a shape is warm (plan compiled, arena grown, scratch
// retained), upscale_into() must not touch the heap at all. This binary
// replaces global operator new/delete with counting shims and asserts the
// count stays exactly zero across 10 warm iterations for every precision.
//
// The pool is pinned to a single inline thread first: worker threads park in
// condition variables whose wait/notify internals are allocation-free, but
// counting across foreign threads would make the zero assertion depend on
// libstdc++ internals rather than on our own steady-state promise. The
// single-thread run exercises every kernel, plan, and scratch path the
// multi-threaded one does — per-thread scratch just replicates per worker.
// Excluded from the TSan suite: the shims themselves are trivially racy
// counters by design (relaxed atomics), and TSan's interceptor already owns
// the allocator there.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "core/sesr_inference.hpp"
#include "core/sesr_network.hpp"
#include "tensor/rng.hpp"
#include "tensor/tensor.hpp"
#include "tensor/thread_pool.hpp"

namespace {

std::atomic<bool> g_counting{false};
std::atomic<std::uint64_t> g_allocs{0};

void note_alloc() {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
}

void* checked_malloc(std::size_t size) {
  note_alloc();
  void* p = std::malloc(size ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* checked_aligned(std::size_t size, std::size_t align) {
  note_alloc();
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align, size ? size : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return checked_malloc(size); }
void* operator new[](std::size_t size) { return checked_malloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  note_alloc();
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  note_alloc();
  return std::malloc(size ? size : 1);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return checked_aligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return checked_aligned(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace sesr::core {
namespace {

std::uint64_t measure_warm_upscales(SesrInference& net, const Tensor& input, Tensor& output,
                                    int iterations) {
  // Warm-up: compiles and caches the plan, grows the arena, and touches every
  // scratch slot the kernels use at this shape.
  net.upscale_into(input, output);
  net.upscale_into(input, output);
  g_allocs.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
  for (int i = 0; i < iterations; ++i) net.upscale_into(input, output);
  g_counting.store(false, std::memory_order_relaxed);
  return g_allocs.load(std::memory_order_relaxed);
}

TEST(SteadyStateAllocations, WarmPlannedUpscaleNeverTouchesTheHeap) {
  ThreadPool::set_global_threads(1);
  SesrConfig config;
  config.f = 16;
  config.m = 5;
  config.scale = 2;
  config.expand = 48;
  config.prelu = true;
  config.input_residual = true;
  config.with_bias = false;
  Rng rng(0xa110c);
  Rng init = rng.fork();
  const SesrNetwork network(config, init);
  SesrInference net(network);
  net.calibrate_int8({[&] {
    Tensor t(1, 16, 16, 1);
    t.fill_uniform(rng, 0.0F, 1.0F);
    return t;
  }()});
  std::vector<LayerPrecision> plan(net.convolutions().size(), LayerPrecision::kFp16);
  for (std::size_t i = 0; i < plan.size(); i += 2) plan[i] = LayerPrecision::kInt8;
  net.set_hybrid_plan(std::move(plan));

  Tensor input(1, 48, 56, 1);
  input.fill_uniform(rng, 0.0F, 1.0F);
  Tensor output(1, 48 * config.scale, 56 * config.scale, 1);

  const struct {
    InferencePrecision precision;
    const char* name;
  } cases[] = {{InferencePrecision::kFp32, "fp32"},
               {InferencePrecision::kFp16, "fp16"},
               {InferencePrecision::kInt8, "int8"},
               {InferencePrecision::kHybrid, "hybrid"}};
  for (const auto& c : cases) {
    net.set_precision(c.precision);
    const std::uint64_t allocs = measure_warm_upscales(net, input, output, 10);
    EXPECT_EQ(allocs, 0U) << c.name << ": warm planned upscale allocated " << allocs
                          << " time(s) across 10 iterations";
  }
}

TEST(SteadyStateAllocations, WarmBatchedUpscaleNeverTouchesTheHeap) {
  ThreadPool::set_global_threads(1);
  SesrConfig config;
  config.f = 8;
  config.m = 2;
  config.scale = 4;
  config.expand = 16;
  config.prelu = false;
  config.input_residual = true;
  config.with_bias = true;
  Rng rng(0xb47c4);
  Rng init = rng.fork();
  const SesrNetwork network(config, init);
  SesrInference net(network);

  Tensor input(3, 20, 24, 1);
  input.fill_uniform(rng, 0.0F, 1.0F);
  Tensor output(3, 20 * config.scale, 24 * config.scale, 1);
  const std::uint64_t allocs = measure_warm_upscales(net, input, output, 10);
  EXPECT_EQ(allocs, 0U) << "warm batched fp32 upscale allocated " << allocs << " time(s)";
}

}  // namespace
}  // namespace sesr::core
