// Cross-cutting property tests (TEST_P sweeps): algebraic identities the
// library must satisfy for ANY configuration in the paper's design space.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <tuple>

#include "core/collapse.hpp"
#include "core/sesr_inference.hpp"
#include "core/sesr_network.hpp"
#include "core/quantize.hpp"
#include "core/streaming.hpp"
#include "core/tiled_inference.hpp"
#include "data/augment.hpp"
#include "data/synthetic.hpp"
#include "metrics/psnr.hpp"
#include "metrics/ssim.hpp"
#include "nn/conv2d.hpp"
#include "nn/init.hpp"
#include "tensor/tensor_ops.hpp"

namespace sesr {
namespace {

// ------------------------- convolution is linear -----------------------------

class ConvLinearity : public ::testing::TestWithParam<int> {};

TEST_P(ConvLinearity, ConvIsLinearInInput) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::int64_t in_c = rng.uniform_int(1, 4);
  const std::int64_t out_c = rng.uniform_int(1, 4);
  const std::int64_t k = 2 * rng.uniform_int(0, 2) + 1;
  Tensor w = nn::glorot_uniform_kernel(k, k, in_c, out_c, rng);
  Tensor x(1, 6, 7, in_c);
  Tensor y(1, 6, 7, in_c);
  x.fill_uniform(rng, -1.0F, 1.0F);
  y.fill_uniform(rng, -1.0F, 1.0F);
  const float a = rng.uniform(-2.0F, 2.0F);
  const float b = rng.uniform(-2.0F, 2.0F);
  Tensor lhs = nn::conv2d(add(scale(x, a), scale(y, b)), w, nn::Padding::kSame);
  Tensor rhs = add(scale(nn::conv2d(x, w, nn::Padding::kSame), a),
                   scale(nn::conv2d(y, w, nn::Padding::kSame), b));
  EXPECT_LT(max_abs_diff(lhs, rhs), 1e-4F);
}

TEST_P(ConvLinearity, ConvIsLinearInWeights) {
  Rng rng(1000 + static_cast<std::uint64_t>(GetParam()));
  const std::int64_t c = rng.uniform_int(1, 4);
  Tensor w1 = nn::glorot_uniform_kernel(3, 3, c, c, rng);
  Tensor w2 = nn::glorot_uniform_kernel(3, 3, c, c, rng);
  Tensor x(1, 5, 5, c);
  x.fill_uniform(rng, -1.0F, 1.0F);
  Tensor lhs = nn::conv2d(x, add(w1, w2), nn::Padding::kSame);
  Tensor rhs = add(nn::conv2d(x, w1, nn::Padding::kSame), nn::conv2d(x, w2, nn::Padding::kSame));
  EXPECT_LT(max_abs_diff(lhs, rhs), 1e-4F);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConvLinearity, ::testing::Range(0, 8));

// ---------------- collapse distributes over weight addition ------------------

class CollapseAlgebra : public ::testing::TestWithParam<int> {};

TEST_P(CollapseAlgebra, CollapseLinearInFirstWeight) {
  Rng rng(2000 + static_cast<std::uint64_t>(GetParam()));
  const std::int64_t x_c = rng.uniform_int(1, 4);
  const std::int64_t p = rng.uniform_int(4, 12);
  const std::int64_t y_c = rng.uniform_int(1, 4);
  Tensor w1a = nn::glorot_uniform_kernel(3, 3, x_c, p, rng);
  Tensor w1b = nn::glorot_uniform_kernel(3, 3, x_c, p, rng);
  Tensor w2 = nn::glorot_uniform_kernel(1, 1, p, y_c, rng);
  const std::array<Tensor, 2> sum_seq{add(w1a, w1b), w2};
  const std::array<Tensor, 2> a_seq{w1a, w2};
  const std::array<Tensor, 2> b_seq{w1b, w2};
  Tensor lhs = core::collapse_conv_sequence(sum_seq);
  Tensor rhs = add(core::collapse_conv_sequence(a_seq), core::collapse_conv_sequence(b_seq));
  EXPECT_LT(max_abs_diff(lhs, rhs), 1e-4F);
}

TEST_P(CollapseAlgebra, CollapseCommutesWithScaling) {
  Rng rng(3000 + static_cast<std::uint64_t>(GetParam()));
  Tensor w1 = nn::glorot_uniform_kernel(3, 3, 2, 8, rng);
  Tensor w2 = nn::glorot_uniform_kernel(1, 1, 8, 2, rng);
  const float s = rng.uniform(-3.0F, 3.0F);
  const std::array<Tensor, 2> scaled{scale(w1, s), w2};
  const std::array<Tensor, 2> plain{w1, w2};
  Tensor lhs = core::collapse_conv_sequence(scaled);
  Tensor rhs = scale(core::collapse_conv_sequence(plain), s);
  EXPECT_LT(max_abs_diff(lhs, rhs), 1e-4F);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CollapseAlgebra, ::testing::Range(0, 8));

// ------------- whole-network collapse across the config space ----------------

// (f, m, scale, prelu, input_residual, short_residuals, bias, expanded_mode)
using NetConfig = std::tuple<int, int, int, bool, bool, bool, bool, bool>;

class WholeNetCollapse : public ::testing::TestWithParam<NetConfig> {};

TEST_P(WholeNetCollapse, TrainingGraphEqualsDeployedNet) {
  const auto [f, m, scl, prelu, in_res, short_res, bias, expanded] = GetParam();
  core::SesrConfig cfg;
  cfg.f = f;
  cfg.m = m;
  cfg.scale = scl;
  cfg.expand = 16;
  cfg.prelu = prelu;
  cfg.input_residual = in_res;
  cfg.short_residuals = short_res;
  cfg.with_bias = bias;
  cfg.mode = expanded ? core::BlockMode::kExpanded : core::BlockMode::kCollapsedForward;
  Rng rng(99);
  core::SesrNetwork net(cfg, rng);
  core::SesrInference deployed(net);
  Rng xrng(101);
  Tensor x(1, 8, 8, 1);
  x.fill_uniform(xrng, 0.0F, 1.0F);
  EXPECT_LT(max_abs_diff(net.forward(x, false), deployed.upscale(x)), 5e-4F);
}

INSTANTIATE_TEST_SUITE_P(
    Space, WholeNetCollapse,
    ::testing::Values(NetConfig{4, 1, 2, true, true, true, false, false},
                      NetConfig{8, 3, 2, true, true, true, false, true},
                      NetConfig{4, 2, 4, true, true, true, false, false},
                      NetConfig{4, 2, 2, false, false, true, false, false},   // hw variant
                      NetConfig{4, 2, 2, true, true, false, false, false},    // ExpandNet style
                      NetConfig{4, 2, 2, true, true, true, true, false},      // with biases
                      NetConfig{4, 2, 4, false, false, true, true, true},     // everything odd
                      NetConfig{6, 4, 2, true, false, true, false, false}));

// --------------- streaming inference across the config space -----------------

class StreamingEquivalence : public ::testing::TestWithParam<NetConfig> {};

TEST_P(StreamingEquivalence, RowPipelineEqualsBatch) {
  const auto [f, m, scl, prelu, in_res, short_res, bias, expanded] = GetParam();
  if (bias) GTEST_SKIP() << "streaming does not support biased nets";
  core::SesrConfig cfg;
  cfg.f = f;
  cfg.m = m;
  cfg.scale = scl;
  cfg.expand = 16;
  cfg.prelu = prelu;
  cfg.input_residual = in_res;
  cfg.short_residuals = short_res;
  cfg.mode = expanded ? core::BlockMode::kExpanded : core::BlockMode::kCollapsedForward;
  Rng rng(103);
  core::SesrNetwork net(cfg, rng);
  core::SesrInference deployed(net);
  core::StreamingUpscaler streamer(deployed);
  Rng xrng(107);
  Tensor x(1, 11, 13, 1);  // odd dims stress the row pipeline
  x.fill_uniform(xrng, 0.0F, 1.0F);
  EXPECT_LT(max_abs_diff(streamer.upscale(x), deployed.upscale(x)), 1e-5F);
}

INSTANTIATE_TEST_SUITE_P(
    Space, StreamingEquivalence,
    ::testing::Values(NetConfig{4, 1, 2, true, true, true, false, false},
                      NetConfig{8, 3, 2, true, true, true, false, false},
                      NetConfig{4, 2, 4, true, true, true, false, false},
                      NetConfig{4, 2, 2, false, false, true, false, false},
                      NetConfig{4, 2, 2, true, true, false, false, false},
                      NetConfig{6, 4, 2, true, false, true, false, false}));

// ------------------ metric invariances under dihedral moves ------------------

class MetricInvariance : public ::testing::TestWithParam<int> {};

TEST_P(MetricInvariance, PsnrAndSsimAreDihedralInvariant) {
  const int index = GetParam();
  Rng rng(4000 + static_cast<std::uint64_t>(index));
  Tensor a = data::synthesize_image(data::ImageFamily::kNatural, 24, 24, rng);
  Tensor b = data::synthesize_image(data::ImageFamily::kObjects, 24, 24, rng);
  const double psnr_plain = metrics::psnr(a, b);
  const double ssim_plain = metrics::ssim(a, b);
  Tensor ta = data::dihedral_transform(a, index);
  Tensor tb = data::dihedral_transform(b, index);
  EXPECT_NEAR(metrics::psnr(ta, tb), psnr_plain, 1e-9);
  EXPECT_NEAR(metrics::ssim(ta, tb), ssim_plain, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllTransforms, MetricInvariance, ::testing::Range(0, 8));

// -------------- deployment paths agree pairwise on the same net --------------

TEST(DeploymentAgreement, BatchTiledAndStreamingCoincide) {
  core::SesrConfig cfg;
  cfg.f = 6;
  cfg.m = 2;
  cfg.scale = 2;
  cfg.expand = 16;
  Rng rng(301);
  core::SesrNetwork net(cfg, rng);
  core::SesrInference deployed(net);
  core::StreamingUpscaler streamer(deployed);
  Rng irng(303);
  Tensor image = data::synthesize_image(data::ImageFamily::kObjects, 36, 44, irng);
  Tensor batch = deployed.upscale(image);
  core::TilingOptions tiles;
  tiles.tile_h = 16;
  tiles.tile_w = 20;
  Tensor tiled = core::upscale_tiled(deployed, image, tiles);
  Tensor streamed = streamer.upscale(image);
  EXPECT_LT(max_abs_diff(batch, tiled), 1e-5F);
  EXPECT_LT(max_abs_diff(batch, streamed), 1e-5F);
}

// ------------- tiled-inference edge cases the eval server dispatches ---------

// The serve layer routes arbitrary request shapes through upscale_tiled; these
// pin down the geometry corners it will hit in production.

TEST(TiledEdgeCases, ImageSmallerThanOneTileIsBitExact) {
  core::SesrConfig cfg;
  cfg.f = 6;
  cfg.m = 2;
  cfg.scale = 2;
  cfg.expand = 16;
  Rng rng(601);
  core::SesrNetwork net(cfg, rng);
  core::SesrInference deployed(net);
  Rng irng(603);
  Tensor image(1, 5, 7, 1);
  image.fill_uniform(irng, 0.0F, 1.0F);
  // Tile dims larger than the image: the grid degenerates to a single tile
  // whose clamped halo is the whole image — the exact full-frame computation.
  core::TilingOptions tiles;
  tiles.tile_h = 64;
  tiles.tile_w = 64;
  EXPECT_EQ(max_abs_diff(core::upscale_tiled(deployed, image, tiles), deployed.upscale(image)),
            0.0F);
  const auto grid = core::tile_grid(5, 7, tiles, core::receptive_field_radius(deployed));
  ASSERT_EQ(grid.size(), 1U);
  EXPECT_EQ(grid[0].hh, 5);
  EXPECT_EQ(grid[0].hw, 7);
}

TEST(TiledEdgeCases, NonDivisibleGridMatchesFullFrame) {
  core::SesrConfig cfg;
  cfg.f = 6;
  cfg.m = 2;
  cfg.scale = 2;
  cfg.expand = 16;
  Rng rng(607);
  core::SesrNetwork net(cfg, rng);
  core::SesrInference deployed(net);
  Rng irng(609);
  Tensor image(1, 13, 17, 1);
  image.fill_uniform(irng, 0.0F, 1.0F);
  // 13/5 and 17/6 both leave ragged edge tiles; exact halo must still
  // reproduce the full frame.
  core::TilingOptions tiles;
  tiles.tile_h = 5;
  tiles.tile_w = 6;
  EXPECT_LT(max_abs_diff(core::upscale_tiled(deployed, image, tiles), deployed.upscale(image)),
            1e-5F);
  // The grid covers every LR pixel exactly once.
  const auto grid = core::tile_grid(13, 17, tiles, 0);
  std::int64_t covered = 0;
  for (const auto& t : grid) covered += t.th * t.tw;
  EXPECT_EQ(covered, 13 * 17);
}

TEST(TiledEdgeCases, HaloZeroInexactnessConfinedToTileBorders) {
  core::SesrConfig cfg;
  cfg.f = 6;
  cfg.m = 2;
  cfg.scale = 2;
  cfg.expand = 16;
  Rng rng(611);
  core::SesrNetwork net(cfg, rng);
  core::SesrInference deployed(net);
  Rng irng(613);
  Tensor image(1, 16, 16, 1);
  image.fill_uniform(irng, 0.0F, 1.0F);
  core::TilingOptions tiles;
  tiles.tile_h = 8;
  tiles.tile_w = 8;
  tiles.halo = 0;
  const std::int64_t radius = core::receptive_field_radius(deployed);
  const Tensor full = deployed.upscale(image);
  const Tensor approx = core::upscale_tiled(deployed, image, tiles);
  const std::int64_t scale = cfg.scale;
  // The sharp halo=0 bound: an LR pixel whose distance to every INTERIOR tile
  // boundary is >= the receptive-field radius sees the identical input window
  // in both passes, so its HR block must match exactly. (Image borders are
  // excluded — there the clamped halo equals full-frame padding anyway.)
  std::int64_t interior_checked = 0;
  for (std::int64_t y = 0; y < 16; ++y) {
    for (std::int64_t x = 0; x < 16; ++x) {
      const std::int64_t ty = y % tiles.tile_h;
      const std::int64_t tx = x % tiles.tile_w;
      auto dist = [&](std::int64_t local, std::int64_t extent, std::int64_t origin,
                      std::int64_t image_extent) {
        std::int64_t d = std::numeric_limits<std::int64_t>::max();
        if (origin > 0) d = std::min(d, local);  // interior low edge
        if (origin + extent < image_extent) d = std::min(d, extent - 1 - local);
        return d;
      };
      const std::int64_t dy = dist(ty, tiles.tile_h, y - ty, 16);
      const std::int64_t dx = dist(tx, tiles.tile_w, x - tx, 16);
      if (std::min(dy, dx) < radius) continue;
      ++interior_checked;
      for (std::int64_t sy = 0; sy < scale; ++sy) {
        for (std::int64_t sx = 0; sx < scale; ++sx) {
          ASSERT_EQ(approx(0, y * scale + sy, x * scale + sx, 0),
                    full(0, y * scale + sy, x * scale + sx, 0))
              << "LR pixel (" << y << ", " << x << ")";
        }
      }
    }
  }
  ASSERT_GT(interior_checked, 0);
  // And the borders genuinely differ — halo=0 is an approximation, not a
  // freebie; if this ever becomes exact the overhead accounting is obsolete.
  EXPECT_GT(max_abs_diff(approx, full), 0.0F);
}

// -------------------- quantization error scales with range -------------------

class QuantError : public ::testing::TestWithParam<int> {};

TEST_P(QuantError, BoundedByHalfStep) {
  Rng rng(400 + static_cast<std::uint64_t>(GetParam()));
  const float range = rng.uniform(0.1F, 10.0F);
  Tensor t(1, 6, 6, 3);
  t.fill_uniform(rng, -range, range);
  const core::QuantizedTensor q = core::quantize_symmetric(t);
  EXPECT_LT(max_abs_diff(t, core::dequantize(q)), q.scale * 0.5F + 1e-6F);
  EXPECT_LE(q.scale, range / 127.0F + 1e-6F);
}

INSTANTIATE_TEST_SUITE_P(Ranges, QuantError, ::testing::Range(0, 6));

// ------------------ trainer determinism under fixed seeds --------------------

TEST(Determinism, IdenticalSeedsGiveIdenticalNetworks) {
  for (int run = 0; run < 2; ++run) {
    Rng rng_a(5);
    Rng rng_b(5);
    core::SesrNetwork a(core::sesr_m3(2), rng_a);
    core::SesrNetwork b(core::sesr_m3(2), rng_b);
    auto pa = a.parameters();
    auto pb = b.parameters();
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t i = 0; i < pa.size(); ++i) {
      EXPECT_EQ(max_abs_diff(pa[i]->value, pb[i]->value), 0.0F) << pa[i]->name;
    }
  }
}

}  // namespace
}  // namespace sesr
