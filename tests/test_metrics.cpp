// Tests for PSNR, SSIM and dataset-level evaluation.
#include <gtest/gtest.h>

#include <cmath>

#include "data/resize.hpp"
#include "metrics/evaluate.hpp"
#include "metrics/psnr.hpp"
#include "metrics/self_ensemble.hpp"
#include "metrics/stats.hpp"
#include "metrics/ssim.hpp"
#include "tensor/tensor_ops.hpp"

namespace sesr::metrics {
namespace {

TEST(Psnr, IdenticalImagesCapAt100) {
  Tensor a(1, 8, 8, 1);
  a.fill(0.5F);
  EXPECT_DOUBLE_EQ(psnr(a, a), 100.0);
}

TEST(Psnr, KnownUniformError) {
  // Constant error d gives MSE = d^2 -> PSNR = -20 log10 d.
  Tensor a(1, 8, 8, 1);
  Tensor b(1, 8, 8, 1);
  b.fill(0.1F);
  EXPECT_NEAR(psnr(a, b), 20.0, 1e-4);
  b.fill(0.01F);
  EXPECT_NEAR(psnr(a, b), 40.0, 1e-3);
}

TEST(Psnr, MonotoneInError) {
  Rng rng(3);
  Tensor ref(1, 16, 16, 1);
  ref.fill_uniform(rng, 0.0F, 1.0F);
  Tensor small_err = ref;
  Tensor large_err = ref;
  for (std::int64_t i = 0; i < ref.numel(); ++i) {
    small_err.raw()[i] += 0.01F * rng.uniform(-1.0F, 1.0F);
    large_err.raw()[i] += 0.1F * rng.uniform(-1.0F, 1.0F);
  }
  EXPECT_GT(psnr(small_err, ref), psnr(large_err, ref));
}

TEST(Psnr, ShaveExcludesBorder) {
  Tensor a(1, 10, 10, 1);
  Tensor b(1, 10, 10, 1);
  // Corrupt only the 2-pixel border.
  for (std::int64_t y = 0; y < 10; ++y) {
    for (std::int64_t x = 0; x < 10; ++x) {
      if (y < 2 || y >= 8 || x < 2 || x >= 8) b(0, y, x, 0) = 1.0F;
    }
  }
  EXPECT_LT(psnr(a, b), 20.0);
  EXPECT_DOUBLE_EQ(psnr_shaved(a, b, 2), 100.0);
  EXPECT_THROW(psnr_shaved(a, b, 5), std::invalid_argument);
}

TEST(Psnr, ShapeMismatchThrows) {
  Tensor a(1, 4, 4, 1);
  Tensor b(1, 4, 5, 1);
  EXPECT_THROW(psnr(a, b), std::invalid_argument);
}

TEST(Ssim, SelfSimilarityIsOne) {
  Rng rng(7);
  Tensor a(1, 16, 16, 1);
  a.fill_uniform(rng, 0.0F, 1.0F);
  EXPECT_NEAR(ssim(a, a), 1.0, 1e-9);
}

TEST(Ssim, SelfSimilarityIsExactlyOne) {
  // Regression: E[x^2] - E[x]^2 goes (slightly) negative on flat windows, and
  // before the variance clamp + Cauchy-Schwarz covariance bound, ssim(x, x)
  // could land on either side of 1. It must now be 1.0 to the last bit, for
  // constant and textured images alike.
  for (const float v : {0.0F, 0.25F, 0.994000018F, 1.0F}) {
    Tensor a(1, 16, 16, 1);
    a.fill(v);
    EXPECT_EQ(ssim(a, a), 1.0) << "constant " << v;
  }
  Rng rng(29);
  Tensor t(1, 20, 20, 1);
  t.fill_uniform(rng, 0.0F, 1.0F);
  EXPECT_EQ(ssim(t, t), 1.0);
}

TEST(Ssim, NeverExceedsOneOnNearConstantImages) {
  // Regression: this exact pair of constants (3 ULPs apart) drove the pre-fix
  // implementation to ssim = 1.0000000000035614 — the negative-variance
  // denominator shrinkage the clamp eliminates.
  Tensor a(1, 16, 16, 1);
  Tensor b(1, 16, 16, 1);
  a.fill(0x1.fced92p-1F);
  b.fill(0x1.fced98p-1F);
  EXPECT_LE(ssim(a, b), 1.0);

  Rng rng(31);
  for (int trial = 0; trial < 50; ++trial) {
    const float base = rng.uniform(0.0F, 1.0F);
    a.fill(base);
    b.fill(base);
    for (std::int64_t i = 0; i < b.numel(); ++i) {
      if (rng.bernoulli(0.2)) b.raw()[i] = std::nextafter(b.raw()[i], 2.0F);
    }
    const double s = ssim(a, b);
    EXPECT_LE(s, 1.0) << "base " << base << " trial " << trial;
  }
}

TEST(Ssim, DegradationLowersScore) {
  Rng rng(11);
  Tensor ref(1, 24, 24, 1);
  ref.fill_uniform(rng, 0.0F, 1.0F);
  Tensor mild = ref;
  Tensor harsh = ref;
  for (std::int64_t i = 0; i < ref.numel(); ++i) {
    mild.raw()[i] = std::clamp(mild.raw()[i] + 0.02F * rng.uniform(-1.0F, 1.0F), 0.0F, 1.0F);
    harsh.raw()[i] = std::clamp(harsh.raw()[i] + 0.3F * rng.uniform(-1.0F, 1.0F), 0.0F, 1.0F);
  }
  const double s_mild = ssim(mild, ref);
  const double s_harsh = ssim(harsh, ref);
  EXPECT_GT(s_mild, s_harsh);
  EXPECT_GT(s_mild, 0.9);
  EXPECT_LT(s_harsh, 0.95);
  EXPECT_GE(s_harsh, -1.0);
  EXPECT_LE(s_mild, 1.0);
}

TEST(Ssim, ConstantShiftScoresBelowOne) {
  Tensor a(1, 16, 16, 1);
  a.fill(0.4F);
  Tensor b(1, 16, 16, 1);
  b.fill(0.6F);
  const double s = ssim(a, b);
  EXPECT_LT(s, 1.0);
  EXPECT_GT(s, 0.0);  // structure identical, luminance differs
}

TEST(Ssim, TooSmallImageThrows) {
  Tensor a(1, 8, 8, 1);
  EXPECT_THROW(ssim(a, a), std::invalid_argument);
}

TEST(Ssim, ShavedMatchesManualCrop) {
  Rng rng(13);
  Tensor a(1, 20, 20, 1);
  Tensor b(1, 20, 20, 1);
  a.fill_uniform(rng, 0.0F, 1.0F);
  b.fill_uniform(rng, 0.0F, 1.0F);
  const double direct = ssim(crop_spatial(a, 2, 2, 16, 16), crop_spatial(b, 2, 2, 16, 16));
  EXPECT_DOUBLE_EQ(ssim_shaved(a, b, 2), direct);
}

TEST(Evaluate, BicubicUpscalerOnSyntheticSet) {
  const auto set = data::make_benchmark_set("Set5", 48, /*reduced=*/true);
  const Upscaler bicubic = [](const Tensor& lr) { return data::upscale_bicubic(lr, 2); };
  const QualityScore score = evaluate_on_set(bicubic, set, 2);
  EXPECT_EQ(score.dataset, "Set5");
  EXPECT_EQ(score.images, static_cast<std::int64_t>(set.hr.size()));
  // Bicubic on band-limited synthetic content lands in a sane PSNR band.
  EXPECT_GT(score.psnr, 20.0);
  EXPECT_LT(score.psnr, 60.0);
  EXPECT_GT(score.ssim, 0.5);
  EXPECT_LE(score.ssim, 1.0);
}

TEST(Evaluate, PerfectUpscalerWouldScoreHigher) {
  // An oracle that returns the ground truth must dominate bicubic. We fake it
  // by evaluating identity on a set downscaled from itself.
  const auto set = data::make_benchmark_set("Set14", 48, true);
  const Upscaler bicubic = [](const Tensor& lr) { return data::upscale_bicubic(lr, 2); };
  const double bicubic_psnr = evaluate_on_set(bicubic, set, 2).psnr;

  // "Cheating" upscaler: bicubic plus a perfect residual is unavailable, so we
  // instead verify a *degraded* upscaler scores lower — monotonicity both ways.
  Rng rng(17);
  const Upscaler noisy = [&rng](const Tensor& lr) {
    Tensor up = data::upscale_bicubic(lr, 2);
    for (float& v : up.data()) v = std::clamp(v + rng.uniform(-0.05F, 0.05F), 0.0F, 1.0F);
    return up;
  };
  EXPECT_LT(evaluate_on_set(noisy, set, 2).psnr, bicubic_psnr);
}

TEST(Evaluate, WrongOutputShapeThrows) {
  const auto set = data::make_benchmark_set("Set5", 48, true);
  const Upscaler broken = [](const Tensor& lr) { return lr; };
  EXPECT_THROW(evaluate_on_set(broken, set, 2), std::runtime_error);
}

TEST(SelfEnsemble, IsIdentityForEquivariantUpscaler) {
  // Bicubic is dihedral-equivariant, so the x8 ensemble must equal plain
  // bicubic (up to float addition order).
  Rng rng(19);
  Tensor lr_img(1, 12, 12, 1);
  lr_img.fill_uniform(rng, 0.0F, 1.0F);
  const Upscaler bicubic = [](const Tensor& x) { return data::upscale_bicubic(x, 2); };
  const Upscaler ensembled = self_ensemble(bicubic);
  EXPECT_LT(max_abs_diff(ensembled(lr_img), bicubic(lr_img)), 1e-5F);
}

TEST(SelfEnsemble, AveragesOutAsymmetricNoise) {
  // An upscaler that adds a fixed left-to-right ramp artifact: the ensemble
  // cancels the odd component of the artifact.
  Rng rng(23);
  Tensor lr_img(1, 8, 8, 1);
  lr_img.fill_uniform(rng, 0.3F, 0.7F);
  const Upscaler biased = [](const Tensor& x) {
    Tensor up = data::upscale_bicubic(x, 2);
    const Shape& s = up.shape();
    for (std::int64_t y = 0; y < s.h(); ++y) {
      for (std::int64_t xx = 0; xx < s.w(); ++xx) {
        up(0, y, xx, 0) += 0.1F * (static_cast<float>(xx) / static_cast<float>(s.w()) - 0.5F);
      }
    }
    return up;
  };
  const Tensor reference = data::upscale_bicubic(lr_img, 2);
  const float biased_err = max_abs_diff(biased(lr_img), reference);
  const float ensembled_err = max_abs_diff(self_ensemble(biased)(lr_img), reference);
  EXPECT_LT(ensembled_err, biased_err * 0.5F);
}

TEST(Stats, ComputeStatsBasics) {
  const std::vector<double> samples{1.0, 2.0, 3.0, 4.0};
  const SampleStats s = compute_stats(samples);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_NEAR(s.stddev, 1.2909944, 1e-6);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_EQ(s.count, 4);
  EXPECT_DOUBLE_EQ(compute_stats({7.0}).stddev, 0.0);
  EXPECT_THROW(compute_stats({}), std::invalid_argument);
}

TEST(Evaluate, MultiSetWrapper) {
  const auto sets = data::make_benchmark_sets(48, true);
  const Upscaler bicubic = [](const Tensor& lr) { return data::upscale_bicubic(lr, 2); };
  const auto scores = evaluate_on_sets(bicubic, sets, 2);
  ASSERT_EQ(scores.size(), 6U);
  EXPECT_EQ(scores[3].dataset, "Urban100");
}

}  // namespace
}  // namespace sesr::metrics
