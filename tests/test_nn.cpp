// Unit and property tests for the NN operator library: GEMM vs reference,
// im2col geometry, conv forward vs naive, analytic vs finite-difference
// gradients, transposed conv adjointness, activations, depth-to-space.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <thread>
#include <tuple>

#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/conv_transpose.hpp"
#include "nn/depth_to_space.hpp"
#include "nn/gemm.hpp"
#include "nn/im2col.hpp"
#include "nn/init.hpp"
#include "tensor/fp16.hpp"
#include "tensor/tensor_ops.hpp"
#include "tensor/thread_pool.hpp"

namespace sesr::nn {
namespace {

// ---------------------------------------------------------------- GEMM ------

void reference_gemm(const std::vector<float>& a, const std::vector<float>& b,
                    std::vector<float>& c, std::int64_t m, std::int64_t k, std::int64_t n) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p) acc += static_cast<double>(a[i * k + p]) * b[p * n + j];
      c[i * n + j] = static_cast<float>(acc);
    }
  }
}

class GemmSizes : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmSizes, MatchesReference) {
  const auto [m, k, n] = GetParam();
  Rng rng(101 + m * 31 + k * 7 + n);
  std::vector<float> a(static_cast<std::size_t>(m * k));
  std::vector<float> b(static_cast<std::size_t>(k * n));
  for (float& v : a) v = rng.uniform(-1.0F, 1.0F);
  for (float& v : b) v = rng.uniform(-1.0F, 1.0F);
  std::vector<float> c(static_cast<std::size_t>(m * n));
  std::vector<float> ref(c.size());
  gemm(a, b, c, m, k, n);
  reference_gemm(a, b, ref, m, k, n);
  for (std::size_t i = 0; i < c.size(); ++i) EXPECT_NEAR(c[i], ref[i], 1e-4F) << "index " << i;
}

INSTANTIATE_TEST_SUITE_P(Shapes, GemmSizes,
                         ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(3, 5, 7),
                                           std::make_tuple(16, 16, 16), std::make_tuple(1, 64, 3),
                                           std::make_tuple(65, 33, 17),
                                           std::make_tuple(128, 9, 64),
                                           // exercise the 6x16 register-tile edges
                                           std::make_tuple(6, 16, 16), std::make_tuple(7, 17, 15),
                                           std::make_tuple(5, 300, 19),
                                           std::make_tuple(97, 144, 16),
                                           std::make_tuple(130, 260, 37)));

TEST(Gemm, AccumulateAddsToExisting) {
  std::vector<float> a{1.0F, 2.0F};
  std::vector<float> b{3.0F, 4.0F};
  std::vector<float> c{10.0F};
  gemm_accumulate(a, b, c, 1, 2, 1);
  EXPECT_FLOAT_EQ(c[0], 10.0F + 11.0F);
}

TEST(Gemm, TransposedVariantsMatchReference) {
  constexpr std::int64_t m = 6;
  constexpr std::int64_t k = 5;
  constexpr std::int64_t n = 4;
  Rng rng(7);
  std::vector<float> at(static_cast<std::size_t>(k * m));  // A stored [k x m]
  std::vector<float> b(static_cast<std::size_t>(k * n));
  for (float& v : at) v = rng.uniform(-1.0F, 1.0F);
  for (float& v : b) v = rng.uniform(-1.0F, 1.0F);
  // Materialize A = at^T.
  std::vector<float> a(static_cast<std::size_t>(m * k));
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t p = 0; p < k; ++p) a[i * k + p] = at[p * m + i];
  }
  std::vector<float> want(static_cast<std::size_t>(m * n));
  reference_gemm(a, b, want, m, k, n);
  std::vector<float> got(want.size());
  gemm_at_b(at, b, got, m, k, n);
  for (std::size_t i = 0; i < got.size(); ++i) EXPECT_NEAR(got[i], want[i], 1e-4F);

  // A * B^T with B stored [n x k].
  std::vector<float> bt(static_cast<std::size_t>(n * k));
  for (std::int64_t p = 0; p < k; ++p) {
    for (std::int64_t j = 0; j < n; ++j) bt[j * k + p] = b[p * n + j];
  }
  std::vector<float> got2(want.size());
  gemm_a_bt(a, bt, got2, m, k, n);
  for (std::size_t i = 0; i < got2.size(); ++i) EXPECT_NEAR(got2[i], want[i], 1e-4F);
}

TEST(Gemm, SizeCheckThrows) {
  std::vector<float> a(2);
  std::vector<float> b(2);
  std::vector<float> c(1);
  EXPECT_THROW(gemm(a, b, c, 2, 2, 2), std::invalid_argument);
}

TEST(Gemm, ZeroSkipMatchesDense) {
  constexpr std::int64_t m = 23;
  constexpr std::int64_t k = 31;
  constexpr std::int64_t n = 19;
  Rng rng(41);
  std::vector<float> a(static_cast<std::size_t>(m * k));
  std::vector<float> b(static_cast<std::size_t>(k * n));
  // Mostly-zero A, the regime the kernel is kept for.
  for (float& v : a) v = rng.uniform(0.0F, 1.0F) < 0.1F ? rng.uniform(-1.0F, 1.0F) : 0.0F;
  for (float& v : b) v = rng.uniform(-1.0F, 1.0F);
  std::vector<float> dense(static_cast<std::size_t>(m * n));
  std::vector<float> skip(dense.size());
  gemm(a, b, dense, m, k, n);
  gemm_zero_skip(a, b, skip, m, k, n);
  for (std::size_t i = 0; i < dense.size(); ++i) EXPECT_NEAR(skip[i], dense[i], 1e-5F);
}

TEST(Gemm, BiasIsFusedIntoEpilogue) {
  constexpr std::int64_t m = 37;
  constexpr std::int64_t k = 65;
  constexpr std::int64_t n = 21;
  Rng rng(43);
  std::vector<float> a(static_cast<std::size_t>(m * k));
  std::vector<float> b(static_cast<std::size_t>(k * n));
  std::vector<float> bias(static_cast<std::size_t>(n));
  for (float& v : a) v = rng.uniform(-1.0F, 1.0F);
  for (float& v : b) v = rng.uniform(-1.0F, 1.0F);
  for (float& v : bias) v = rng.uniform(-2.0F, 2.0F);
  std::vector<float> plain(static_cast<std::size_t>(m * n));
  std::vector<float> fused(plain.size());
  gemm(a, b, plain, m, k, n);
  gemm_bias(a, b, bias, fused, m, k, n);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      // Identical k-order in both kernels: adding bias on the store is exact.
      EXPECT_EQ(fused[i * n + j], plain[i * n + j] + bias[j]);
    }
  }
}

TEST(Gemm, FusedActivationBitIdenticalToTwoPass) {
  // The activation epilogue rides the GEMM write-back; it must equal the
  // two-pass form (gemm_bias then elementwise activation) bit for bit, across
  // shapes that hit full tiles, register-tile edges, and multiple k-blocks.
  const std::tuple<std::int64_t, std::int64_t, std::int64_t> shapes[] = {
      {1, 1, 1}, {7, 17, 15}, {65, 33, 17}, {6, 300, 19}, {37, 513, 21}};
  for (const auto& [m, k, n] : shapes) {
    Rng rng(53 + m + k + n);
    std::vector<float> a(static_cast<std::size_t>(m * k));
    std::vector<float> b(static_cast<std::size_t>(k * n));
    std::vector<float> bias(static_cast<std::size_t>(n));
    std::vector<float> alpha(static_cast<std::size_t>(n));
    for (float& v : a) v = rng.uniform(-1.0F, 1.0F);
    for (float& v : b) v = rng.uniform(-1.0F, 1.0F);
    for (float& v : bias) v = rng.uniform(-2.0F, 2.0F);
    for (float& v : alpha) v = rng.uniform(-0.5F, 0.5F);
    std::vector<float> two_pass(static_cast<std::size_t>(m * n));
    gemm_bias(a, b, bias, two_pass, m, k, n);
    std::vector<float> relu_want = two_pass;
    for (float& v : relu_want) v = v > 0.0F ? v : 0.0F;
    std::vector<float> prelu_want = two_pass;
    for (std::int64_t i = 0; i < m; ++i) {
      for (std::int64_t j = 0; j < n; ++j) {
        float& v = prelu_want[i * n + j];
        v = v > 0.0F ? v : alpha[j] * v;
      }
    }
    std::vector<float> got(two_pass.size());
    gemm_fused(a, b, bias, got, m, k, n, Epilogue{Epilogue::Act::kRelu, nullptr});
    EXPECT_EQ(got, relu_want) << "relu m=" << m << " k=" << k << " n=" << n;
    gemm_fused(a, b, bias, got, m, k, n, Epilogue{Epilogue::Act::kPRelu, alpha.data()});
    EXPECT_EQ(got, prelu_want) << "prelu m=" << m << " k=" << k << " n=" << n;
    // No activation + bias must reduce to gemm_bias exactly.
    gemm_fused(a, b, bias, got, m, k, n, Epilogue{});
    EXPECT_EQ(got, two_pass) << "none m=" << m << " k=" << k << " n=" << n;
  }
}

TEST(Gemm, FusedPReluRequiresAlpha) {
  std::vector<float> a(4);
  std::vector<float> b(4);
  std::vector<float> c(4);
  EXPECT_THROW(gemm_fused(a, b, {}, c, 2, 2, 2, Epilogue{Epilogue::Act::kPRelu, nullptr}),
               std::invalid_argument);
}

TEST(Gemm, Fp16WeightsMatchWidenedFp32) {
  // gemm_fp16w stages the binary16 operands through the same packing as the
  // fp32 kernel, so it must agree bitwise with widening up front and calling
  // gemm_fused on the fp32 copies.
  const std::tuple<std::int64_t, std::int64_t, std::int64_t> shapes[] = {
      {1, 1, 1}, {7, 17, 15}, {25, 300, 33}, {97, 40, 17}};
  for (const auto& [m, k, n] : shapes) {
    Rng rng(59 + m + k + n);
    std::vector<float> af(static_cast<std::size_t>(m * k));
    std::vector<float> bf(static_cast<std::size_t>(k * n));
    std::vector<float> bias(static_cast<std::size_t>(n));
    for (float& v : af) v = rng.uniform(-1.0F, 1.0F);
    for (float& v : bf) v = rng.uniform(-1.0F, 1.0F);
    for (float& v : bias) v = rng.uniform(-1.0F, 1.0F);
    std::vector<fp16::Half> ah(af.size());
    std::vector<fp16::Half> bh(bf.size());
    fp16::convert_to_half(af.data(), ah.data(), static_cast<std::int64_t>(af.size()));
    fp16::convert_to_half(bf.data(), bh.data(), static_cast<std::int64_t>(bf.size()));
    // Widen the *rounded* halves back so both kernels see identical values.
    fp16::convert_to_float(ah.data(), af.data(), static_cast<std::int64_t>(af.size()));
    fp16::convert_to_float(bh.data(), bf.data(), static_cast<std::int64_t>(bf.size()));
    std::vector<float> want(static_cast<std::size_t>(m * n));
    std::vector<float> got(want.size());
    const Epilogue epilogue{Epilogue::Act::kRelu, nullptr};
    gemm_fused(af, bf, bias, want, m, k, n, epilogue);
    gemm_fp16w(ah, bh, bias, got, m, k, n, epilogue);
    EXPECT_EQ(got, want) << "m=" << m << " k=" << k << " n=" << n;
  }
}

TEST(Gemm, AtBAccumulateMatchesReference) {
  constexpr std::int64_t m = 29;
  constexpr std::int64_t k = 330;  // spans two k-blocks
  constexpr std::int64_t n = 18;
  Rng rng(47);
  std::vector<float> at(static_cast<std::size_t>(k * m));
  std::vector<float> b(static_cast<std::size_t>(k * n));
  for (float& v : at) v = rng.uniform(-1.0F, 1.0F);
  for (float& v : b) v = rng.uniform(-1.0F, 1.0F);
  std::vector<float> a(static_cast<std::size_t>(m * k));
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t p = 0; p < k; ++p) a[i * k + p] = at[p * m + i];
  }
  std::vector<float> want(static_cast<std::size_t>(m * n), 0.5F);
  std::vector<float> ref(want.size());
  reference_gemm(a, b, ref, m, k, n);
  for (std::size_t i = 0; i < want.size(); ++i) ref[i] += want[i];
  gemm_at_b_accumulate(at, b, want, m, k, n);
  for (std::size_t i = 0; i < want.size(); ++i) EXPECT_NEAR(want[i], ref[i], 1e-3F);
}

// ------------------------------------------------------------- im2col -------

TEST(Im2col, SameGeometryOddKernel) {
  const ConvGeometry g = same_geometry(5, 7, 3, 3, 3);
  EXPECT_EQ(g.out_h, 5);
  EXPECT_EQ(g.out_w, 7);
  EXPECT_EQ(g.pad_top, 1);
  EXPECT_EQ(g.pad_left, 1);
  EXPECT_EQ(g.rows(), 35);
  EXPECT_EQ(g.cols(), 27);
}

TEST(Im2col, SameGeometryEvenKernelPadsBottomRight) {
  // TF convention: pad_total = k - 1 = 1 -> pad_top = 0 (extra at bottom).
  const ConvGeometry g = same_geometry(4, 4, 1, 2, 2);
  EXPECT_EQ(g.out_h, 4);
  EXPECT_EQ(g.pad_top, 0);
  EXPECT_EQ(g.pad_left, 0);
}

TEST(Im2col, SameGeometryStride2) {
  const ConvGeometry g = same_geometry(9, 9, 1, 3, 3, 2);
  EXPECT_EQ(g.out_h, 5);
  EXPECT_EQ(g.out_w, 5);
}

TEST(Im2col, ValidGeometry) {
  const ConvGeometry g = valid_geometry(9, 9, 2, 5, 5);
  EXPECT_EQ(g.out_h, 5);
  EXPECT_EQ(g.out_w, 5);
  EXPECT_THROW(valid_geometry(3, 3, 1, 5, 5), std::invalid_argument);
}

TEST(Im2col, ExtractsReceptiveFields) {
  Tensor x(1, 3, 3, 1);
  for (std::int64_t y = 0; y < 3; ++y) {
    for (std::int64_t i = 0; i < 3; ++i) x(0, y, i, 0) = static_cast<float>(y * 3 + i);
  }
  const ConvGeometry g = same_geometry(3, 3, 1, 3, 3);
  std::vector<float> cols(static_cast<std::size_t>(g.rows() * g.cols()));
  im2col(x, 0, g, cols.data());
  // Center output pixel (1,1) sees the full image in order.
  const float* row = cols.data() + (1 * 3 + 1) * g.cols();
  for (int i = 0; i < 9; ++i) EXPECT_EQ(row[i], static_cast<float>(i));
  // Corner output (0,0): top-left taps are zero padding.
  const float* corner = cols.data();
  EXPECT_EQ(corner[0], 0.0F);  // (-1,-1)
  EXPECT_EQ(corner[4], 0.0F);  // (-1, 1) -- still off-image row
  EXPECT_EQ(corner[3 * 1 + 1], x(0, 0, 0, 0));
}

TEST(Im2col, Col2ImIsAdjoint) {
  // <im2col(x), y> == <x, col2im(y)> for random x, y (adjointness).
  Rng rng(23);
  Tensor x(1, 4, 5, 3);
  x.fill_uniform(rng, -1.0F, 1.0F);
  const ConvGeometry g = same_geometry(4, 5, 3, 3, 2);
  std::vector<float> cols(static_cast<std::size_t>(g.rows() * g.cols()));
  im2col(x, 0, g, cols.data());
  std::vector<float> y(cols.size());
  for (float& v : y) v = rng.uniform(-1.0F, 1.0F);
  double lhs = 0.0;
  for (std::size_t i = 0; i < cols.size(); ++i) lhs += static_cast<double>(cols[i]) * y[i];
  Tensor xt(1, 4, 5, 3);
  col2im_add(y.data(), g, xt, 0);
  double rhs = 0.0;
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    rhs += static_cast<double>(x.raw()[i]) * xt.raw()[i];
  }
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

// ---------------------------------------------------------------- conv ------

class ConvShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int, int, int, int, int>> {};

TEST_P(ConvShapes, GemmPathMatchesNaive) {
  const auto [h, w, in_c, out_c, kh, kw, pad_same] = GetParam();
  Rng rng(h * 131 + w * 17 + kh * 5 + kw * 3 + in_c + out_c);
  Tensor x(2, h, w, in_c);
  x.fill_uniform(rng, -1.0F, 1.0F);
  Tensor weight = he_normal_kernel(kh, kw, in_c, out_c, rng);
  const Padding pad = pad_same != 0 ? Padding::kSame : Padding::kValid;
  if (pad == Padding::kValid && (h < kh || w < kw)) GTEST_SKIP();
  Tensor fast = conv2d(x, weight, pad);
  Tensor slow = conv2d_naive(x, weight, pad);
  EXPECT_EQ(fast.shape(), slow.shape());
  EXPECT_LT(max_abs_diff(fast, slow), 1e-4F);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvShapes,
    ::testing::Values(std::make_tuple(6, 6, 1, 4, 3, 3, 1), std::make_tuple(6, 6, 3, 2, 5, 5, 1),
                      std::make_tuple(5, 7, 2, 3, 1, 1, 1), std::make_tuple(8, 8, 2, 2, 2, 2, 1),
                      std::make_tuple(7, 6, 3, 3, 3, 2, 1), std::make_tuple(6, 7, 2, 4, 2, 3, 1),
                      std::make_tuple(9, 9, 1, 1, 5, 5, 0), std::make_tuple(7, 7, 2, 2, 3, 3, 0),
                      std::make_tuple(16, 16, 4, 8, 3, 3, 1),
                      // channel counts off the 6x16 tile grid, kh != kw
                      std::make_tuple(10, 9, 5, 7, 3, 1, 1),
                      std::make_tuple(9, 10, 3, 19, 1, 3, 1),
                      std::make_tuple(13, 11, 7, 17, 3, 3, 0),
                      // 1x1 fast path (no im2col) over a non-square image
                      std::make_tuple(12, 7, 5, 9, 1, 1, 1),
                      std::make_tuple(12, 7, 5, 9, 1, 1, 0)));

TEST(Conv2d, Stride2MatchesNaive) {
  Rng rng(3);
  Tensor x(1, 9, 9, 2);
  x.fill_uniform(rng, -1.0F, 1.0F);
  Tensor w = he_normal_kernel(3, 3, 2, 4, rng);
  Tensor fast = conv2d(x, w, Padding::kSame, 2);
  Tensor slow = conv2d_naive(x, w, Padding::kSame, 2);
  EXPECT_EQ(fast.shape(), Shape(1, 5, 5, 4));
  EXPECT_LT(max_abs_diff(fast, slow), 1e-4F);
}

TEST(Conv2d, ZeroSkipPathMatchesNaive) {
  // The Algorithm-1 probe path: mostly-zero input through the branchy kernel.
  Rng rng(11);
  Tensor x(1, 9, 9, 4);
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    x.raw()[i] = rng.uniform(0.0F, 1.0F) < 0.05F ? rng.uniform(-1.0F, 1.0F) : 0.0F;
  }
  Tensor w = he_normal_kernel(3, 3, 4, 5, rng);
  Tensor fast = conv2d_zero_skip(x, w, Padding::kValid);
  Tensor slow = conv2d_naive(x, w, Padding::kValid);
  EXPECT_EQ(fast.shape(), slow.shape());
  EXPECT_LT(max_abs_diff(fast, slow), 1e-4F);
}

TEST(Conv2d, FusedBiasMatchesSeparateAdd) {
  Rng rng(13);
  Tensor x(2, 8, 9, 5);
  x.fill_uniform(rng, -1.0F, 1.0F);
  for (const auto& [kh, kw] : {std::pair<int, int>{3, 3}, std::pair<int, int>{1, 1}}) {
    Tensor w = he_normal_kernel(kh, kw, 5, 7, rng);
    Tensor bias(1, 1, 1, 7);
    bias.fill_uniform(rng, -2.0F, 2.0F);
    Tensor fused = conv2d_bias(x, w, bias, Padding::kSame);
    Tensor plain = conv2d(x, w, Padding::kSame);
    for (std::int64_t i = 0; i < plain.numel(); ++i) {
      plain.raw()[i] += bias.raw()[i % 7];
    }
    EXPECT_EQ(max_abs_diff(fused, plain), 0.0F) << "kernel " << kh << "x" << kw;
  }
}

TEST(Conv2d, FusedActivationBitIdenticalToTwoPass) {
  // conv2d_fused must equal conv2d_bias followed by the elementwise
  // activation exactly, in both the striped-im2col and 1x1 fast paths, with
  // odd spatial extents that leave partial stripes.
  Rng rng(61);
  Tensor x(2, 13, 11, 5);
  x.fill_uniform(rng, -1.0F, 1.0F);
  Tensor alpha(1, 1, 1, 7);
  alpha.fill_uniform(rng, -0.5F, 0.5F);
  for (const auto& [kh, kw] : {std::pair<int, int>{3, 3}, std::pair<int, int>{1, 1}}) {
    Tensor w = he_normal_kernel(kh, kw, 5, 7, rng);
    Tensor bias(1, 1, 1, 7);
    bias.fill_uniform(rng, -2.0F, 2.0F);
    Tensor two_pass = conv2d_bias(x, w, bias, Padding::kSame);
    Tensor relu_want = two_pass;
    for (std::int64_t i = 0; i < relu_want.numel(); ++i) {
      float& v = relu_want.raw()[i];
      v = v > 0.0F ? v : 0.0F;
    }
    Tensor prelu_want = two_pass;
    for (std::int64_t i = 0; i < prelu_want.numel(); ++i) {
      float& v = prelu_want.raw()[i];
      v = v > 0.0F ? v : alpha.raw()[i % 7] * v;
    }
    const Tensor relu_got =
        conv2d_fused(x, w, &bias, Epilogue{Epilogue::Act::kRelu, nullptr}, Padding::kSame);
    const Tensor prelu_got =
        conv2d_fused(x, w, &bias, Epilogue{Epilogue::Act::kPRelu, alpha.raw()}, Padding::kSame);
    EXPECT_EQ(max_abs_diff(relu_got, relu_want), 0.0F) << "kernel " << kh << "x" << kw;
    EXPECT_EQ(max_abs_diff(prelu_got, prelu_want), 0.0F) << "kernel " << kh << "x" << kw;
    // Without bias or activation it reduces to plain conv2d.
    const Tensor plain = conv2d_fused(x, w, nullptr, Epilogue{}, Padding::kSame);
    EXPECT_EQ(max_abs_diff(plain, conv2d(x, w, Padding::kSame)), 0.0F);
  }
}

TEST(Conv2d, Fp16FusedEpilogueMatchesTwoPass) {
  // Same law on the reduced-precision path: the fp32-output variant applies
  // the epilogue before any rounding, so fused == act(two-pass) bitwise; the
  // fp16-output variant rounds exactly once after the epilogue.
  Rng rng(67);
  Tensor x(1, 9, 15, 4);
  x.fill_uniform(rng, -1.0F, 1.0F);
  Tensor w = he_normal_kernel(3, 3, 4, 6, rng);
  const fp16::HalfTensor hx = fp16::HalfTensor::from_float(x);
  const fp16::HalfTensor hw = fp16::HalfTensor::from_float(w);
  const Epilogue relu{Epilogue::Act::kRelu, nullptr};
  Tensor want = conv2d_fp16_to_float(hx, hw, nullptr, Epilogue{}, Padding::kSame);
  for (std::int64_t i = 0; i < want.numel(); ++i) {
    float& v = want.raw()[i];
    v = v > 0.0F ? v : 0.0F;
  }
  const Tensor got_f32 = conv2d_fp16_to_float(hx, hw, nullptr, relu, Padding::kSame);
  EXPECT_EQ(max_abs_diff(got_f32, want), 0.0F);
  const Tensor got_f16 = conv2d_fp16(hx, hw, nullptr, relu, Padding::kSame).to_float();
  fp16::round_through_half(want.raw(), want.numel());
  EXPECT_EQ(max_abs_diff(got_f16, want), 0.0F);
}

TEST(Conv2d, BackwardWeightBiasMatchesSeparatePasses) {
  Rng rng(17);
  Tensor x(2, 7, 6, 3);
  x.fill_uniform(rng, -1.0F, 1.0F);
  Tensor w = he_normal_kernel(3, 3, 3, 5, rng);
  Tensor go(2, 7, 6, 5);
  go.fill_uniform(rng, -1.0F, 1.0F);
  Tensor gw_fused(w.shape());
  Tensor gb_fused(1, 1, 1, 5);
  conv2d_backward_weight_bias(x, go, gw_fused, gb_fused, Padding::kSame);
  Tensor gw_plain(w.shape());
  conv2d_backward_weight(x, go, gw_plain, Padding::kSame);
  EXPECT_EQ(max_abs_diff(gw_fused, gw_plain), 0.0F);
  // Reference bias grad: column sums of grad_output.
  Tensor gb_ref(1, 1, 1, 5);
  for (std::int64_t i = 0; i < go.numel(); ++i) gb_ref.raw()[i % 5] += go.raw()[i];
  EXPECT_LT(max_abs_diff(gb_fused, gb_ref), 1e-4F);
}

TEST(Conv2d, BitIdenticalAcrossThreadCounts) {
  // Forward, input-grad and weight/bias-grad must not depend on
  // SESR_NUM_THREADS: stripes are fixed by shape and every reduction order is
  // pinned, so 1 thread and 4 threads agree bit for bit.
  Rng rng(19);
  Tensor x(1, 37, 29, 8);  // N=1: exercises intra-image striping
  x.fill_uniform(rng, -1.0F, 1.0F);
  Tensor w = he_normal_kernel(3, 3, 8, 16, rng);
  Tensor w1 = he_normal_kernel(1, 1, 8, 16, rng);
  Tensor bias(1, 1, 1, 16);
  bias.fill_uniform(rng, -1.0F, 1.0F);
  Tensor go(1, 37, 29, 16);
  go.fill_uniform(rng, -1.0F, 1.0F);

  struct Results {
    Tensor fwd, fwd_1x1, gin, gw, gb;
  };
  const auto run = [&] {
    Results r;
    r.fwd = conv2d_bias(x, w, bias, Padding::kSame);
    r.fwd_1x1 = conv2d(x, w1, Padding::kSame);
    r.gin = conv2d_backward_input(go, w, x.shape(), Padding::kSame);
    r.gw = Tensor(w.shape());
    r.gb = Tensor(1, 1, 1, 16);
    conv2d_backward_weight_bias(x, go, r.gw, r.gb, Padding::kSame);
    return r;
  };
  ThreadPool::set_global_threads(1);
  const Results serial = run();
  ThreadPool::set_global_threads(4);
  const Results threaded = run();
  // Restore the env-configured pool for the remaining tests.
  unsigned restore = std::thread::hardware_concurrency();
  if (const char* env = std::getenv("SESR_NUM_THREADS")) {
    const long t = std::strtol(env, nullptr, 10);
    restore = t > 0 ? static_cast<unsigned>(t) : 1U;
  }
  ThreadPool::set_global_threads(restore > 0 ? restore : 1U);
  EXPECT_EQ(max_abs_diff(serial.fwd, threaded.fwd), 0.0F);
  EXPECT_EQ(max_abs_diff(serial.fwd_1x1, threaded.fwd_1x1), 0.0F);
  EXPECT_EQ(max_abs_diff(serial.gin, threaded.gin), 0.0F);
  EXPECT_EQ(max_abs_diff(serial.gw, threaded.gw), 0.0F);
  EXPECT_EQ(max_abs_diff(serial.gb, threaded.gb), 0.0F);
}

TEST(Conv2d, IdentityKernelIsIdentity) {
  Rng rng(5);
  Tensor x(1, 6, 6, 3);
  x.fill_uniform(rng, -1.0F, 1.0F);
  Tensor id = identity_kernel(3, 3, 3);
  Tensor y = conv2d(x, id, Padding::kSame);
  EXPECT_LT(max_abs_diff(x, y), 1e-6F);
}

TEST(Conv2d, ChannelMismatchThrows) {
  Tensor x(1, 4, 4, 2);
  Rng rng(1);
  Tensor w = he_normal_kernel(3, 3, 3, 1, rng);
  EXPECT_THROW(conv2d(x, w, Padding::kSame), std::invalid_argument);
}

TEST(Conv2d, BiasIsAdded) {
  Tensor x(1, 2, 2, 1);
  Tensor w(kernel_shape(1, 1, 1, 2));
  w(0, 0, 0, 0) = 1.0F;
  w(0, 0, 0, 1) = 2.0F;
  Tensor b(1, 1, 1, 2);
  b.raw()[0] = 10.0F;
  b.raw()[1] = 20.0F;
  x.fill(1.0F);
  Tensor y = conv2d_bias(x, w, b, Padding::kSame);
  EXPECT_FLOAT_EQ(y(0, 0, 0, 0), 11.0F);
  EXPECT_FLOAT_EQ(y(0, 1, 1, 1), 22.0F);
}

// Finite-difference gradient checks for the conv layer.
TEST(Conv2d, WeightGradientMatchesFiniteDifference) {
  Rng rng(31);
  Tensor x(1, 5, 5, 2);
  x.fill_uniform(rng, -1.0F, 1.0F);
  Tensor w = he_normal_kernel(3, 3, 2, 2, rng);
  Tensor grad_out(1, 5, 5, 2);
  grad_out.fill_uniform(rng, -1.0F, 1.0F);

  Tensor grad_w(w.shape());
  conv2d_backward_weight(x, grad_out, grad_w, Padding::kSame);

  // loss = <conv(x, w), grad_out>; check d(loss)/d(w) numerically.
  auto loss = [&](const Tensor& weight) {
    Tensor y = conv2d(x, weight, Padding::kSame);
    double acc = 0.0;
    for (std::int64_t i = 0; i < y.numel(); ++i) {
      acc += static_cast<double>(y.raw()[i]) * grad_out.raw()[i];
    }
    return acc;
  };
  constexpr float kEps = 1e-3F;
  for (std::int64_t i = 0; i < w.numel(); i += 7) {  // sample every 7th weight
    Tensor wp = w;
    wp.raw()[i] += kEps;
    Tensor wm = w;
    wm.raw()[i] -= kEps;
    const double numeric = (loss(wp) - loss(wm)) / (2.0 * kEps);
    EXPECT_NEAR(grad_w.raw()[i], numeric, 5e-2) << "weight index " << i;
  }
}

TEST(Conv2d, InputGradientMatchesFiniteDifference) {
  Rng rng(37);
  Tensor x(1, 4, 4, 2);
  x.fill_uniform(rng, -1.0F, 1.0F);
  Tensor w = he_normal_kernel(3, 3, 2, 3, rng);
  Tensor grad_out(1, 4, 4, 3);
  grad_out.fill_uniform(rng, -1.0F, 1.0F);
  Tensor grad_in = conv2d_backward_input(grad_out, w, x.shape(), Padding::kSame);
  auto loss = [&](const Tensor& input) {
    Tensor y = conv2d(input, w, Padding::kSame);
    double acc = 0.0;
    for (std::int64_t i = 0; i < y.numel(); ++i) {
      acc += static_cast<double>(y.raw()[i]) * grad_out.raw()[i];
    }
    return acc;
  };
  constexpr float kEps = 1e-3F;
  for (std::int64_t i = 0; i < x.numel(); i += 5) {
    Tensor xp = x;
    xp.raw()[i] += kEps;
    Tensor xm = x;
    xm.raw()[i] -= kEps;
    const double numeric = (loss(xp) - loss(xm)) / (2.0 * kEps);
    EXPECT_NEAR(grad_in.raw()[i], numeric, 5e-2) << "input index " << i;
  }
}

TEST(Conv2dLayer, ForwardBackwardShapes) {
  Rng rng(41);
  Conv2d layer("conv", 3, 3, 2, 4, Padding::kSame, /*with_bias=*/true, rng);
  Tensor x(2, 6, 6, 2);
  x.fill_uniform(rng, -1.0F, 1.0F);
  Tensor y = layer.forward(x, /*training=*/true);
  EXPECT_EQ(y.shape(), Shape(2, 6, 6, 4));
  Tensor grad_in = layer.backward(y);
  EXPECT_EQ(grad_in.shape(), x.shape());
  EXPECT_EQ(layer.parameters().size(), 2U);
  EXPECT_GT(max_abs(layer.weight().grad), 0.0F);
}

TEST(Conv2dLayer, BackwardWithoutForwardThrows) {
  Rng rng(43);
  Conv2d layer("conv", 3, 3, 1, 1, Padding::kSame, false, rng);
  Tensor g(1, 4, 4, 1);
  EXPECT_THROW(layer.backward(g), std::logic_error);
}

// ------------------------------------------------------ transposed conv -----

TEST(ConvTranspose, OutputShapeIsScaled) {
  Rng rng(47);
  ConvTranspose2d layer("deconv", 9, 9, 56, 1, 2, rng);
  Tensor x(1, 6, 5, 56);
  x.fill_uniform(rng, -0.1F, 0.1F);
  Tensor y = layer.forward(x, false);
  EXPECT_EQ(y.shape(), Shape(1, 12, 10, 1));
}

TEST(ConvTranspose, AdjointOfStridedConv) {
  // <conv_T(x), y> == <x, conv(y)> with the shared kernel.
  Rng rng(53);
  constexpr std::int64_t scale = 2;
  Tensor x(1, 4, 4, 3);  // LR input, 3 channels
  x.fill_uniform(rng, -1.0F, 1.0F);
  Tensor w = he_normal_kernel(5, 5, 1, 3, rng);  // (kh, kw, out_c=1, in_c=3)
  Tensor up = conv_transpose2d(x, w, scale);     // (1, 8, 8, 1)
  Tensor y(1, 8, 8, 1);
  y.fill_uniform(rng, -1.0F, 1.0F);
  double lhs = 0.0;
  for (std::int64_t i = 0; i < up.numel(); ++i) {
    lhs += static_cast<double>(up.raw()[i]) * y.raw()[i];
  }
  Tensor down = conv2d(y, w, Padding::kSame, scale);  // (1, 4, 4, 3)
  double rhs = 0.0;
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    rhs += static_cast<double>(x.raw()[i]) * down.raw()[i];
  }
  EXPECT_NEAR(lhs, rhs, 1e-2);
}

TEST(ConvTranspose, GradientMatchesFiniteDifference) {
  Rng rng(59);
  ConvTranspose2d layer("deconv", 3, 3, 2, 1, 2, rng);
  Tensor x(1, 3, 3, 2);
  x.fill_uniform(rng, -1.0F, 1.0F);
  Tensor grad_out(1, 6, 6, 1);
  grad_out.fill_uniform(rng, -1.0F, 1.0F);
  layer.forward(x, true);
  nn::zero_gradients(layer.parameters());
  layer.backward(grad_out);
  Tensor& w = layer.weight().value;
  const Tensor& gw = layer.weight().grad;
  auto loss = [&](float delta, std::int64_t idx) {
    w.raw()[idx] += delta;
    Tensor y = conv_transpose2d(x, w, 2);
    w.raw()[idx] -= delta;
    double acc = 0.0;
    for (std::int64_t i = 0; i < y.numel(); ++i) {
      acc += static_cast<double>(y.raw()[i]) * grad_out.raw()[i];
    }
    return acc;
  };
  constexpr float kEps = 1e-3F;
  for (std::int64_t i = 0; i < w.numel(); i += 3) {
    const double numeric = (loss(kEps, i) - loss(-kEps, i)) / (2.0 * kEps);
    EXPECT_NEAR(gw.raw()[i], numeric, 5e-2) << "weight index " << i;
  }
}

// ---------------------------------------------------------- activations -----

TEST(Relu, ForwardClampsNegatives) {
  Tensor x(1, 1, 3, 1);
  x(0, 0, 0, 0) = -1.0F;
  x(0, 0, 1, 0) = 0.0F;
  x(0, 0, 2, 0) = 2.0F;
  Tensor y = relu(x);
  EXPECT_EQ(y(0, 0, 0, 0), 0.0F);
  EXPECT_EQ(y(0, 0, 2, 0), 2.0F);
}

TEST(Relu, BackwardMasksGradient) {
  Tensor x(1, 1, 2, 1);
  x(0, 0, 0, 0) = -1.0F;
  x(0, 0, 1, 0) = 1.0F;
  Tensor g(1, 1, 2, 1);
  g.fill(5.0F);
  Tensor gi = relu_backward(x, g);
  EXPECT_EQ(gi(0, 0, 0, 0), 0.0F);
  EXPECT_EQ(gi(0, 0, 1, 0), 5.0F);
}

TEST(PRelu, ForwardUsesPerChannelSlope) {
  PRelu layer("act", 2, 0.25F);
  layer.alpha().value.raw()[1] = 0.5F;
  Tensor x(1, 1, 1, 2);
  x(0, 0, 0, 0) = -2.0F;
  x(0, 0, 0, 1) = -2.0F;
  Tensor y = layer.forward(x, false);
  EXPECT_FLOAT_EQ(y(0, 0, 0, 0), -0.5F);
  EXPECT_FLOAT_EQ(y(0, 0, 0, 1), -1.0F);
}

TEST(PRelu, GradientMatchesFiniteDifference) {
  Rng rng(61);
  PRelu layer("act", 3);
  Tensor x(1, 4, 4, 3);
  x.fill_uniform(rng, -1.0F, 1.0F);
  Tensor grad_out(1, 4, 4, 3);
  grad_out.fill_uniform(rng, -1.0F, 1.0F);
  layer.forward(x, true);
  nn::zero_gradients(layer.parameters());
  Tensor grad_in = layer.backward(grad_out);

  auto loss_alpha = [&](std::int64_t idx, float delta) {
    layer.alpha().value.raw()[idx] += delta;
    Tensor y = layer.forward(x, false);
    layer.alpha().value.raw()[idx] -= delta;
    double acc = 0.0;
    for (std::int64_t i = 0; i < y.numel(); ++i) {
      acc += static_cast<double>(y.raw()[i]) * grad_out.raw()[i];
    }
    return acc;
  };
  constexpr float kEps = 1e-3F;
  for (std::int64_t c = 0; c < 3; ++c) {
    const double numeric = (loss_alpha(c, kEps) - loss_alpha(c, -kEps)) / (2.0 * kEps);
    EXPECT_NEAR(layer.alpha().grad.raw()[c], numeric, 5e-2);
  }
  // Input gradient at a negative input is alpha * upstream.
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    const float expected =
        x.raw()[i] > 0.0F
            ? grad_out.raw()[i]
            : layer.alpha().value.raw()[i % 3] * grad_out.raw()[i];
    EXPECT_NEAR(grad_in.raw()[i], expected, 1e-6F);
  }
}

// ------------------------------------------------------- depth to space -----

TEST(DepthToSpace, MatchesTfSemantics) {
  // 1x1 spatial, 4 channels, block 2 -> 2x2 single channel in row-major order.
  Tensor x(1, 1, 1, 4);
  for (int c = 0; c < 4; ++c) x(0, 0, 0, c) = static_cast<float>(c);
  Tensor y = depth_to_space(x, 2);
  EXPECT_EQ(y.shape(), Shape(1, 2, 2, 1));
  EXPECT_EQ(y(0, 0, 0, 0), 0.0F);
  EXPECT_EQ(y(0, 0, 1, 0), 1.0F);
  EXPECT_EQ(y(0, 1, 0, 0), 2.0F);
  EXPECT_EQ(y(0, 1, 1, 0), 3.0F);
}

TEST(DepthToSpace, RoundTripWithSpaceToDepth) {
  Rng rng(67);
  Tensor x(2, 3, 4, 8);
  x.fill_uniform(rng, -1.0F, 1.0F);
  Tensor y = depth_to_space(x, 2);
  EXPECT_EQ(y.shape(), Shape(2, 6, 8, 2));
  Tensor back = space_to_depth(y, 2);
  EXPECT_EQ(max_abs_diff(x, back), 0.0F);
}

TEST(DepthToSpace, DoubleShuffleEqualsBlock4) {
  // Two r=2 shuffles on 16 channels == one r=4 shuffle with suitably permuted
  // channels; we verify shapes and that both are permutations of the data.
  Rng rng(71);
  Tensor x(1, 2, 2, 16);
  x.fill_uniform(rng, 0.0F, 1.0F);
  Tensor twice = depth_to_space(depth_to_space(x, 2), 2);
  EXPECT_EQ(twice.shape(), Shape(1, 8, 8, 1));
  Tensor once = depth_to_space(x, 4);
  EXPECT_EQ(once.shape(), Shape(1, 8, 8, 1));
  EXPECT_NEAR(sum(twice), sum(once), 1e-4F);
}

TEST(DepthToSpace, RejectsBadChannelCount) {
  Tensor x(1, 2, 2, 3);
  EXPECT_THROW(depth_to_space(x, 2), std::invalid_argument);
  Tensor y(1, 3, 3, 1);
  EXPECT_THROW(space_to_depth(y, 2), std::invalid_argument);
}

TEST(DepthToSpaceLayer, BackwardIsExactInverse) {
  Rng rng(73);
  DepthToSpace layer("d2s", 2);
  Tensor x(1, 3, 3, 4);
  x.fill_uniform(rng, -1.0F, 1.0F);
  Tensor y = layer.forward(x, true);
  Tensor gi = layer.backward(y);
  EXPECT_EQ(max_abs_diff(gi, x), 0.0F);
}

// ----------------------------------------------------------------- init -----

TEST(Init, HeNormalStddev) {
  Rng rng(79);
  Tensor w = he_normal_kernel(3, 3, 64, 64, rng);
  double sq = 0.0;
  for (float v : w.data()) sq += static_cast<double>(v) * v;
  const double stddev = std::sqrt(sq / static_cast<double>(w.numel()));
  EXPECT_NEAR(stddev, std::sqrt(2.0 / (9.0 * 64.0)), 0.005);
}

TEST(Init, GlorotUniformBounds) {
  Rng rng(83);
  Tensor w = glorot_uniform_kernel(3, 3, 16, 16, rng);
  const float limit = std::sqrt(6.0F / (9.0F * 16 + 9.0F * 16));
  for (float v : w.data()) {
    EXPECT_GE(v, -limit);
    EXPECT_LE(v, limit);
  }
}

TEST(Init, IdentityKernelRejectsEven) {
  EXPECT_THROW(identity_kernel(2, 3, 4), std::invalid_argument);
  EXPECT_THROW(identity_kernel(3, 2, 4), std::invalid_argument);
}

TEST(LayerUtils, GradientNormAndZero) {
  Rng rng(89);
  Conv2d a("a", 1, 1, 1, 1, Padding::kSame, false, rng);
  Conv2d b("b", 1, 1, 1, 1, Padding::kSame, false, rng);
  auto params = collect_parameters({&a, &b});
  EXPECT_EQ(params.size(), 2U);
  a.weight().grad.fill(3.0F);
  b.weight().grad.fill(4.0F);
  EXPECT_FLOAT_EQ(gradient_norm(params), 5.0F);
  zero_gradients(params);
  EXPECT_FLOAT_EQ(gradient_norm(params), 0.0F);
}

TEST(LayerUtils, ParameterMapRoundTrip) {
  Rng rng(97);
  Conv2d a("layer", 3, 3, 2, 2, Padding::kSame, true, rng);
  auto params = a.parameters();
  TensorMap map = parameters_to_map(params);
  EXPECT_EQ(map.size(), 2U);
  Tensor saved = a.weight().value;
  a.weight().value.fill(0.0F);
  load_parameters_from_map(params, map);
  EXPECT_EQ(max_abs_diff(a.weight().value, saved), 0.0F);
}

}  // namespace
}  // namespace sesr::nn
