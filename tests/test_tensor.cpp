// Unit tests for the tensor substrate: Shape, Tensor, elementwise/structural
// ops, RNG determinism and binary serialization.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "tensor/serialize.hpp"
#include "tensor/tensor.hpp"
#include "tensor/tensor_ops.hpp"
#include "tensor/thread_pool.hpp"

namespace sesr {
namespace {

TEST(Shape, NumelAndAccessors) {
  Shape s(2, 3, 4, 5);
  EXPECT_EQ(s.n(), 2);
  EXPECT_EQ(s.h(), 3);
  EXPECT_EQ(s.w(), 4);
  EXPECT_EQ(s.c(), 5);
  EXPECT_EQ(s.numel(), 120);
}

TEST(Shape, OffsetIsRowMajorNhwc) {
  Shape s(2, 3, 4, 5);
  EXPECT_EQ(s.offset(0, 0, 0, 0), 0);
  EXPECT_EQ(s.offset(0, 0, 0, 1), 1);
  EXPECT_EQ(s.offset(0, 0, 1, 0), 5);
  EXPECT_EQ(s.offset(0, 1, 0, 0), 20);
  EXPECT_EQ(s.offset(1, 0, 0, 0), 60);
  EXPECT_EQ(s.offset(1, 2, 3, 4), 119);
}

TEST(Shape, Equality) {
  EXPECT_EQ(Shape(1, 2, 3, 4), Shape(1, 2, 3, 4));
  EXPECT_NE(Shape(1, 2, 3, 4), Shape(1, 2, 4, 3));
}

TEST(Shape, ValidRejectsNonPositive) {
  EXPECT_TRUE(Shape(1, 1, 1, 1).valid());
  EXPECT_FALSE(Shape(0, 1, 1, 1).valid());
  EXPECT_FALSE(Shape(1, -1, 1, 1).valid());
}

TEST(Shape, NumelOverflowThrows) {
  Shape s(1LL << 31, 1LL << 31, 2, 1);
  EXPECT_THROW(s.numel(), std::overflow_error);
}

TEST(Shape, ToStringFormat) { EXPECT_EQ(Shape(1, 2, 3, 4).to_string(), "[1, 2, 3, 4]"); }

TEST(Tensor, ConstructsZeroFilled) {
  Tensor t(2, 3, 3, 1);
  EXPECT_EQ(t.numel(), 18);
  for (float v : t.data()) EXPECT_EQ(v, 0.0F);
}

TEST(Tensor, InvalidShapeThrows) {
  EXPECT_THROW(Tensor(Shape(0, 1, 1, 1)), std::invalid_argument);
}

TEST(Tensor, DataSizeMismatchThrows) {
  EXPECT_THROW(Tensor(Shape(1, 1, 1, 2), std::vector<float>{1.0F}), std::invalid_argument);
}

TEST(Tensor, ElementAccessRoundTrip) {
  Tensor t(1, 2, 2, 2);
  t(0, 1, 0, 1) = 7.5F;
  EXPECT_EQ(t(0, 1, 0, 1), 7.5F);
  EXPECT_EQ(t.at(0, 1, 0, 1), 7.5F);
}

TEST(Tensor, AtThrowsOutOfRange) {
  Tensor t(1, 2, 2, 2);
  EXPECT_THROW(t.at(0, 2, 0, 0), std::out_of_range);
  EXPECT_THROW(t.at(-1, 0, 0, 0), std::out_of_range);
  EXPECT_THROW(t.at(0, 0, 0, 2), std::out_of_range);
}

TEST(Tensor, FillAndZero) {
  Tensor t(1, 2, 2, 1);
  t.fill(3.0F);
  for (float v : t.data()) EXPECT_EQ(v, 3.0F);
  t.zero();
  for (float v : t.data()) EXPECT_EQ(v, 0.0F);
}

TEST(Tensor, ReshapedPreservesData) {
  Tensor t(1, 2, 2, 1);
  t(0, 0, 0, 0) = 1.0F;
  t(0, 1, 1, 0) = 4.0F;
  Tensor r = t.reshaped(Shape(1, 1, 4, 1));
  EXPECT_EQ(r(0, 0, 0, 0), 1.0F);
  EXPECT_EQ(r(0, 0, 3, 0), 4.0F);
  EXPECT_THROW(t.reshaped(Shape(1, 1, 5, 1)), std::invalid_argument);
}

TEST(Rng, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(Rng, ForkDecouplesStreams) {
  Rng a(42);
  Rng fork = a.fork();
  const float after_fork = a.uniform();
  Rng c(42);
  (void)c.fork();
  EXPECT_EQ(after_fork, c.uniform());  // fork consumes exactly one draw
  (void)fork;
}

TEST(Rng, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  double sum = 0.0;
  double sq = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double v = rng.normal(1.0F, 2.0F);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / kN;
  const double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(TensorOps, AddSubScale) {
  Tensor a(1, 1, 2, 1);
  Tensor b(1, 1, 2, 1);
  a(0, 0, 0, 0) = 1.0F;
  a(0, 0, 1, 0) = 2.0F;
  b(0, 0, 0, 0) = 10.0F;
  b(0, 0, 1, 0) = 20.0F;
  Tensor c = add(a, b);
  EXPECT_EQ(c(0, 0, 0, 0), 11.0F);
  Tensor d = sub(b, a);
  EXPECT_EQ(d(0, 0, 1, 0), 18.0F);
  Tensor e = scale(a, 3.0F);
  EXPECT_EQ(e(0, 0, 1, 0), 6.0F);
  add_inplace(a, b);
  EXPECT_EQ(a(0, 0, 0, 0), 11.0F);
  axpy_inplace(a, b, -1.0F);
  EXPECT_EQ(a(0, 0, 0, 0), 1.0F);
}

TEST(TensorOps, ShapeMismatchThrows) {
  Tensor a(1, 1, 2, 1);
  Tensor b(1, 2, 1, 1);
  EXPECT_THROW(add(a, b), std::invalid_argument);
  EXPECT_THROW(max_abs_diff(a, b), std::invalid_argument);
}

TEST(TensorOps, Reductions) {
  Tensor a(1, 1, 4, 1);
  a(0, 0, 0, 0) = -3.0F;
  a(0, 0, 1, 0) = 4.0F;
  EXPECT_FLOAT_EQ(sum(a), 1.0F);
  EXPECT_FLOAT_EQ(mean(a), 0.25F);
  EXPECT_FLOAT_EQ(max_abs(a), 4.0F);
  EXPECT_FLOAT_EQ(l2_norm(a), 5.0F);
}

TEST(TensorOps, PadSpatial) {
  Tensor a(1, 2, 2, 1);
  a.fill(1.0F);
  Tensor p = pad_spatial(a, 1, 2, 3, 0);
  EXPECT_EQ(p.shape(), Shape(1, 5, 5, 1));
  EXPECT_EQ(p(0, 0, 3, 0), 0.0F);
  EXPECT_EQ(p(0, 1, 3, 0), 1.0F);
  EXPECT_EQ(p(0, 2, 4, 0), 1.0F);
  EXPECT_EQ(p(0, 3, 3, 0), 0.0F);
  EXPECT_THROW(pad_spatial(a, -1, 0, 0, 0), std::invalid_argument);
}

TEST(TensorOps, CropSpatial) {
  Tensor a(1, 4, 4, 1);
  a(0, 1, 2, 0) = 5.0F;
  Tensor c = crop_spatial(a, 1, 2, 2, 2);
  EXPECT_EQ(c.shape(), Shape(1, 2, 2, 1));
  EXPECT_EQ(c(0, 0, 0, 0), 5.0F);
  EXPECT_THROW(crop_spatial(a, 3, 3, 2, 2), std::invalid_argument);
}

TEST(TensorOps, CropIsInverseOfPad) {
  Rng rng(3);
  Tensor a(2, 3, 4, 2);
  a.fill_uniform(rng, -1.0F, 1.0F);
  Tensor padded = pad_spatial(a, 2, 1, 1, 2);
  Tensor back = crop_spatial(padded, 2, 1, 3, 4);
  EXPECT_EQ(max_abs_diff(a, back), 0.0F);
}

TEST(TensorOps, ReverseSpatialInvolution) {
  Rng rng(5);
  Tensor a(1, 3, 5, 2);
  a.fill_uniform(rng, -1.0F, 1.0F);
  Tensor twice = reverse_spatial(reverse_spatial(a));
  EXPECT_EQ(max_abs_diff(a, twice), 0.0F);
  Tensor r = reverse_spatial(a);
  EXPECT_EQ(r(0, 0, 0, 0), a(0, 2, 4, 0));
  EXPECT_EQ(r(0, 2, 4, 1), a(0, 0, 0, 1));
}

TEST(TensorOps, TransposePermutes) {
  Tensor a(2, 3, 4, 5);
  Rng rng(9);
  a.fill_uniform(rng, -1.0F, 1.0F);
  Tensor t = transpose(a, {1, 2, 0, 3});
  EXPECT_EQ(t.shape(), Shape(3, 4, 2, 5));
  EXPECT_EQ(t(1, 2, 0, 3), a(0, 1, 2, 3));
  // The inverse permutation restores the original.
  Tensor back = transpose(t, {2, 0, 1, 3});
  EXPECT_EQ(max_abs_diff(a, back), 0.0F);
}

TEST(TensorOps, TransposeRejectsBadPerm) {
  Tensor a(1, 1, 1, 1);
  EXPECT_THROW(transpose(a, {0, 0, 1, 2}), std::invalid_argument);
  EXPECT_THROW(transpose(a, {0, 1, 2, 4}), std::invalid_argument);
}

TEST(TensorOps, ConcatChannels) {
  Tensor a(1, 2, 2, 1);
  Tensor b(1, 2, 2, 2);
  a.fill(1.0F);
  b.fill(2.0F);
  Tensor c = concat_channels(a, b);
  EXPECT_EQ(c.shape(), Shape(1, 2, 2, 3));
  EXPECT_EQ(c(0, 1, 1, 0), 1.0F);
  EXPECT_EQ(c(0, 1, 1, 2), 2.0F);
  Tensor bad(1, 3, 2, 1);
  EXPECT_THROW(concat_channels(a, bad), std::invalid_argument);
}

TEST(TensorOps, BatchSliceAndSet) {
  Tensor batch(3, 2, 2, 1);
  Tensor img(1, 2, 2, 1);
  img.fill(4.0F);
  set_batch(batch, 2, img);
  Tensor out = slice_batch(batch, 2);
  EXPECT_EQ(max_abs_diff(out, img), 0.0F);
  Tensor zero = slice_batch(batch, 0);
  EXPECT_EQ(max_abs(zero), 0.0F);
  EXPECT_THROW(slice_batch(batch, 3), std::out_of_range);
  EXPECT_THROW(set_batch(batch, -1, img), std::out_of_range);
}

TEST(ThreadPool, InlineModeRunsEveryIndex) {
  ThreadPool pool(1);  // inline
  EXPECT_EQ(pool.worker_count(), 0U);
  std::vector<int> hits(10, 0);
  pool.parallel_for(0, 10, [&](std::int64_t i) { ++hits[static_cast<std::size_t>(i)]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, WorkersRunEveryIndexExactlyOnce) {
  // Pool size counts the participating caller, so size 3 = 2 workers.
  ThreadPool pool(3);
  EXPECT_EQ(pool.worker_count(), 2U);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(0, 100, [&](std::int64_t i) { ++hits[static_cast<std::size_t>(i)]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(5, 5, [&](std::int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ExceptionsPropagateToCaller) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 8,
                                 [](std::int64_t i) {
                                   if (i == 3) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool stays usable afterwards.
  std::atomic<int> count{0};
  pool.parallel_for(0, 4, [&](std::int64_t) { ++count; });
  EXPECT_EQ(count.load(), 4);
}

TEST(ThreadPool, ReentrantCallsRunInline) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.parallel_for(0, 4, [&](std::int64_t) {
    pool.parallel_for(0, 3, [&](std::int64_t) { ++count; });
  });
  EXPECT_EQ(count.load(), 12);
}

// Pool size the global pool should have picked: SESR_NUM_THREADS wins when
// set; otherwise hardware_concurrency() (<= 1 means inline, zero workers).
unsigned expected_global_threads() {
  if (const char* env = std::getenv("SESR_NUM_THREADS")) {
    const long n = std::strtol(env, nullptr, 10);
    return n > 0 ? static_cast<unsigned>(n) : 1U;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1U;
}

TEST(ThreadPool, GlobalSizeFollowsEnvThenHardware) {
  // The caller is one of the compute threads, so N total = N - 1 workers.
  const unsigned expected = expected_global_threads();
  EXPECT_EQ(ThreadPool::global().worker_count(), expected <= 1 ? 0U : expected - 1);
}

TEST(ThreadPool, SetGlobalThreadsReplacesPool) {
  ThreadPool::set_global_threads(3);
  EXPECT_EQ(ThreadPool::global().worker_count(), 2U);
  std::atomic<int> count{0};
  ThreadPool::global().parallel_for(0, 17, [&](std::int64_t) { ++count; });
  EXPECT_EQ(count.load(), 17);
  ThreadPool::set_global_threads(expected_global_threads());
}

TEST(ThreadPool, ChunksCoverRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(103);
  std::atomic<int> calls{0};
  pool.parallel_for_chunks(0, 103, 10, [&](std::int64_t lo, std::int64_t hi) {
    EXPECT_LT(lo, hi);
    EXPECT_LE(hi - lo, 10);
    ++calls;
    for (std::int64_t i = lo; i < hi; ++i) ++hits[static_cast<std::size_t>(i)];
  });
  EXPECT_EQ(calls.load(), 11);  // ceil(103 / 10) — boundaries fixed by grain alone
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ChunkBoundariesMatchBetweenInlineAndThreaded) {
  // The deterministic-reduction contract: both pools decompose [5, 47) with
  // grain 8 into the same chunks; only the execution order may differ.
  auto collect = [](ThreadPool& pool) {
    std::mutex m;
    std::vector<std::pair<std::int64_t, std::int64_t>> chunks;
    pool.parallel_for_chunks(5, 47, 8, [&](std::int64_t lo, std::int64_t hi) {
      std::lock_guard<std::mutex> lock(m);
      chunks.emplace_back(lo, hi);
    });
    std::sort(chunks.begin(), chunks.end());
    return chunks;
  };
  ThreadPool serial(1);
  ThreadPool threaded(4);
  EXPECT_EQ(collect(serial), collect(threaded));
}

TEST(ThreadPool, ChunkedExceptionsPropagate) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for_chunks(0, 40, 4,
                                        [](std::int64_t lo, std::int64_t) {
                                          if (lo == 12) throw std::runtime_error("boom");
                                        }),
               std::runtime_error);
  std::atomic<int> count{0};
  pool.parallel_for_chunks(0, 8, 2, [&](std::int64_t lo, std::int64_t hi) { count += hi - lo; });
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPool, ConcurrentExternalSubmittersSerialize) {
  // Two non-worker threads submitting at once must not clobber each other's
  // batch: every index of both loops runs exactly once. (Regression for the
  // check-then-install TOCTOU; run under -DSESR_SANITIZE=thread for full
  // effect.)
  ThreadPool pool(4);
  constexpr int kIters = 200;
  constexpr std::int64_t kIndices = 64;
  std::atomic<std::int64_t> total{0};
  std::vector<std::atomic<int>> hits(2 * kIndices);
  auto submitter = [&](std::int64_t base) {
    for (int it = 0; it < kIters; ++it) {
      pool.parallel_for(0, kIndices, [&](std::int64_t i) {
        ++hits[static_cast<std::size_t>(base + i)];
        ++total;
      });
    }
  };
  std::thread a(submitter, 0);
  std::thread b(submitter, kIndices);
  a.join();
  b.join();
  EXPECT_EQ(total.load(), 2 * kIters * kIndices);
  for (const auto& h : hits) EXPECT_EQ(h.load(), kIters);
}

TEST(ThreadPool, BackToBackBatchesNeverLeakAcrossBatches) {
  // Rapid-fire tiny batches maximize the window where a worker wakes for
  // batch G after batch G+1 is installed. A stale worker must see only its
  // own (exhausted) batch — never double-run chunk 0 of the next one or
  // touch a destroyed std::function. (Regression for the stale-worker race;
  // run under -DSESR_SANITIZE=thread for full effect.)
  ThreadPool pool(4);
  for (int it = 0; it < 2000; ++it) {
    std::atomic<int> calls{0};
    pool.parallel_for_chunks(0, 8, 1, [&](std::int64_t, std::int64_t) { ++calls; });
    ASSERT_EQ(calls.load(), 8) << "iteration " << it;
  }
}

TEST(Serialize, TensorRoundTripThroughStream) {
  Rng rng(13);
  Tensor t(2, 3, 4, 5);
  t.fill_uniform(rng, -10.0F, 10.0F);
  std::stringstream ss;
  write_tensor(ss, t);
  Tensor back = read_tensor(ss);
  EXPECT_EQ(back.shape(), t.shape());
  EXPECT_EQ(max_abs_diff(back, t), 0.0F);
}

TEST(Serialize, FileRoundTripMultipleTensors) {
  const std::string path = (std::filesystem::temp_directory_path() / "sesr_test.ckpt").string();
  Rng rng(17);
  TensorMap map;
  Tensor a(1, 2, 2, 1);
  a.fill_uniform(rng, 0.0F, 1.0F);
  Tensor b(3, 1, 1, 7);
  b.fill_uniform(rng, -1.0F, 0.0F);
  map.emplace("alpha", a);
  map.emplace("beta", b);
  save_tensors(path, map);
  TensorMap back = load_tensors(path);
  ASSERT_EQ(back.size(), 2U);
  EXPECT_EQ(max_abs_diff(back.at("alpha"), a), 0.0F);
  EXPECT_EQ(max_abs_diff(back.at("beta"), b), 0.0F);
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW(load_tensors("/nonexistent/path/x.ckpt"), std::runtime_error);
}

TEST(Serialize, CorruptMagicThrows) {
  const std::string path = (std::filesystem::temp_directory_path() / "sesr_bad.ckpt").string();
  {
    std::ofstream os(path, std::ios::binary);
    os << "NOPE garbage";
  }
  EXPECT_THROW(load_tensors(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Serialize, TruncatedStreamThrows) {
  std::stringstream ss;
  Tensor t(1, 2, 2, 1);
  write_tensor(ss, t);
  std::string s = ss.str();
  std::stringstream cut(s.substr(0, s.size() - 3));
  EXPECT_THROW(read_tensor(cut), std::runtime_error);
}

}  // namespace
}  // namespace sesr
