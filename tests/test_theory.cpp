// Executable checks of the paper's Section 4 theory:
//   Eq. 5  — RepVGG's collapsed-weight update is EXACTLY a VGG update with
//            lambda = 2*eta (no adaptivity), step for step.
//   Eq. 3/4 — ExpandNet and SESR updates are adaptive (differ from VGG), and
//            SESR carries the extra +gamma term from the identity skip.
//   Vanishing gradients — deep multiplicative chains without skips lose
//            gradient magnitude exponentially; with skips they do not.
#include <gtest/gtest.h>

#include <cmath>

#include "theory/overparam.hpp"

namespace sesr::theory {
namespace {

constexpr double kSxx = 1.0;   // E[x^2]
constexpr double kSxy = 3.0;   // E[x y]  -> optimum beta* = 3
constexpr double kEta = 0.01;

TEST(ScalarBlock, CollapsedWeights) {
  ScalarBlock b;
  b.w1 = 0.5;
  b.w2 = 2.0;
  b.scheme = Scheme::kVgg;
  EXPECT_DOUBLE_EQ(b.beta(), 0.5);
  b.scheme = Scheme::kExpandNet;
  EXPECT_DOUBLE_EQ(b.beta(), 1.0);
  b.scheme = Scheme::kSesr;
  EXPECT_DOUBLE_EQ(b.beta(), 2.0);
  b.scheme = Scheme::kRepVgg;
  EXPECT_DOUBLE_EQ(b.beta(), 3.5);
}

TEST(Theory, RepVggUpdateEqualsVggWithDoubledLr) {
  // Start both at the same collapsed beta; RepVGG with eta must track VGG with
  // lambda = 2*eta exactly (Eq. 5), to machine precision, for many steps.
  const double beta0 = 0.2;
  // RepVGG: w1 + w2 + 1 = beta0 -> pick w1 = w2 = (beta0 - 1) / 2.
  auto repvgg = train_scalar(Scheme::kRepVgg, (beta0 - 1.0) / 2.0, (beta0 - 1.0) / 2.0, kSxx,
                             kSxy, kEta, 200);
  auto vgg = train_scalar(Scheme::kVgg, beta0, 0.0, kSxx, kSxy, 2.0 * kEta, 200);
  ASSERT_EQ(repvgg.size(), vgg.size());
  for (std::size_t t = 0; t < repvgg.size(); ++t) {
    EXPECT_NEAR(repvgg[t], vgg[t], 1e-12) << "step " << t;
  }
}

TEST(Theory, SesrUpdateDiffersFromVggAndRepVgg) {
  // Same starting beta, same eta: SESR's trajectory is NOT the VGG trajectory
  // (the overparameterization is doing something).
  const double beta0 = 0.2;
  // SESR: w1*w2 + 1 = beta0 with w2 = 1 -> w1 = beta0 - 1.
  auto sesr = train_scalar(Scheme::kSesr, beta0 - 1.0, 1.0, kSxx, kSxy, kEta, 50);
  auto vgg = train_scalar(Scheme::kVgg, beta0, 0.0, kSxx, kSxy, kEta, 50);
  auto vgg2x = train_scalar(Scheme::kVgg, beta0, 0.0, kSxx, kSxy, 2.0 * kEta, 50);
  double max_diff = 0.0;
  double max_diff_2x = 0.0;
  for (std::size_t t = 1; t < sesr.size(); ++t) {
    max_diff = std::max(max_diff, std::fabs(sesr[t] - vgg[t]));
    max_diff_2x = std::max(max_diff_2x, std::fabs(sesr[t] - vgg2x[t]));
  }
  EXPECT_GT(max_diff, 1e-4);
  EXPECT_GT(max_diff_2x, 1e-4);
}

TEST(Theory, ExpandNetUpdateIsAdaptive) {
  const double beta0 = 0.2;
  auto expand = train_scalar(Scheme::kExpandNet, beta0, 1.0, kSxx, kSxy, kEta, 50);
  auto vgg = train_scalar(Scheme::kVgg, beta0, 0.0, kSxx, kSxy, kEta, 50);
  double max_diff = 0.0;
  for (std::size_t t = 1; t < expand.size(); ++t) {
    max_diff = std::max(max_diff, std::fabs(expand[t] - vgg[t]));
  }
  EXPECT_GT(max_diff, 1e-4);
}

TEST(Theory, AllSchemesConvergeToOptimum) {
  for (const Scheme s : {Scheme::kVgg, Scheme::kExpandNet, Scheme::kSesr, Scheme::kRepVgg}) {
    const auto traj = train_scalar(s, 0.3, 0.9, kSxx, kSxy, 0.05, 2000);
    EXPECT_NEAR(traj.back(), kSxy / kSxx, 1e-3) << "scheme " << static_cast<int>(s);
  }
}

TEST(Theory, SesrFirstStepContainsGammaTerm) {
  // Eq. 4 vs Eq. 3: with identical w1, w2, eta and the same d(loss)/d(beta),
  // beta_{SESR}^(1) - beta_{SESR}^(0) differs from beta_{EN}^(1) - beta_{EN}^(0)
  // exactly because the momentum-like term acts on (beta - I) instead of beta.
  const double w1 = 0.4;
  const double w2 = 0.8;
  ScalarBlock sesr{Scheme::kSesr, w1, w2};
  ScalarBlock expand{Scheme::kExpandNet, w1, w2};
  const double grad = 1.0;  // same upstream gradient for both
  const double dsesr = sesr.step(grad, kEta) - (w1 * w2 + 1.0);
  const double dexpand = expand.step(grad, kEta) - (w1 * w2);
  // First-order terms are identical; the O(eta^2) cross term also matches, so
  // the *steps* match — the adaptivity difference appears from step 2 on,
  // once the gradients (which depend on beta) diverge.
  EXPECT_NEAR(dsesr, dexpand, 1e-12);
  const double g_sesr = kSxx * sesr.beta() - kSxy;
  const double g_expand = kSxx * expand.beta() - kSxy;
  EXPECT_GT(std::fabs(g_sesr - g_expand), 0.1);  // betas differ by ~1
}

TEST(Theory, ChainGradientVanishesWithoutSkips) {
  const double w = 0.5;  // sub-unit weights, the regime of trained compact nets
  const double g13 = chain_gradient_no_skip(w, 13);
  const double g26 = chain_gradient_no_skip(w, 26);
  EXPECT_LT(g13, 1e-3);
  EXPECT_LT(g26, 1e-7);
  EXPECT_LT(g26, g13 * 1e-3);  // exponential decay in depth
}

TEST(Theory, ChainGradientSurvivesWithSkips) {
  const double w = 0.5;
  for (const std::int64_t depth : {1, 13, 26, 52}) {
    EXPECT_GE(chain_gradient_with_skip(w, depth), std::fabs(w))
        << "depth " << depth;  // never below |w| — no vanishing
  }
  // And it is monotonically non-decreasing in depth for |w| > 0.
  EXPECT_GE(chain_gradient_with_skip(w, 26), chain_gradient_with_skip(w, 13));
}

TEST(Theory, SkipVsNoSkipGapMatchesPaperNarrative) {
  // Paper Sec 4.3: a 13-layer net expanded to 26 layers by linear blocks
  // without residuals is hard to train; with SESR skips it is not.
  const double w = 0.6;
  const double without = chain_gradient_no_skip(w, 13);   // 26 multiplicative layers
  const double with_skip = chain_gradient_with_skip(w, 13);
  EXPECT_GT(with_skip / without, 1e3);
}

TEST(Theory, DepthValidation) {
  EXPECT_THROW(chain_gradient_no_skip(0.5, 0), std::invalid_argument);
  EXPECT_THROW(train_scalar(Scheme::kVgg, 0.0, 0.0, 1.0, 1.0, 0.1, 0), std::invalid_argument);
}

}  // namespace
}  // namespace sesr::theory
