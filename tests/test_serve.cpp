// Deterministic concurrency tests for the batched eval server (src/serve).
//
// The load-bearing promises under test:
//   1. Every accepted future completes — under multi-producer stress, under
//      shutdown-while-full, and under overload.
//   2. Served results are BIT-IDENTICAL to the single-threaded reference for
//      the same execution path (and, for exact-halo tiling, within float
//      tolerance of the full-frame pass).
//   3. The bounded queue's reject policy actually fires when the pipeline is
//      saturated, and blocked producers drain on shutdown without deadlock.
//
// The stress test is seeded: SESR_SERVE_STRESS_ITERS overrides the iteration
// count (CI's serve-tsan soak runs 100 under ThreadSanitizer). Worker threads
// are made deterministic where it matters via ServeOptions::worker_hook,
// which lets a test hold all workers on a latch.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <future>
#include <thread>
#include <vector>

#include "core/sesr_inference.hpp"
#include "core/sesr_network.hpp"
#include "core/streaming.hpp"
#include "core/tiled_inference.hpp"
#include "serve/request_queue.hpp"
#include "serve/server.hpp"
#include "tensor/tensor_ops.hpp"

namespace sesr::serve {
namespace {

core::SesrConfig small_config(bool with_bias = false, bool prelu = true) {
  core::SesrConfig config;
  config.f = 8;
  config.m = 2;
  config.scale = 2;
  config.expand = 16;
  config.prelu = prelu;
  config.with_bias = with_bias;
  return config;
}

core::SesrInference make_inference(std::uint64_t seed, const core::SesrConfig& config) {
  Rng rng(seed);
  core::SesrNetwork network(config, rng);
  return core::SesrInference(network);
}

Tensor make_frame(std::uint64_t seed, std::int64_t h, std::int64_t w) {
  Rng rng(seed);
  Tensor frame(1, h, w, 1);
  frame.fill_uniform(rng, 0.0F, 1.0F);
  return frame;
}

int stress_iterations() {
  if (const char* v = std::getenv("SESR_SERVE_STRESS_ITERS")) {
    const long n = std::strtol(v, nullptr, 10);
    if (n > 0) return static_cast<int>(n);
  }
  return 10;
}

// ------------------------------------------------------- RequestQueue unit

TEST(RequestQueue, RejectPolicyFailsFastWhenFull) {
  RequestQueue queue(2);
  for (int i = 0; i < 2; ++i) {
    FrameRequest r;
    r.frame = make_frame(1, 4, 4);
    ASSERT_EQ(queue.push(r, OverloadPolicy::kReject), RequestQueue::PushResult::kAccepted);
  }
  FrameRequest overflow;
  overflow.frame = make_frame(2, 4, 4);
  EXPECT_EQ(queue.push(overflow, OverloadPolicy::kReject), RequestQueue::PushResult::kFull);
  // The rejected request is still owned by the caller; its promise is intact.
  overflow.promise.set_exception(std::make_exception_ptr(QueueFullError()));
}

TEST(RequestQueue, BlockedPushReturnsClosedOnShutdown) {
  RequestQueue queue(1);
  FrameRequest first;
  first.frame = make_frame(3, 4, 4);
  ASSERT_EQ(queue.push(first, OverloadPolicy::kBlock), RequestQueue::PushResult::kAccepted);
  std::promise<RequestQueue::PushResult> result;
  std::thread blocked([&] {
    FrameRequest r;
    r.frame = make_frame(4, 4, 4);
    result.set_value(queue.push(r, OverloadPolicy::kBlock));
  });
  queue.close();  // wakes the blocked producer
  EXPECT_EQ(result.get_future().get(), RequestQueue::PushResult::kClosed);
  blocked.join();
}

TEST(RequestQueue, PopBatchGroupsCompatibleShapesFifo) {
  RequestQueue queue(8);
  const std::int64_t dims[][2] = {{4, 4}, {4, 4}, {6, 8}, {4, 4}};
  for (std::uint64_t i = 0; i < 4; ++i) {
    FrameRequest r;
    r.id = i;
    r.frame = make_frame(i, dims[i][0], dims[i][1]);
    r.enqueue_time = std::chrono::steady_clock::now();
    ASSERT_EQ(queue.push(r, OverloadPolicy::kReject), RequestQueue::PushResult::kAccepted);
  }
  auto batch = queue.pop_batch(8, std::chrono::microseconds(0));
  ASSERT_EQ(batch.size(), 3U);  // the three 4x4 frames, oldest shape first
  EXPECT_EQ(batch[0].id, 0U);
  EXPECT_EQ(batch[1].id, 1U);
  EXPECT_EQ(batch[2].id, 3U);
  auto rest = queue.pop_batch(8, std::chrono::microseconds(0));
  ASSERT_EQ(rest.size(), 1U);
  EXPECT_EQ(rest[0].id, 2U);
}

TEST(RequestQueue, CloseDrainsRemainingThenReturnsEmpty) {
  RequestQueue queue(4);
  for (std::uint64_t i = 0; i < 3; ++i) {
    FrameRequest r;
    r.frame = make_frame(i, 5, 5);
    ASSERT_EQ(queue.push(r, OverloadPolicy::kReject), RequestQueue::PushResult::kAccepted);
  }
  queue.close();
  std::size_t drained = 0;
  while (true) {
    auto batch = queue.pop_batch(2, std::chrono::microseconds(0));
    if (batch.empty()) break;
    drained += batch.size();
  }
  EXPECT_EQ(drained, 3U);
}

// ------------------------------------------------- batching bit-exactness

TEST(BatchedUpscale, StackedBatchBitIdenticalToSingleFrames) {
  const core::SesrInference inference = make_inference(11, small_config());
  std::vector<Tensor> frames;
  Tensor batched(5, 12, 14, 1);
  for (std::int64_t i = 0; i < 5; ++i) {
    frames.push_back(make_frame(100 + static_cast<std::uint64_t>(i), 12, 14));
    set_batch(batched, i, frames.back());
  }
  const Tensor out = inference.upscale(batched);
  for (std::int64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(max_abs_diff(slice_batch(out, i), inference.upscale(frames[i])), 0.0F)
        << "sample " << i;
  }
}

// ------------------------------------------------------- end-to-end server

TEST(EvalServer, SingleFrameRoundTrip) {
  const core::SesrInference inference = make_inference(21, small_config());
  ServeOptions options;
  options.workers = 2;
  EvalServer server(inference, options);
  const Tensor frame = make_frame(77, 16, 16);
  Tensor out = server.submit(frame).get();
  EXPECT_EQ(max_abs_diff(out, inference.upscale(frame)), 0.0F);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, 1U);
  EXPECT_EQ(stats.completed, 1U);
  EXPECT_EQ(stats.rejected, 0U);
}

TEST(EvalServer, Fp16PrecisionBitIdenticalToDirectFp16Upscale) {
  // Worker replicas round their weight caches at construction; a served fp16
  // frame must match a direct fp16 upscale on the source network bit for bit,
  // and must actually differ from the fp32 answer (the knob is not a no-op).
  core::SesrInference inference = make_inference(31, small_config());
  ServeOptions options;
  options.workers = 2;
  options.precision = core::InferencePrecision::kFp16;
  EvalServer server(inference, options);
  const Tensor frame = make_frame(79, 16, 16);
  Tensor served = server.submit(frame).get();
  const Tensor fp32_ref = inference.upscale(frame);
  inference.set_precision(core::InferencePrecision::kFp16);
  EXPECT_EQ(max_abs_diff(served, inference.upscale(frame)), 0.0F);
  EXPECT_GT(max_abs_diff(served, fp32_ref), 0.0F);
}

TEST(EvalServer, BadFrameShapeFailsTheFutureNotTheServer) {
  const core::SesrInference inference = make_inference(22, small_config());
  EvalServer server(inference, ServeOptions{});
  EXPECT_THROW(server.submit(Tensor(2, 8, 8, 1)).get(), std::invalid_argument);
  EXPECT_THROW(server.submit(Tensor(1, 8, 8, 3)).get(), std::invalid_argument);
  // The server still serves after bad submissions.
  const Tensor frame = make_frame(5, 8, 8);
  EXPECT_EQ(max_abs_diff(server.submit(frame).get(), inference.upscale(frame)), 0.0F);
}

TEST(EvalServer, SubmitAfterShutdownFailsWithServerClosed) {
  const core::SesrInference inference = make_inference(23, small_config());
  EvalServer server(inference, ServeOptions{});
  server.shutdown();
  EXPECT_THROW(server.submit(make_frame(6, 8, 8)).get(), ServerClosedError);
}

TEST(EvalServer, StreamingModeRejectsBiasedNetworks) {
  const core::SesrInference inference = make_inference(24, small_config(/*with_bias=*/true));
  ServeOptions options;
  options.mode = ExecMode::kStreaming;
  EXPECT_THROW(EvalServer(inference, options), std::invalid_argument);
}

TEST(EvalServer, TiledFanOutBitIdenticalToUpscaleTiled) {
  const core::SesrInference inference = make_inference(25, small_config());
  ServeOptions options;
  options.workers = 3;
  options.mode = ExecMode::kTiled;
  options.tiling.tile_h = 16;
  options.tiling.tile_w = 16;
  EvalServer server(inference, options);
  const Tensor frame = make_frame(88, 40, 52);
  const Tensor out = server.submit(frame).get();
  EXPECT_EQ(max_abs_diff(out, core::upscale_tiled(inference, frame, options.tiling)), 0.0F);
  // Exact halo: the fan-out result also matches the full frame to tolerance.
  EXPECT_LT(max_abs_diff(out, inference.upscale(frame)), 1e-5F);
  EXPECT_GE(server.stats().tiles, 6U);  // ceil(40/16) * ceil(52/16) = 3 * 4
}

// Deterministic overload: all workers held on a latch, so the pipeline's
// absorption capacity is finite and a bounded burst MUST trip kReject.
TEST(EvalServer, RejectPolicyFiresUnderOverloadAndAcceptedWorkCompletes) {
  const core::SesrInference inference = make_inference(26, small_config());
  std::atomic<bool> release{false};
  ServeOptions options;
  options.workers = 1;
  options.max_batch = 1;
  options.max_delay_us = 0;
  options.queue_capacity = 2;
  options.overload = OverloadPolicy::kReject;
  options.worker_hook = [&] {
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  EvalServer server(inference, options);
  const Tensor frame = make_frame(9, 10, 10);
  // Queue(2) + batcher(1) + dispatch(2) + worker(1) bounds absorption; with
  // nothing draining, 50 submissions must see at least one rejection.
  std::vector<std::future<Tensor>> futures;
  bool saw_reject = false;
  for (int i = 0; i < 50 && !saw_reject; ++i) {
    futures.push_back(server.submit(frame));
    saw_reject = server.stats().rejected > 0;
  }
  ASSERT_TRUE(saw_reject);
  release.store(true, std::memory_order_release);
  const Tensor want = inference.upscale(frame);
  std::size_t completed = 0;
  std::size_t rejected = 0;
  for (auto& f : futures) {
    try {
      EXPECT_EQ(max_abs_diff(f.get(), want), 0.0F);
      ++completed;
    } catch (const QueueFullError&) {
      ++rejected;
    }
  }
  EXPECT_EQ(completed + rejected, futures.size());
  EXPECT_GE(completed, 1U);
  EXPECT_GE(rejected, 1U);
}

// Shutdown with a saturated pipeline and blocked producers: every accepted
// request must still complete, and shutdown() must not deadlock.
TEST(EvalServer, ShutdownWhileFullDrainsWithoutDeadlock) {
  const core::SesrInference inference = make_inference(27, small_config());
  std::atomic<bool> release{false};
  ServeOptions options;
  options.workers = 2;
  options.max_batch = 2;
  options.max_delay_us = 100;
  options.queue_capacity = 4;
  options.overload = OverloadPolicy::kBlock;
  options.worker_hook = [&] {
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  EvalServer server(inference, options);
  const Tensor frame = make_frame(13, 10, 12);
  const Tensor want = inference.upscale(frame);
  std::vector<std::future<Tensor>> futures(8);
  std::vector<std::thread> producers;
  std::atomic<int> submitted{0};
  for (int t = 0; t < 2; ++t) {
    producers.emplace_back([&, t] {
      for (int i = 0; i < 4; ++i) {
        futures[static_cast<std::size_t>(t * 4 + i)] = server.submit(frame);
        submitted.fetch_add(1);
      }
    });
  }
  // Wait until every producer has pushed (some submits may be blocking on
  // the full queue only if capacity is exceeded; 8 <= absorption here).
  for (auto& p : producers) p.join();
  ASSERT_EQ(submitted.load(), 8);
  std::thread closer([&] { server.shutdown(); });
  release.store(true, std::memory_order_release);
  closer.join();
  for (auto& f : futures) {
    EXPECT_EQ(max_abs_diff(f.get(), want), 0.0F);
  }
  EXPECT_EQ(server.stats().completed, 8U);
}

// --------------------------------------------------- seeded stress harness

struct StressShape {
  std::int64_t h;
  std::int64_t w;
};

// One seeded iteration: N producer threads submit M frames each; every
// future must complete bit-identically to the single-threaded reference for
// the mode's execution path.
void run_stress_iteration(std::uint64_t seed) {
  const ExecMode modes[] = {ExecMode::kFullFrame, ExecMode::kTiled, ExecMode::kStreaming,
                            ExecMode::kAuto};
  const ExecMode mode = modes[seed % 4];
  const core::SesrConfig config = small_config(/*with_bias=*/false, /*prelu=*/seed % 2 == 0);
  const core::SesrInference inference = make_inference(1000 + seed, config);

  ServeOptions options;
  options.workers = 1 + static_cast<int>(seed % 4);
  options.max_batch = 1 + static_cast<std::int64_t>(seed % 5);
  options.max_delay_us = 500;
  options.queue_capacity = 8;
  options.overload = OverloadPolicy::kBlock;
  options.mode = mode;
  options.tiling.tile_h = 6;
  options.tiling.tile_w = 7;
  options.tiled_threshold_pixels = 12 * 12;  // kAuto: the larger shapes tile

  const StressShape shapes[] = {{10, 10}, {12, 14}, {16, 16}, {9, 11}};
  constexpr int kProducers = 3;
  constexpr int kFramesPerProducer = 6;

  EvalServer server(inference, options);
  std::vector<std::vector<std::future<Tensor>>> futures(kProducers);
  std::vector<std::vector<Tensor>> sent(kProducers);
  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; ++t) {
    futures[static_cast<std::size_t>(t)].resize(kFramesPerProducer);
    sent[static_cast<std::size_t>(t)].resize(kFramesPerProducer);
    producers.emplace_back([&, t] {
      Rng rng(seed * 7919 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kFramesPerProducer; ++i) {
        const StressShape s = shapes[rng.uniform_int(0, 3)];
        Tensor frame(1, s.h, s.w, 1);
        frame.fill_uniform(rng, 0.0F, 1.0F);
        sent[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)] = frame;
        futures[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)] =
            server.submit(std::move(frame));
      }
    });
  }
  for (auto& p : producers) p.join();

  // Single-threaded references for the path each frame actually took.
  core::StreamingUpscaler reference_streamer(inference);
  auto reference = [&](const Tensor& frame) -> Tensor {
    ExecMode resolved = mode;
    if (mode == ExecMode::kAuto) {
      resolved = frame.shape().h() * frame.shape().w() >= options.tiled_threshold_pixels
                     ? ExecMode::kTiled
                     : ExecMode::kFullFrame;
    }
    switch (resolved) {
      case ExecMode::kTiled:
        return core::upscale_tiled(inference, frame, options.tiling);
      case ExecMode::kStreaming:
        return reference_streamer.upscale(frame);
      default:
        return inference.upscale(frame);
    }
  };
  for (int t = 0; t < kProducers; ++t) {
    for (int i = 0; i < kFramesPerProducer; ++i) {
      Tensor got = futures[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)].get();
      const Tensor& frame = sent[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)];
      ASSERT_EQ(max_abs_diff(got, reference(frame)), 0.0F)
          << "seed=" << seed << " producer=" << t << " frame=" << i << " mode="
          << static_cast<int>(mode);
    }
  }
  server.shutdown();
  const ServerStats stats = server.stats();
  ASSERT_EQ(stats.completed, static_cast<std::uint64_t>(kProducers * kFramesPerProducer))
      << "seed=" << seed;
  ASSERT_EQ(stats.failed, 0U) << "seed=" << seed;
}

TEST(EvalServerStress, SeededMultiProducerBitIdentical) {
  const int iterations = stress_iterations();
  for (int i = 0; i < iterations; ++i) {
    SCOPED_TRACE("iteration " + std::to_string(i));
    run_stress_iteration(static_cast<std::uint64_t>(i));
    if (HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace sesr::serve
