// Deterministic concurrency tests for the batched eval server (src/serve).
//
// The load-bearing promises under test:
//   1. Every accepted future completes — under multi-producer stress, under
//      shutdown-while-full, and under overload.
//   2. Served results are BIT-IDENTICAL to the single-threaded reference for
//      the same execution path (and, for exact-halo tiling, within float
//      tolerance of the full-frame pass).
//   3. The bounded queue's reject policy actually fires when the pipeline is
//      saturated, and blocked producers drain on shutdown without deadlock.
//
// The stress test is seeded: SESR_SERVE_STRESS_ITERS overrides the iteration
// count (CI's serve-tsan soak runs 100 under ThreadSanitizer). Worker threads
// are made deterministic where it matters via ServeOptions::worker_hook,
// which lets a test hold all workers on a latch.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <future>
#include <thread>
#include <vector>

#include "core/sesr_inference.hpp"
#include "core/sesr_network.hpp"
#include "core/streaming.hpp"
#include "core/tiled_inference.hpp"
#include "serve/admission.hpp"
#include "serve/clock.hpp"
#include "serve/dispatch.hpp"
#include "serve/registry.hpp"
#include "serve/request_queue.hpp"
#include "serve/response_cache.hpp"
#include "serve/server.hpp"
#include "serve/sharded_server.hpp"
#include "serve/stats.hpp"
#include "data/video.hpp"
#include "tensor/tensor_ops.hpp"

namespace sesr::serve {
namespace {

core::SesrConfig small_config(bool with_bias = false, bool prelu = true) {
  core::SesrConfig config;
  config.f = 8;
  config.m = 2;
  config.scale = 2;
  config.expand = 16;
  config.prelu = prelu;
  config.with_bias = with_bias;
  return config;
}

core::SesrInference make_inference(std::uint64_t seed, const core::SesrConfig& config) {
  Rng rng(seed);
  core::SesrNetwork network(config, rng);
  return core::SesrInference(network);
}

Tensor make_frame(std::uint64_t seed, std::int64_t h, std::int64_t w) {
  Rng rng(seed);
  Tensor frame(1, h, w, 1);
  frame.fill_uniform(rng, 0.0F, 1.0F);
  return frame;
}

int stress_iterations() {
  if (const char* v = std::getenv("SESR_SERVE_STRESS_ITERS")) {
    const long n = std::strtol(v, nullptr, 10);
    if (n > 0) return static_cast<int>(n);
  }
  return 10;
}

// ------------------------------------------------------- RequestQueue unit

TEST(RequestQueue, RejectPolicyFailsFastWhenFull) {
  RequestQueue queue(2);
  for (int i = 0; i < 2; ++i) {
    FrameRequest r;
    r.frame = make_frame(1, 4, 4);
    ASSERT_EQ(queue.push(r, OverloadPolicy::kReject), RequestQueue::PushResult::kAccepted);
  }
  FrameRequest overflow;
  overflow.frame = make_frame(2, 4, 4);
  EXPECT_EQ(queue.push(overflow, OverloadPolicy::kReject), RequestQueue::PushResult::kFull);
  // The rejected request is still owned by the caller; its promise is intact.
  overflow.promise.set_exception(std::make_exception_ptr(QueueFullError()));
}

TEST(RequestQueue, BlockedPushReturnsClosedOnShutdown) {
  RequestQueue queue(1);
  FrameRequest first;
  first.frame = make_frame(3, 4, 4);
  ASSERT_EQ(queue.push(first, OverloadPolicy::kBlock), RequestQueue::PushResult::kAccepted);
  std::promise<RequestQueue::PushResult> result;
  std::thread blocked([&] {
    FrameRequest r;
    r.frame = make_frame(4, 4, 4);
    result.set_value(queue.push(r, OverloadPolicy::kBlock));
  });
  queue.close();  // wakes the blocked producer
  EXPECT_EQ(result.get_future().get(), RequestQueue::PushResult::kClosed);
  blocked.join();
}

TEST(RequestQueue, PopBatchGroupsCompatibleShapesFifo) {
  RequestQueue queue(8);
  const std::int64_t dims[][2] = {{4, 4}, {4, 4}, {6, 8}, {4, 4}};
  for (std::uint64_t i = 0; i < 4; ++i) {
    FrameRequest r;
    r.id = i;
    r.frame = make_frame(i, dims[i][0], dims[i][1]);
    r.enqueue_time = std::chrono::steady_clock::now();
    ASSERT_EQ(queue.push(r, OverloadPolicy::kReject), RequestQueue::PushResult::kAccepted);
  }
  auto batch = queue.pop_batch(8, std::chrono::microseconds(0));
  ASSERT_EQ(batch.size(), 3U);  // the three 4x4 frames, oldest shape first
  EXPECT_EQ(batch[0].id, 0U);
  EXPECT_EQ(batch[1].id, 1U);
  EXPECT_EQ(batch[2].id, 3U);
  auto rest = queue.pop_batch(8, std::chrono::microseconds(0));
  ASSERT_EQ(rest.size(), 1U);
  EXPECT_EQ(rest[0].id, 2U);
}

TEST(RequestQueue, CloseDrainsRemainingThenReturnsEmpty) {
  RequestQueue queue(4);
  for (std::uint64_t i = 0; i < 3; ++i) {
    FrameRequest r;
    r.frame = make_frame(i, 5, 5);
    ASSERT_EQ(queue.push(r, OverloadPolicy::kReject), RequestQueue::PushResult::kAccepted);
  }
  queue.close();
  std::size_t drained = 0;
  while (true) {
    auto batch = queue.pop_batch(2, std::chrono::microseconds(0));
    if (batch.empty()) break;
    drained += batch.size();
  }
  EXPECT_EQ(drained, 3U);
}

// ------------------------------------------------- batching bit-exactness

TEST(BatchedUpscale, StackedBatchBitIdenticalToSingleFrames) {
  const core::SesrInference inference = make_inference(11, small_config());
  std::vector<Tensor> frames;
  Tensor batched(5, 12, 14, 1);
  for (std::int64_t i = 0; i < 5; ++i) {
    frames.push_back(make_frame(100 + static_cast<std::uint64_t>(i), 12, 14));
    set_batch(batched, i, frames.back());
  }
  const Tensor out = inference.upscale(batched);
  for (std::int64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(max_abs_diff(slice_batch(out, i), inference.upscale(frames[i])), 0.0F)
        << "sample " << i;
  }
}

// ------------------------------------------------------- end-to-end server

TEST(EvalServer, SingleFrameRoundTrip) {
  const core::SesrInference inference = make_inference(21, small_config());
  ServeOptions options;
  options.workers = 2;
  EvalServer server(inference, options);
  const Tensor frame = make_frame(77, 16, 16);
  Tensor out = server.submit(frame).get();
  EXPECT_EQ(max_abs_diff(out, inference.upscale(frame)), 0.0F);
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, 1U);
  EXPECT_EQ(stats.completed, 1U);
  EXPECT_EQ(stats.rejected, 0U);
}

TEST(EvalServer, Fp16PrecisionBitIdenticalToDirectFp16Upscale) {
  // Worker replicas round their weight caches at construction; a served fp16
  // frame must match a direct fp16 upscale on the source network bit for bit,
  // and must actually differ from the fp32 answer (the knob is not a no-op).
  core::SesrInference inference = make_inference(31, small_config());
  ServeOptions options;
  options.workers = 2;
  options.precision = core::InferencePrecision::kFp16;
  EvalServer server(inference, options);
  const Tensor frame = make_frame(79, 16, 16);
  Tensor served = server.submit(frame).get();
  const Tensor fp32_ref = inference.upscale(frame);
  inference.set_precision(core::InferencePrecision::kFp16);
  EXPECT_EQ(max_abs_diff(served, inference.upscale(frame)), 0.0F);
  EXPECT_GT(max_abs_diff(served, fp32_ref), 0.0F);
}

TEST(EvalServer, BadFrameShapeFailsTheFutureNotTheServer) {
  const core::SesrInference inference = make_inference(22, small_config());
  EvalServer server(inference, ServeOptions{});
  EXPECT_THROW(server.submit(Tensor(2, 8, 8, 1)).get(), std::invalid_argument);
  EXPECT_THROW(server.submit(Tensor(1, 8, 8, 3)).get(), std::invalid_argument);
  // The server still serves after bad submissions.
  const Tensor frame = make_frame(5, 8, 8);
  EXPECT_EQ(max_abs_diff(server.submit(frame).get(), inference.upscale(frame)), 0.0F);
}

TEST(EvalServer, SubmitAfterShutdownFailsWithServerClosed) {
  const core::SesrInference inference = make_inference(23, small_config());
  EvalServer server(inference, ServeOptions{});
  server.shutdown();
  EXPECT_THROW(server.submit(make_frame(6, 8, 8)).get(), ServerClosedError);
}

TEST(EvalServer, StreamingModeRejectsBiasedNetworks) {
  const core::SesrInference inference = make_inference(24, small_config(/*with_bias=*/true));
  ServeOptions options;
  options.mode = ExecMode::kStreaming;
  EXPECT_THROW(EvalServer(inference, options), std::invalid_argument);
}

TEST(EvalServer, TiledFanOutBitIdenticalToUpscaleTiled) {
  const core::SesrInference inference = make_inference(25, small_config());
  ServeOptions options;
  options.workers = 3;
  options.mode = ExecMode::kTiled;
  options.tiling.tile_h = 16;
  options.tiling.tile_w = 16;
  EvalServer server(inference, options);
  const Tensor frame = make_frame(88, 40, 52);
  const Tensor out = server.submit(frame).get();
  EXPECT_EQ(max_abs_diff(out, core::upscale_tiled(inference, frame, options.tiling)), 0.0F);
  // Exact halo: the fan-out result also matches the full frame to tolerance.
  EXPECT_LT(max_abs_diff(out, inference.upscale(frame)), 1e-5F);
  EXPECT_GE(server.stats().tiles, 6U);  // ceil(40/16) * ceil(52/16) = 3 * 4
}

// Deterministic overload: all workers held on a latch, so the pipeline's
// absorption capacity is finite and a bounded burst MUST trip kReject.
TEST(EvalServer, RejectPolicyFiresUnderOverloadAndAcceptedWorkCompletes) {
  const core::SesrInference inference = make_inference(26, small_config());
  std::atomic<bool> release{false};
  ServeOptions options;
  options.workers = 1;
  options.max_batch = 1;
  options.max_delay_us = 0;
  options.queue_capacity = 2;
  options.overload = OverloadPolicy::kReject;
  options.worker_hook = [&] {
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  EvalServer server(inference, options);
  const Tensor frame = make_frame(9, 10, 10);
  // Queue(2) + batcher(1) + dispatch(2) + worker(1) bounds absorption; with
  // nothing draining, 50 submissions must see at least one rejection.
  std::vector<std::future<Tensor>> futures;
  bool saw_reject = false;
  for (int i = 0; i < 50 && !saw_reject; ++i) {
    futures.push_back(server.submit(frame));
    saw_reject = server.stats().rejected > 0;
  }
  ASSERT_TRUE(saw_reject);
  release.store(true, std::memory_order_release);
  const Tensor want = inference.upscale(frame);
  std::size_t completed = 0;
  std::size_t rejected = 0;
  for (auto& f : futures) {
    try {
      EXPECT_EQ(max_abs_diff(f.get(), want), 0.0F);
      ++completed;
    } catch (const QueueFullError&) {
      ++rejected;
    }
  }
  EXPECT_EQ(completed + rejected, futures.size());
  EXPECT_GE(completed, 1U);
  EXPECT_GE(rejected, 1U);
}

// Shutdown with a saturated pipeline and blocked producers: every accepted
// request must still complete, and shutdown() must not deadlock.
TEST(EvalServer, ShutdownWhileFullDrainsWithoutDeadlock) {
  const core::SesrInference inference = make_inference(27, small_config());
  std::atomic<bool> release{false};
  ServeOptions options;
  options.workers = 2;
  options.max_batch = 2;
  options.max_delay_us = 100;
  options.queue_capacity = 4;
  options.overload = OverloadPolicy::kBlock;
  options.worker_hook = [&] {
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  EvalServer server(inference, options);
  const Tensor frame = make_frame(13, 10, 12);
  const Tensor want = inference.upscale(frame);
  std::vector<std::future<Tensor>> futures(8);
  std::vector<std::thread> producers;
  std::atomic<int> submitted{0};
  for (int t = 0; t < 2; ++t) {
    producers.emplace_back([&, t] {
      for (int i = 0; i < 4; ++i) {
        futures[static_cast<std::size_t>(t * 4 + i)] = server.submit(frame);
        submitted.fetch_add(1);
      }
    });
  }
  // Wait until every producer has pushed (some submits may be blocking on
  // the full queue only if capacity is exceeded; 8 <= absorption here).
  for (auto& p : producers) p.join();
  ASSERT_EQ(submitted.load(), 8);
  std::thread closer([&] { server.shutdown(); });
  release.store(true, std::memory_order_release);
  closer.join();
  for (auto& f : futures) {
    EXPECT_EQ(max_abs_diff(f.get(), want), 0.0F);
  }
  EXPECT_EQ(server.stats().completed, 8U);
}

// --------------------------------------------------- seeded stress harness

struct StressShape {
  std::int64_t h;
  std::int64_t w;
};

// One seeded iteration: N producer threads submit M frames each; every
// future must complete bit-identically to the single-threaded reference for
// the mode's execution path.
void run_stress_iteration(std::uint64_t seed) {
  const ExecMode modes[] = {ExecMode::kFullFrame, ExecMode::kTiled, ExecMode::kStreaming,
                            ExecMode::kAuto};
  const ExecMode mode = modes[seed % 4];
  const core::SesrConfig config = small_config(/*with_bias=*/false, /*prelu=*/seed % 2 == 0);
  const core::SesrInference inference = make_inference(1000 + seed, config);

  ServeOptions options;
  options.workers = 1 + static_cast<int>(seed % 4);
  options.max_batch = 1 + static_cast<std::int64_t>(seed % 5);
  options.max_delay_us = 500;
  options.queue_capacity = 8;
  options.overload = OverloadPolicy::kBlock;
  options.mode = mode;
  options.tiling.tile_h = 6;
  options.tiling.tile_w = 7;
  options.tiled_threshold_pixels = 12 * 12;  // kAuto: the larger shapes tile

  const StressShape shapes[] = {{10, 10}, {12, 14}, {16, 16}, {9, 11}};
  constexpr int kProducers = 3;
  constexpr int kFramesPerProducer = 6;

  EvalServer server(inference, options);
  std::vector<std::vector<std::future<Tensor>>> futures(kProducers);
  std::vector<std::vector<Tensor>> sent(kProducers);
  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; ++t) {
    futures[static_cast<std::size_t>(t)].resize(kFramesPerProducer);
    sent[static_cast<std::size_t>(t)].resize(kFramesPerProducer);
    producers.emplace_back([&, t] {
      Rng rng(seed * 7919 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kFramesPerProducer; ++i) {
        const StressShape s = shapes[rng.uniform_int(0, 3)];
        Tensor frame(1, s.h, s.w, 1);
        frame.fill_uniform(rng, 0.0F, 1.0F);
        sent[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)] = frame;
        futures[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)] =
            server.submit(std::move(frame));
      }
    });
  }
  for (auto& p : producers) p.join();

  // Single-threaded references for the path each frame actually took.
  core::StreamingUpscaler reference_streamer(inference);
  auto reference = [&](const Tensor& frame) -> Tensor {
    ExecMode resolved = mode;
    if (mode == ExecMode::kAuto) {
      resolved = frame.shape().h() * frame.shape().w() >= options.tiled_threshold_pixels
                     ? ExecMode::kTiled
                     : ExecMode::kFullFrame;
    }
    switch (resolved) {
      case ExecMode::kTiled:
        return core::upscale_tiled(inference, frame, options.tiling);
      case ExecMode::kStreaming:
        return reference_streamer.upscale(frame);
      default:
        return inference.upscale(frame);
    }
  };
  for (int t = 0; t < kProducers; ++t) {
    for (int i = 0; i < kFramesPerProducer; ++i) {
      Tensor got = futures[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)].get();
      const Tensor& frame = sent[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)];
      ASSERT_EQ(max_abs_diff(got, reference(frame)), 0.0F)
          << "seed=" << seed << " producer=" << t << " frame=" << i << " mode="
          << static_cast<int>(mode);
    }
  }
  server.shutdown();
  const ServerStats stats = server.stats();
  ASSERT_EQ(stats.completed, static_cast<std::uint64_t>(kProducers * kFramesPerProducer))
      << "seed=" << seed;
  ASSERT_EQ(stats.failed, 0U) << "seed=" << seed;
}

TEST(EvalServerStress, SeededMultiProducerBitIdentical) {
  const int iterations = stress_iterations();
  for (int i = 0; i < iterations; ++i) {
    SCOPED_TRACE("iteration " + std::to_string(i));
    run_stress_iteration(static_cast<std::uint64_t>(i));
    if (HasFatalFailure()) return;
  }
}

// ----------------------------------------------------- percentile boundary

TEST(Percentile, EmptyInputReturnsZeroForEveryP) {
  for (const double p : {0.0, 50.0, 95.0, 99.0, 100.0}) {
    EXPECT_EQ(percentile({}, p), 0.0) << "p=" << p;
  }
}

TEST(Percentile, SingleSampleIsEveryPercentileOfItself) {
  for (const double p : {0.0, 50.0, 95.0, 99.0, 100.0}) {
    EXPECT_EQ(percentile({3.5}, p), 3.5) << "p=" << p;
  }
}

TEST(Percentile, TwoSamplesNearestRank) {
  const std::vector<double> two = {1.0, 2.0};
  EXPECT_EQ(percentile(two, 0.0), 1.0);
  EXPECT_EQ(percentile(two, 50.0), 1.0);  // rank ceil(0.5 * 2) = 1
  EXPECT_EQ(percentile(two, 95.0), 2.0);
  EXPECT_EQ(percentile(two, 99.0), 2.0);
  EXPECT_EQ(percentile(two, 100.0), 2.0);
}

TEST(Percentile, P95OfTwentyIsTheNineteenthSample) {
  // Regression: 0.95 * 20 is 19.000000000000004 in binary, so a naive
  // ceil() lands on rank 20 and p95 silently reports the maximum.
  std::vector<double> samples;
  for (int i = 1; i <= 20; ++i) samples.push_back(static_cast<double>(i));
  EXPECT_EQ(percentile(samples, 95.0), 19.0);
  EXPECT_EQ(percentile(samples, 99.0), 20.0);  // rank ceil(19.8) = 20
  EXPECT_EQ(percentile(samples, 100.0), 20.0);
  EXPECT_EQ(percentile(samples, 0.0), 1.0);  // lower rank clamps to 1
  EXPECT_EQ(percentile(samples, 120.0), 20.0);
  EXPECT_EQ(percentile(samples, -5.0), 1.0);
}

// -------------------------------------------------- RequestQueue satellites

TEST(RequestQueue, RejectPushDuringDrainOnCloseReturnsClosed) {
  // After close() the queue drains already-accepted work, but new pushes must
  // report kClosed — never kFull, which would invite a retry loop against a
  // queue that will never accept again.
  RequestQueue queue(2);
  for (std::uint64_t i = 0; i < 2; ++i) {
    FrameRequest r;
    r.frame = make_frame(i, 4, 4);
    ASSERT_EQ(queue.push(r, OverloadPolicy::kReject), RequestQueue::PushResult::kAccepted);
  }
  queue.close();
  FrameRequest late;
  late.frame = make_frame(9, 4, 4);
  EXPECT_EQ(queue.push(late, OverloadPolicy::kReject), RequestQueue::PushResult::kClosed);
  EXPECT_EQ(queue.push(late, OverloadPolicy::kBlock), RequestQueue::PushResult::kClosed);
  // The accepted work is still drainable after the rejected pushes.
  EXPECT_EQ(queue.pop_batch(8, std::chrono::microseconds(0)).size(), 2U);
}

// ------------------------------------------------------------ ResponseCache

TEST(ResponseCache, DisabledCacheNeverHitsOrStores) {
  ResponseCache cache(0);
  EXPECT_FALSE(cache.enabled());
  const Tensor frame = make_frame(1, 6, 6);
  cache.insert(0, frame, make_frame(2, 12, 12));
  EXPECT_FALSE(cache.lookup(0, frame).has_value());
  EXPECT_EQ(cache.stats().entries, 0U);
  EXPECT_EQ(cache.stats().insertions, 0U);
}

TEST(ResponseCache, HitIsBitIdenticalAndRouteScoped) {
  ResponseCache cache(4);
  const Tensor frame = make_frame(3, 6, 6);
  const Tensor output = make_frame(4, 12, 12);
  cache.insert(1, frame, output);
  const std::optional<Tensor> hit = cache.lookup(1, frame);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(max_abs_diff(*hit, output), 0.0F);
  // Same bytes under a different route is a different response: miss.
  EXPECT_FALSE(cache.lookup(2, frame).has_value());
  // A different frame misses.
  EXPECT_FALSE(cache.lookup(1, make_frame(5, 6, 6)).has_value());
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1U);
  EXPECT_EQ(stats.misses, 2U);
  EXPECT_EQ(stats.entries, 1U);
}

TEST(ResponseCache, LruEvictionDropsTheColdestEntry) {
  ResponseCache cache(2);
  const Tensor a = make_frame(10, 5, 5);
  const Tensor b = make_frame(11, 5, 5);
  const Tensor c = make_frame(12, 5, 5);
  cache.insert(0, a, make_frame(20, 10, 10));
  cache.insert(0, b, make_frame(21, 10, 10));
  ASSERT_TRUE(cache.lookup(0, a).has_value());  // touch a: b becomes coldest
  cache.insert(0, c, make_frame(22, 10, 10));   // evicts b
  EXPECT_TRUE(cache.lookup(0, a).has_value());
  EXPECT_FALSE(cache.lookup(0, b).has_value());
  EXPECT_TRUE(cache.lookup(0, c).has_value());
  EXPECT_EQ(cache.stats().evictions, 1U);
  EXPECT_EQ(cache.stats().entries, 2U);
}

// -------------------------------------------------------- FairDispatchQueue

// Queue-only tests drive the scheduler with tagged dummy units.
Unit tagged_unit(std::uint64_t id) {
  BatchUnit unit;
  unit.requests.emplace_back();
  unit.requests.back().id = id;
  return unit;
}

std::uint64_t unit_tag(const Unit& unit) {
  return std::get<BatchUnit>(unit).requests.front().id;
}

TEST(FairDispatchQueue, FreshLanesFirstThenRoundRobin) {
  FairDispatchQueue queue(1, 64, /*fair=*/true);
  // Three lanes, pushed fully before any pop: a has 3 units, b has 2, c has 1.
  ASSERT_TRUE(queue.push(0, 1, tagged_unit(10)));
  ASSERT_TRUE(queue.push(0, 1, tagged_unit(11)));
  ASSERT_TRUE(queue.push(0, 1, tagged_unit(12)));
  ASSERT_TRUE(queue.push(0, 2, tagged_unit(20)));
  ASSERT_TRUE(queue.push(0, 2, tagged_unit(21)));
  ASSERT_TRUE(queue.push(0, 3, tagged_unit(30)));
  queue.close();
  std::vector<std::uint64_t> order;
  Unit unit;
  while (queue.pop(0, unit)) order.push_back(unit_tag(unit));
  // Fresh lanes in arrival order, then round-robin over the survivors.
  EXPECT_EQ(order, (std::vector<std::uint64_t>{10, 20, 30, 11, 21, 12}));
}

TEST(FairDispatchQueue, NewLanePreemptsServedLanes) {
  FairDispatchQueue queue(1, 64, /*fair=*/true);
  ASSERT_TRUE(queue.push(0, 1, tagged_unit(10)));
  ASSERT_TRUE(queue.push(0, 1, tagged_unit(11)));
  Unit unit;
  ASSERT_TRUE(queue.pop(0, unit));
  EXPECT_EQ(unit_tag(unit), 10U);  // lane 1 is now "served"
  // A new logical request arrives mid-fan-out: it is scheduled next.
  ASSERT_TRUE(queue.push(0, 2, tagged_unit(20)));
  ASSERT_TRUE(queue.pop(0, unit));
  EXPECT_EQ(unit_tag(unit), 20U);
  ASSERT_TRUE(queue.pop(0, unit));
  EXPECT_EQ(unit_tag(unit), 11U);
}

TEST(FairDispatchQueue, UnfairModeIsPlainFifo) {
  FairDispatchQueue queue(1, 64, /*fair=*/false);
  ASSERT_TRUE(queue.push(0, 1, tagged_unit(10)));
  ASSERT_TRUE(queue.push(0, 2, tagged_unit(20)));
  ASSERT_TRUE(queue.push(0, 1, tagged_unit(11)));
  queue.close();
  std::vector<std::uint64_t> order;
  Unit unit;
  while (queue.pop(0, unit)) order.push_back(unit_tag(unit));
  EXPECT_EQ(order, (std::vector<std::uint64_t>{10, 20, 11}));
}

TEST(FairDispatchQueue, WeightZeroPushNeverBlocksAtDepthLimit) {
  FairDispatchQueue queue(1, /*depth_limit=*/1, /*fair=*/true);
  ASSERT_TRUE(queue.push(0, 1, tagged_unit(10), 1));  // fills the depth bound
  // A fan-out continuation (weight 0) must go through without blocking.
  ASSERT_TRUE(queue.push(0, 1, tagged_unit(11), 0));
  EXPECT_EQ(queue.size(), 1U);  // weighted depth: one admitted request
  // A weighted push blocks until the admitted request is popped.
  std::promise<bool> pushed;
  std::thread blocked([&] { pushed.set_value(queue.push(0, 2, tagged_unit(20), 1)); });
  auto future = pushed.get_future();
  EXPECT_EQ(future.wait_for(std::chrono::milliseconds(50)), std::future_status::timeout);
  Unit unit;
  ASSERT_TRUE(queue.pop(0, unit));
  EXPECT_TRUE(future.get());
  blocked.join();
  queue.close();
}

TEST(FairDispatchQueue, CloseRejectsPushesAndDrainsPops) {
  FairDispatchQueue queue(2, 8, /*fair=*/true);
  ASSERT_TRUE(queue.push(0, 1, tagged_unit(10)));
  ASSERT_TRUE(queue.push(1, 1, tagged_unit(40)));
  queue.close();
  EXPECT_FALSE(queue.push(0, 2, tagged_unit(20)));
  Unit unit;
  ASSERT_TRUE(queue.pop(0, unit));
  EXPECT_EQ(unit_tag(unit), 10U);
  EXPECT_FALSE(queue.pop(0, unit));  // shard 0 drained
  ASSERT_TRUE(queue.pop(1, unit));
  EXPECT_EQ(unit_tag(unit), 40U);
  EXPECT_FALSE(queue.pop(1, unit));
}

// ---------------------------------------------------------- NetworkRegistry

TEST(NetworkRegistry, RouteStringParseRoundTrip) {
  const RouteKey fp16{"m11", 4, core::InferencePrecision::kFp16};
  EXPECT_EQ(route_string(fp16), "m11:4:fp16");
  EXPECT_TRUE(parse_route("m11:4:fp16") == fp16);
  const RouteKey int8{"m5", 2, core::InferencePrecision::kInt8};
  EXPECT_EQ(route_string(int8), "m5:2:int8");
  EXPECT_TRUE(parse_route("m5:2:int8") == int8);
  const RouteKey hybrid{"m7", 3, core::InferencePrecision::kHybrid};
  EXPECT_EQ(route_string(hybrid), "m7:3:hybrid");
  EXPECT_TRUE(parse_route("m7:3:hybrid") == hybrid);
  const RouteKey defaulted = parse_route("m5:2");
  EXPECT_EQ(defaulted.network, "m5");
  EXPECT_EQ(defaulted.scale, 2);
  EXPECT_EQ(defaulted.precision, core::InferencePrecision::kFp32);
  EXPECT_THROW(parse_route(""), std::invalid_argument);
  EXPECT_THROW(parse_route("m5"), std::invalid_argument);
  EXPECT_THROW(parse_route("m5:x"), std::invalid_argument);
  EXPECT_THROW(parse_route("m5:2:fp8"), std::invalid_argument);
  EXPECT_THROW(parse_route(":2"), std::invalid_argument);
}

TEST(NetworkRegistry, AddValidatesAndFindThrowsOnUnknown) {
  NetworkRegistry registry;
  const core::SesrInference inference = make_inference(41, small_config());
  const RouteKey key{"a", 2, core::InferencePrecision::kFp32};
  registry.add(key, inference);
  EXPECT_TRUE(registry.contains(key));
  EXPECT_EQ(registry.find(key).config.scale, 2);
  // Duplicate route.
  EXPECT_THROW(registry.add(key, inference), std::invalid_argument);
  // Scale disagreeing with the network's own scale.
  EXPECT_THROW(registry.add(RouteKey{"a", 4, core::InferencePrecision::kFp32}, inference),
               std::invalid_argument);
  // Same network under another precision is a distinct route.
  registry.add(RouteKey{"a", 2, core::InferencePrecision::kFp16}, inference);
  EXPECT_EQ(registry.size(), 2U);
  EXPECT_THROW(registry.find(RouteKey{"b", 2, core::InferencePrecision::kFp32}),
               UnknownRouteError);
}

TEST(NetworkRegistry, AddRejectsQuantizedRoutesWithoutCalibrationOrPlan) {
  NetworkRegistry registry;
  core::SesrInference inference = make_inference(43, small_config());
  // Quantized routes need scales baked into the checkpoint the shards will
  // restore from; hybrid additionally needs the per-layer split.
  EXPECT_THROW(registry.add(RouteKey{"a", 2, core::InferencePrecision::kInt8}, inference),
               std::invalid_argument);
  EXPECT_THROW(registry.add(RouteKey{"a", 2, core::InferencePrecision::kHybrid}, inference),
               std::invalid_argument);
  inference.calibrate_int8({make_frame(7, 12, 12)});
  registry.add(RouteKey{"a", 2, core::InferencePrecision::kInt8}, inference);
  EXPECT_THROW(registry.add(RouteKey{"a", 2, core::InferencePrecision::kHybrid}, inference),
               std::invalid_argument);
  inference.set_hybrid_plan(std::vector<core::LayerPrecision>(
      inference.convolutions().size(), core::LayerPrecision::kInt8));
  registry.add(RouteKey{"a", 2, core::InferencePrecision::kHybrid}, inference);
  EXPECT_EQ(registry.size(), 2U);
}

TEST(PlanTileUnits, PartitionsTasksIntoContiguousRanges) {
  const auto units = core::plan_tile_units(10, 3);
  ASSERT_EQ(units.size(), 4U);
  EXPECT_EQ(units[0].first, 0U);
  EXPECT_EQ(units[0].count, 3U);
  EXPECT_EQ(units[3].first, 9U);
  EXPECT_EQ(units[3].count, 1U);
  EXPECT_EQ(core::plan_tile_units(10, 0).size(), 10U);  // <1 treated as 1
  ASSERT_EQ(core::plan_tile_units(5, 100).size(), 1U);
  EXPECT_EQ(core::plan_tile_units(5, 100)[0].count, 5U);
  EXPECT_TRUE(core::plan_tile_units(0, 3).empty());
}

// ------------------------------------------------------------ ShardedServer

TEST(ShardedServer, MultiNetworkRoutingBitIdentical) {
  const core::SesrInference net_a = make_inference(51, small_config());
  const core::SesrInference net_b = make_inference(52, small_config(/*with_bias=*/true));
  const RouteKey route_a{"a", 2, core::InferencePrecision::kFp32};
  const RouteKey route_b{"b", 2, core::InferencePrecision::kFp32};
  NetworkRegistry registry;
  registry.add(route_a, net_a);
  registry.add(route_b, net_b);
  ServeOptions options;
  options.workers = 2;
  ShardedServer server(registry, options);
  EXPECT_EQ(server.shard_count(), 2U);
  const Tensor frame = make_frame(90, 12, 12);
  Tensor out_a = server.submit(route_a, frame).get();
  Tensor out_b = server.submit(route_b, frame).get();
  EXPECT_EQ(max_abs_diff(out_a, net_a.upscale(frame)), 0.0F);
  EXPECT_EQ(max_abs_diff(out_b, net_b.upscale(frame)), 0.0F);
  EXPECT_GT(max_abs_diff(out_a, out_b), 0.0F);  // the routes really differ
  server.shutdown();
  const ShardedStats stats = server.stats();
  ASSERT_EQ(stats.per_route.size(), 2U);
  EXPECT_EQ(stats.per_route[0].route, "a:2:fp32");
  EXPECT_EQ(stats.per_route[0].submitted, 1U);
  EXPECT_EQ(stats.per_route[0].completed, 1U);
  EXPECT_EQ(stats.per_route[1].route, "b:2:fp32");
  EXPECT_EQ(stats.per_route[1].completed, 1U);
  EXPECT_EQ(stats.total.completed, 2U);
}

TEST(ShardedServer, UnknownRouteFailsTheFutureNotTheServer) {
  const core::SesrInference inference = make_inference(53, small_config());
  const RouteKey known{"a", 2, core::InferencePrecision::kFp32};
  NetworkRegistry registry;
  registry.add(known, inference);
  ShardedServer server(registry, ServeOptions{});
  EXPECT_THROW(
      server.submit(RouteKey{"nope", 2, core::InferencePrecision::kFp32}, make_frame(1, 8, 8))
          .get(),
      UnknownRouteError);
  const Tensor frame = make_frame(2, 8, 8);
  EXPECT_EQ(max_abs_diff(server.submit(known, frame).get(), inference.upscale(frame)), 0.0F);
}

TEST(ShardedServer, PerRoutePrecisionOverridesGlobalOption) {
  // One network registered under both precisions: each route's replicas are
  // pinned to the route's precision, whatever options.precision says.
  core::SesrInference inference = make_inference(54, small_config());
  const RouteKey fp32_route{"a", 2, core::InferencePrecision::kFp32};
  const RouteKey fp16_route{"a", 2, core::InferencePrecision::kFp16};
  NetworkRegistry registry;
  registry.add(fp32_route, inference);
  registry.add(fp16_route, inference);
  ShardedServer server(registry, ServeOptions{});
  const Tensor frame = make_frame(91, 16, 16);
  Tensor out32 = server.submit(fp32_route, frame).get();
  Tensor out16 = server.submit(fp16_route, frame).get();
  EXPECT_EQ(max_abs_diff(out32, inference.upscale(frame)), 0.0F);
  inference.set_precision(core::InferencePrecision::kFp16);
  EXPECT_EQ(max_abs_diff(out16, inference.upscale(frame)), 0.0F);
  EXPECT_GT(max_abs_diff(out32, out16), 0.0F);
}

TEST(ShardedServer, CacheHitIsBitIdenticalAndCounted) {
  const core::SesrInference inference = make_inference(55, small_config());
  const RouteKey route{"a", 2, core::InferencePrecision::kFp32};
  NetworkRegistry registry;
  registry.add(route, inference);
  ServeOptions options;
  options.cache_entries = 4;
  ShardedServer server(registry, options);
  const Tensor frame = make_frame(92, 10, 10);
  const Tensor cold = server.submit(route, frame).get();
  const Tensor hit = server.submit(route, frame).get();
  EXPECT_EQ(max_abs_diff(hit, cold), 0.0F);
  server.shutdown();
  const ShardedStats stats = server.stats();
  EXPECT_EQ(stats.total.submitted, 2U);
  EXPECT_EQ(stats.total.completed, 2U);
  EXPECT_EQ(stats.total.cache_hits, 1U);
  EXPECT_EQ(stats.cache.hits, 1U);
  EXPECT_EQ(stats.cache.misses, 1U);
  EXPECT_EQ(stats.per_route[0].cache_hits, 1U);
  EXPECT_EQ(stats.per_route[0].completed, 2U);
}

// --------------------------------------- sharded seeded stress (soak: TSan)

// One seeded iteration of mixed-network traffic: producers interleave two
// routes (one of them fp16) across shapes and modes; every future must be
// bit-identical to its route's single-threaded reference, and the per-route
// counters must reconcile.
void run_sharded_stress_iteration(std::uint64_t seed) {
  const ExecMode modes[] = {ExecMode::kFullFrame, ExecMode::kTiled, ExecMode::kAuto};
  const ExecMode mode = modes[seed % 3];
  core::SesrInference net_a = make_inference(2000 + seed, small_config());
  core::SesrInference net_b =
      make_inference(3000 + seed, small_config(/*with_bias=*/seed % 2 == 0));
  const RouteKey route_a{"a", 2, core::InferencePrecision::kFp32};
  const RouteKey route_b{"b", 2, core::InferencePrecision::kFp16};
  NetworkRegistry registry;
  registry.add(route_a, net_a);
  registry.add(route_b, net_b);

  ServeOptions options;
  options.workers = 1 + static_cast<int>(seed % 3);
  options.max_batch = 1 + static_cast<std::int64_t>(seed % 4);
  options.max_delay_us = 500;
  options.queue_capacity = 8;
  options.mode = mode;
  options.tiling.tile_h = 6;
  options.tiling.tile_w = 7;
  options.tiled_threshold_pixels = 12 * 12;
  options.cache_entries = seed % 2 == 0 ? 4 : 0;  // alternate: cache on/off
  options.fair_tiles = seed % 3 != 2;

  const StressShape shapes[] = {{10, 10}, {12, 14}, {16, 16}};
  constexpr int kProducers = 3;
  constexpr int kFramesPerProducer = 6;

  ShardedServer server(registry, options);
  std::vector<std::vector<std::future<Tensor>>> futures(kProducers);
  std::vector<std::vector<Tensor>> sent(kProducers);
  std::vector<std::vector<bool>> to_b(kProducers);
  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; ++t) {
    futures[static_cast<std::size_t>(t)].resize(kFramesPerProducer);
    sent[static_cast<std::size_t>(t)].resize(kFramesPerProducer);
    to_b[static_cast<std::size_t>(t)].resize(kFramesPerProducer);
    producers.emplace_back([&, t] {
      Rng rng(seed * 104729 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kFramesPerProducer; ++i) {
        const StressShape s = shapes[rng.uniform_int(0, 2)];
        // A small pool of repeated frames so the cache path gets real hits.
        Tensor frame(1, s.h, s.w, 1);
        Rng frame_rng(seed * 31 + static_cast<std::uint64_t>(rng.uniform_int(0, 3)));
        frame.fill_uniform(frame_rng, 0.0F, 1.0F);
        const bool b = rng.uniform_int(0, 1) == 1;
        sent[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)] = frame;
        to_b[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)] = b;
        futures[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)] =
            server.submit(b ? route_b : route_a, std::move(frame));
      }
    });
  }
  for (auto& p : producers) p.join();

  net_b.set_precision(core::InferencePrecision::kFp16);
  auto reference = [&](const core::SesrInference& net, const Tensor& frame) -> Tensor {
    ExecMode resolved = mode;
    if (mode == ExecMode::kAuto) {
      resolved = frame.shape().h() * frame.shape().w() >= options.tiled_threshold_pixels
                     ? ExecMode::kTiled
                     : ExecMode::kFullFrame;
    }
    if (resolved == ExecMode::kTiled) return core::upscale_tiled(net, frame, options.tiling);
    return net.upscale(frame);
  };
  std::uint64_t want_b = 0;
  for (int t = 0; t < kProducers; ++t) {
    for (int i = 0; i < kFramesPerProducer; ++i) {
      Tensor got = futures[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)].get();
      const Tensor& frame = sent[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)];
      const bool b = to_b[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)];
      want_b += b ? 1 : 0;
      ASSERT_EQ(max_abs_diff(got, reference(b ? net_b : net_a, frame)), 0.0F)
          << "seed=" << seed << " producer=" << t << " frame=" << i << " route="
          << (b ? "b" : "a");
    }
  }
  server.shutdown();
  const ShardedStats stats = server.stats();
  constexpr auto kTotal = static_cast<std::uint64_t>(kProducers * kFramesPerProducer);
  ASSERT_EQ(stats.total.completed, kTotal) << "seed=" << seed;
  ASSERT_EQ(stats.total.failed, 0U) << "seed=" << seed;
  ASSERT_EQ(stats.per_route[0].completed + stats.per_route[1].completed, kTotal)
      << "seed=" << seed;
  ASSERT_EQ(stats.per_route[1].completed, want_b) << "seed=" << seed;
  ASSERT_EQ(stats.total.cache_hits, stats.per_route[0].cache_hits + stats.per_route[1].cache_hits)
      << "seed=" << seed;
}

TEST(ShardedServerStress, SeededMixedNetworkBitIdentical) {
  const int iterations = stress_iterations();
  for (int i = 0; i < iterations; ++i) {
    SCOPED_TRACE("iteration " + std::to_string(i));
    run_sharded_stress_iteration(static_cast<std::uint64_t>(i));
    if (HasFatalFailure()) return;
  }
}

// One calibrated + hybrid-planned network served under all four precisions at
// once, with the execution mode (full-frame / tiled / streaming / auto)
// rotating per seed. Every result must be bit-identical to the same-mode
// single-threaded reference — the scales and the plan travel inside the
// checkpoint, so shard replicas must reproduce them exactly. The pure-int8
// route carries a stronger promise (integer accumulation, fixed scales,
// elementwise quantization): its tiled and streaming outputs must ALSO match
// the full-frame pass bitwise, which the test asserts cross-mode.
void run_mixed_precision_stress_iteration(std::uint64_t seed) {
  const ExecMode modes[] = {ExecMode::kFullFrame, ExecMode::kTiled, ExecMode::kStreaming,
                            ExecMode::kAuto};
  const ExecMode mode = modes[seed % 4];
  core::SesrInference net = make_inference(7000 + seed, small_config());
  Rng calib_rng(seed ^ 0xABCD17ULL);
  std::vector<Tensor> calib;
  for (int i = 0; i < 2; ++i) {
    Tensor frame(1, 16, 16, 1);
    frame.fill_uniform(calib_rng, 0.0F, 1.0F);
    calib.push_back(std::move(frame));
  }
  net.calibrate_int8(calib);
  // Interleave fp16 and int8 layers so the hybrid route actually exercises
  // both arithmetics (a planner run would work too; a fixed split is faster
  // and just as binding for the determinism promise).
  std::vector<core::LayerPrecision> plan(net.convolutions().size(),
                                         core::LayerPrecision::kFp16);
  for (std::size_t i = 0; i < plan.size(); i += 2) plan[i] = core::LayerPrecision::kInt8;
  net.set_hybrid_plan(std::move(plan));

  const RouteKey routes[] = {{"m", 2, core::InferencePrecision::kFp32},
                             {"m", 2, core::InferencePrecision::kFp16},
                             {"m", 2, core::InferencePrecision::kInt8},
                             {"m", 2, core::InferencePrecision::kHybrid}};
  NetworkRegistry registry;
  for (const RouteKey& route : routes) registry.add(route, net);

  ServeOptions options;
  options.workers = 1 + static_cast<int>(seed % 3);
  options.max_batch = 1 + static_cast<std::int64_t>(seed % 3);
  options.max_delay_us = 500;
  options.queue_capacity = 8;
  options.mode = mode;
  options.tiling.tile_h = 6;
  options.tiling.tile_w = 7;
  options.tiled_threshold_pixels = 12 * 12;
  options.cache_entries = seed % 2 == 0 ? 4 : 0;

  const StressShape shapes[] = {{10, 10}, {12, 14}, {16, 16}};
  constexpr int kProducers = 3;
  constexpr int kFramesPerProducer = 8;

  ShardedServer server(registry, options);
  std::vector<std::vector<std::future<Tensor>>> futures(kProducers);
  std::vector<std::vector<Tensor>> sent(kProducers);
  std::vector<std::vector<int>> route_of(kProducers);
  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; ++t) {
    futures[static_cast<std::size_t>(t)].resize(kFramesPerProducer);
    sent[static_cast<std::size_t>(t)].resize(kFramesPerProducer);
    route_of[static_cast<std::size_t>(t)].resize(kFramesPerProducer);
    producers.emplace_back([&, t] {
      Rng rng(seed * 7919 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kFramesPerProducer; ++i) {
        const StressShape s = shapes[rng.uniform_int(0, 2)];
        Tensor frame(1, s.h, s.w, 1);
        Rng frame_rng(seed * 37 + static_cast<std::uint64_t>(rng.uniform_int(0, 3)));
        frame.fill_uniform(frame_rng, 0.0F, 1.0F);
        const int r = rng.uniform_int(0, 3);
        sent[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)] = frame;
        route_of[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)] = r;
        futures[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)] =
            server.submit(routes[r], std::move(frame));
      }
    });
  }
  for (auto& p : producers) p.join();

  auto reference = [&](core::InferencePrecision prec, const Tensor& frame,
                       ExecMode forced) -> Tensor {
    net.set_precision(prec);
    ExecMode resolved = forced;
    if (resolved == ExecMode::kAuto) {
      resolved = frame.shape().h() * frame.shape().w() >= options.tiled_threshold_pixels
                     ? ExecMode::kTiled
                     : ExecMode::kFullFrame;
    }
    if (resolved == ExecMode::kStreaming) {
      core::StreamingUpscaler streamer(net);
      return streamer.upscale(frame);
    }
    if (resolved == ExecMode::kTiled) return core::upscale_tiled(net, frame, options.tiling);
    return net.upscale(frame);
  };
  std::uint64_t per_route_want[4] = {0, 0, 0, 0};
  for (int t = 0; t < kProducers; ++t) {
    for (int i = 0; i < kFramesPerProducer; ++i) {
      Tensor got = futures[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)].get();
      const Tensor& frame = sent[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)];
      const int r = route_of[static_cast<std::size_t>(t)][static_cast<std::size_t>(i)];
      ++per_route_want[r];
      ASSERT_EQ(max_abs_diff(got, reference(routes[r].precision, frame, mode)), 0.0F)
          << "seed=" << seed << " producer=" << t << " frame=" << i
          << " route=" << route_string(routes[r]);
      if (routes[r].precision == core::InferencePrecision::kInt8) {
        ASSERT_EQ(max_abs_diff(got,
                               reference(core::InferencePrecision::kInt8, frame,
                                         ExecMode::kFullFrame)),
                  0.0F)
            << "seed=" << seed << " int8 cross-mode mismatch vs full-frame";
      }
    }
  }
  server.shutdown();
  const ShardedStats stats = server.stats();
  constexpr auto kTotal = static_cast<std::uint64_t>(kProducers * kFramesPerProducer);
  ASSERT_EQ(stats.total.completed, kTotal) << "seed=" << seed;
  ASSERT_EQ(stats.total.failed, 0U) << "seed=" << seed;
  std::uint64_t completed = 0;
  for (const RouteStats& route : stats.per_route) completed += route.completed;
  ASSERT_EQ(completed, kTotal) << "seed=" << seed;
}

TEST(MixedPrecisionStress, AllPrecisionsOneServerBitIdentical) {
  const int iterations = stress_iterations();
  for (int i = 0; i < iterations; ++i) {
    SCOPED_TRACE("iteration " + std::to_string(i));
    run_mixed_precision_stress_iteration(static_cast<std::uint64_t>(i));
    if (HasFatalFailure()) return;
  }
}

// --------------------------------------------------------- video sessions

ServeOptions video_serve_options(ExecMode mode, int workers = 2) {
  ServeOptions options;
  options.workers = workers;
  options.max_batch = 2;
  options.max_delay_us = 200;
  options.mode = mode;
  options.tiling.tile_h = 6;
  options.tiling.tile_w = 7;
  options.tiled_threshold_pixels = 12 * 12;
  options.cache_entries = 0;  // reference submits must recompute
  return options;
}

// The tentpole promise at the server seam: a video session's delta output is
// bit-identical to the full re-upscale of the same frame, in every execution
// mode, and the delta path actually engages from frame 2 on.
TEST(VideoSession, DeltaBitIdenticalAllModes) {
  const ExecMode modes[] = {ExecMode::kFullFrame, ExecMode::kTiled, ExecMode::kStreaming,
                            ExecMode::kAuto};
  const core::SesrInference net = make_inference(501, small_config());
  const RouteKey key{"m", 2, core::InferencePrecision::kFp32};
  data::VideoSequenceOptions vopts;
  vopts.pattern = data::VideoPattern::kSparkle;
  vopts.frames = 4;
  vopts.h = 16;
  vopts.w = 16;
  const std::vector<Tensor> frames = data::synthesize_video(vopts, 7);
  for (const ExecMode mode : modes) {
    SCOPED_TRACE("mode " + std::to_string(static_cast<int>(mode)));
    NetworkRegistry registry;
    registry.add(key, net);
    ShardedServer server(registry, video_serve_options(mode));
    for (std::size_t i = 0; i < frames.size(); ++i) {
      VideoOptions video;
      video.session_id = 9;
      video.seq = i + 1;
      AdmitResult admitted = server.submit_video(key, frames[i], video);
      const Tensor got = admitted.future.get();
      const Tensor want = server.submit(key, frames[i]).get();
      ASSERT_EQ(max_abs_diff(got, want), 0.0F) << "frame " << i;
      EXPECT_EQ(admitted.delta, i > 0) << "frame " << i;
      if (i > 0) EXPECT_LE(admitted.tiles_recomputed, admitted.tiles_total) << "frame " << i;
    }
    server.shutdown();
    const ShardedStats stats = server.stats();
    EXPECT_EQ(stats.total.video_frames, frames.size());
    EXPECT_EQ(stats.total.video_delta_frames, frames.size() - 1);
    EXPECT_EQ(stats.video.publishes, frames.size());
    EXPECT_EQ(stats.video.hits, frames.size() - 1);
    EXPECT_EQ(stats.video.sessions, 1U);
  }
}

// A sequence-number gap means the stored snapshot is not the predecessor:
// the frame takes the (always correct) full path and re-primes the session.
TEST(VideoSession, SeqGapFallsBackToFull) {
  const core::SesrInference net = make_inference(503, small_config());
  const RouteKey key{"m", 2, core::InferencePrecision::kFp32};
  NetworkRegistry registry;
  registry.add(key, net);
  ShardedServer server(registry, video_serve_options(ExecMode::kTiled));
  const Tensor frame = make_frame(31, 14, 14);
  const std::uint64_t seqs[] = {1, 2, 4, 5};
  const bool want_delta[] = {false, true, false, true};  // 4 breaks the chain, 5 re-deltas
  for (std::size_t i = 0; i < 4; ++i) {
    VideoOptions video;
    video.session_id = 1;
    video.seq = seqs[i];
    AdmitResult admitted = server.submit_video(key, frame, video);
    const Tensor got = admitted.future.get();
    ASSERT_EQ(max_abs_diff(got, server.submit(key, frame).get()), 0.0F) << "seq " << seqs[i];
    EXPECT_EQ(admitted.delta, want_delta[i]) << "seq " << seqs[i];
  }
  server.shutdown();
}

// A resolution change mid-session cannot splice tiles from the old shape:
// the frame takes the full path and the session re-primes at the new shape.
TEST(VideoSession, ShapeChangeFallsBackToFull) {
  const core::SesrInference net = make_inference(505, small_config());
  const RouteKey key{"m", 2, core::InferencePrecision::kFp32};
  NetworkRegistry registry;
  registry.add(key, net);
  ShardedServer server(registry, video_serve_options(ExecMode::kTiled));
  const Tensor big = make_frame(37, 16, 16);
  const Tensor small = make_frame(41, 10, 12);
  VideoOptions video;
  video.session_id = 2;
  video.seq = 1;
  EXPECT_FALSE(server.submit_video(key, big, video).delta);
  video.seq = 2;
  AdmitResult switched = server.submit_video(key, small, video);
  EXPECT_FALSE(switched.delta);
  ASSERT_EQ(max_abs_diff(switched.future.get(), server.submit(key, small).get()), 0.0F);
  video.seq = 3;
  AdmitResult resumed = server.submit_video(key, small, video);
  EXPECT_TRUE(resumed.delta);
  ASSERT_EQ(max_abs_diff(resumed.future.get(), server.submit(key, small).get()), 0.0F);
  server.shutdown();
}

// A bitwise-identical frame short-circuits: zero dirty tiles, the previous
// HR output is returned synchronously (the future is already resolved when
// submit_video returns), and the reuse counters account for the whole grid.
TEST(VideoSession, ZeroDirtyResolvesSynchronously) {
  const core::SesrInference net = make_inference(507, small_config());
  const RouteKey key{"m", 2, core::InferencePrecision::kFp32};
  NetworkRegistry registry;
  registry.add(key, net);
  ShardedServer server(registry, video_serve_options(ExecMode::kTiled));
  const Tensor frame = make_frame(43, 13, 15);
  VideoOptions video;
  video.session_id = 3;
  video.seq = 1;
  const Tensor first = server.submit_video(key, frame, video).future.get();
  video.seq = 2;
  AdmitResult repeat = server.submit_video(key, frame, video);
  EXPECT_TRUE(repeat.delta);
  EXPECT_EQ(repeat.tiles_recomputed, 0U);
  EXPECT_GT(repeat.tiles_total, 0U);
  ASSERT_EQ(repeat.future.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  ASSERT_EQ(max_abs_diff(repeat.future.get(), first), 0.0F);
  server.shutdown();
  const ShardedStats stats = server.stats();
  EXPECT_EQ(stats.total.video_tiles_recomputed, 0U);
  EXPECT_EQ(stats.total.video_tiles_reused, repeat.tiles_total);
}

// reload_routes swaps the network set; stale sessions must not splice HR
// tiles produced by the previous deployment.
TEST(VideoSession, ReloadRoutesClearsSessions) {
  const core::SesrInference net = make_inference(509, small_config());
  const RouteKey key{"m", 2, core::InferencePrecision::kFp32};
  NetworkRegistry registry;
  registry.add(key, net);
  ShardedServer server(registry, video_serve_options(ExecMode::kTiled));
  const Tensor frame = make_frame(47, 14, 14);
  VideoOptions video;
  video.session_id = 4;
  video.seq = 1;
  server.submit_video(key, frame, video).future.get();
  NetworkRegistry swapped;
  swapped.add(key, net);
  server.begin_drain();
  server.reload_routes(swapped);
  server.resume();
  video.seq = 2;
  AdmitResult after = server.submit_video(key, frame, video);
  EXPECT_FALSE(after.delta);  // the session table was cleared with the routes
  ASSERT_EQ(max_abs_diff(after.future.get(), server.submit(key, frame).get()), 0.0F);
  server.shutdown();
}

// LRU eviction under a tiny session budget: an evicted session falls back to
// the full path (correct, just slower) and the eviction is counted.
TEST(VideoSession, EvictionDropsLeastRecentSession) {
  const core::SesrInference net = make_inference(511, small_config());
  const RouteKey key{"m", 2, core::InferencePrecision::kFp32};
  NetworkRegistry registry;
  registry.add(key, net);
  ServeOptions options = video_serve_options(ExecMode::kTiled);
  options.video_sessions = 1;
  ShardedServer server(registry, options);
  const Tensor frame = make_frame(53, 12, 12);
  VideoOptions a{10, 1};
  server.submit_video(key, frame, a).future.get();
  VideoOptions b{11, 1};
  server.submit_video(key, frame, b).future.get();  // evicts session 10
  a.seq = 2;
  EXPECT_FALSE(server.submit_video(key, frame, a).future.get().numel() == 0);
  const ShardedStats mid = server.stats();
  EXPECT_GE(mid.video.evictions, 1U);
  b.seq = 2;
  // Session 11 was itself evicted by session 10's seq-2 re-prime.
  AdmitResult b2 = server.submit_video(key, frame, b);
  EXPECT_FALSE(b2.delta);
  b2.future.get();
  server.shutdown();
}

// video_sessions = 0 disables the table entirely: every frame takes the full
// path, results stay correct, nothing is published.
TEST(VideoSession, DisabledTableServesFullPath) {
  const core::SesrInference net = make_inference(513, small_config());
  const RouteKey key{"m", 2, core::InferencePrecision::kFp32};
  NetworkRegistry registry;
  registry.add(key, net);
  ServeOptions options = video_serve_options(ExecMode::kTiled);
  options.video_sessions = 0;
  ShardedServer server(registry, options);
  const Tensor frame = make_frame(59, 14, 14);
  for (std::uint64_t seq = 1; seq <= 3; ++seq) {
    VideoOptions video{7, seq};
    AdmitResult admitted = server.submit_video(key, frame, video);
    EXPECT_FALSE(admitted.delta);
    ASSERT_EQ(max_abs_diff(admitted.future.get(), server.submit(key, frame).get()), 0.0F);
  }
  server.shutdown();
  EXPECT_EQ(server.stats().video.publishes, 0U);
  EXPECT_EQ(server.stats().video.sessions, 0U);
}

// Multi-session interleaved stress: several closed-loop producers, each its
// own session, mode x precision x pattern rotating per seed, every frame held
// to bitwise equality with the single-threaded same-mode reference and every
// post-first frame required to take the delta path (closed-loop submission
// guarantees the predecessor is published before the next lookup).
void run_video_session_stress_iteration(std::uint64_t seed) {
  const ExecMode modes[] = {ExecMode::kFullFrame, ExecMode::kTiled, ExecMode::kStreaming,
                            ExecMode::kAuto};
  const ExecMode mode = modes[seed % 4];
  core::SesrInference net = make_inference(9000 + seed, small_config());
  Rng calib_rng(seed ^ 0x51DE0ULL);
  std::vector<Tensor> calib;
  for (int i = 0; i < 2; ++i) {
    Tensor frame(1, 16, 16, 1);
    frame.fill_uniform(calib_rng, 0.0F, 1.0F);
    calib.push_back(std::move(frame));
  }
  net.calibrate_int8(calib);
  std::vector<core::LayerPrecision> plan(net.convolutions().size(),
                                         core::LayerPrecision::kFp16);
  for (std::size_t i = 0; i < plan.size(); i += 2) plan[i] = core::LayerPrecision::kInt8;
  net.set_hybrid_plan(std::move(plan));

  const RouteKey routes[] = {{"m", 2, core::InferencePrecision::kFp32},
                             {"m", 2, core::InferencePrecision::kFp16},
                             {"m", 2, core::InferencePrecision::kInt8},
                             {"m", 2, core::InferencePrecision::kHybrid}};
  NetworkRegistry registry;
  for (const RouteKey& route : routes) registry.add(route, net);

  ServeOptions options;
  options.workers = 1 + static_cast<int>(seed % 3);
  options.max_batch = 1 + static_cast<std::int64_t>(seed % 3);
  options.max_delay_us = 500;
  options.mode = mode;
  options.tiling.tile_h = 6;
  options.tiling.tile_w = 7;
  options.tiled_threshold_pixels = 12 * 12;
  options.cache_entries = 0;
  options.video_sessions = 8;

  const data::VideoPattern patterns[] = {data::VideoPattern::kStatic, data::VideoPattern::kPan,
                                         data::VideoPattern::kCut, data::VideoPattern::kSparkle,
                                         data::VideoPattern::kMixed};
  constexpr int kSessions = 3;
  constexpr int kFrames = 5;

  ShardedServer server(registry, options);
  std::vector<std::vector<Tensor>> sequences(kSessions);
  std::vector<std::vector<Tensor>> outputs(kSessions);
  std::vector<int> route_of(kSessions);
  std::vector<std::uint64_t> delta_frames(kSessions, 0);
  for (int s = 0; s < kSessions; ++s) {
    Rng rng(seed * 131 + static_cast<std::uint64_t>(s));
    data::VideoSequenceOptions vopts;
    vopts.pattern = patterns[rng.uniform_int(0, 4)];
    vopts.frames = kFrames;
    vopts.h = 16;
    vopts.w = 16 + 2 * s;  // distinct shapes across sessions
    sequences[static_cast<std::size_t>(s)] =
        data::synthesize_video(vopts, seed * 977 + static_cast<std::uint64_t>(s));
    route_of[static_cast<std::size_t>(s)] = static_cast<int>(rng.uniform_int(0, 3));
    outputs[static_cast<std::size_t>(s)].resize(kFrames);
  }
  std::vector<std::thread> producers;
  for (int s = 0; s < kSessions; ++s) {
    producers.emplace_back([&, s] {
      const auto& frames = sequences[static_cast<std::size_t>(s)];
      for (int i = 0; i < kFrames; ++i) {
        VideoOptions video;
        video.session_id = 100 + static_cast<std::uint64_t>(s);
        video.seq = static_cast<std::uint64_t>(i) + 1;
        AdmitResult admitted = server.submit_video(
            routes[route_of[static_cast<std::size_t>(s)]],
            frames[static_cast<std::size_t>(i)], video);
        if (admitted.delta) ++delta_frames[static_cast<std::size_t>(s)];
        // Closed loop: the publish lands before get() returns, so the next
        // frame's lookup must hit.
        outputs[static_cast<std::size_t>(s)][static_cast<std::size_t>(i)] =
            admitted.future.get();
      }
    });
  }
  for (auto& p : producers) p.join();
  server.shutdown();

  auto reference = [&](core::InferencePrecision prec, const Tensor& frame) -> Tensor {
    net.set_precision(prec);
    ExecMode resolved = mode;
    if (resolved == ExecMode::kAuto) {
      resolved = frame.shape().h() * frame.shape().w() >= options.tiled_threshold_pixels
                     ? ExecMode::kTiled
                     : ExecMode::kFullFrame;
    }
    if (resolved == ExecMode::kStreaming) {
      core::StreamingUpscaler streamer(net);
      return streamer.upscale(frame);
    }
    if (resolved == ExecMode::kTiled) return core::upscale_tiled(net, frame, options.tiling);
    return net.upscale(frame);
  };
  for (int s = 0; s < kSessions; ++s) {
    ASSERT_EQ(delta_frames[static_cast<std::size_t>(s)],
              static_cast<std::uint64_t>(kFrames - 1))
        << "seed=" << seed << " session=" << s;
    for (int i = 0; i < kFrames; ++i) {
      ASSERT_EQ(max_abs_diff(outputs[static_cast<std::size_t>(s)][static_cast<std::size_t>(i)],
                             reference(routes[route_of[static_cast<std::size_t>(s)]].precision,
                                       sequences[static_cast<std::size_t>(s)]
                                                [static_cast<std::size_t>(i)])),
                0.0F)
          << "seed=" << seed << " session=" << s << " frame=" << i
          << " mode=" << static_cast<int>(mode);
    }
  }
  const ShardedStats stats = server.stats();
  ASSERT_EQ(stats.total.failed, 0U) << "seed=" << seed;
  ASSERT_EQ(stats.total.video_frames, static_cast<std::uint64_t>(kSessions * kFrames))
      << "seed=" << seed;
}

TEST(VideoSessionStress, InterleavedSessionsBitIdentical) {
  const int iterations = stress_iterations();
  for (int i = 0; i < iterations; ++i) {
    SCOPED_TRACE("iteration " + std::to_string(i));
    run_video_session_stress_iteration(static_cast<std::uint64_t>(i));
    if (HasFatalFailure()) return;
  }
}

// ------------------------------------------------ steady-clock deadline math

TEST(ServeClock, SaturatingDeadlineClampsOverflowAndNegativeDelay) {
  const auto t0 = ServeClock::now();
  EXPECT_EQ(saturating_deadline(t0, std::chrono::microseconds(-5)), t0);
  EXPECT_EQ(saturating_deadline(t0, std::chrono::microseconds(0)), t0);
  EXPECT_EQ(saturating_deadline(t0, std::chrono::microseconds(1000)),
            t0 + std::chrono::microseconds(1000));
  // INT64_MAX microseconds would wrap `t0 + delay` into the past; the batcher
  // would then flush every batch instantly. Must clamp to max() instead.
  EXPECT_EQ(saturating_deadline(t0, std::chrono::microseconds::max()),
            ServeClock::time_point::max());
  EXPECT_EQ(saturating_deadline(ServeClock::time_point::max(), std::chrono::microseconds(1)),
            ServeClock::time_point::max());
}

// next_wait is the pure decision kernel of every timed wait in src/serve.
// Drive it with a simulated jumping clock: whatever `now` sequence a broken
// wall clock produces, the wait must stay in [0, deadline - now] and hit
// exactly zero once the deadline passes.
TEST(ServeClock, NextWaitSurvivesSimulatedClockJumps) {
  const auto t0 = ServeClock::time_point(std::chrono::microseconds(1'000'000));
  const auto deadline = t0 + std::chrono::microseconds(5000);
  // Jump sequence: normal tick, backwards step (suspend/NTP on a wrongly
  // wall-pinned clock), huge forward leap, then exactly-at and past-deadline.
  const std::int64_t nows_us[] = {1'000'000, 1'000'100, 999'000, 1'004'999,
                                  1'005'000, 2'000'000};
  const std::int64_t want_us[] = {5000, 4900, 6000, 1, 0, 0};
  for (std::size_t i = 0; i < std::size(nows_us); ++i) {
    const auto now = ServeClock::time_point(std::chrono::microseconds(nows_us[i]));
    EXPECT_EQ(next_wait(now, deadline).count(), want_us[i]) << "step " << i;
    EXPECT_GE(next_wait(now, deadline).count(), 0) << "step " << i;
    EXPECT_EQ(remaining_budget_us(now, deadline), want_us[i]) << "step " << i;
  }
}

TEST(ServeClock, WaitUntilSteadyHonorsPredicateAndDeadline) {
  std::condition_variable cv;
  std::mutex mutex;
  std::unique_lock<std::mutex> lock(mutex);
  // Already-satisfied predicate: returns true without waiting.
  EXPECT_TRUE(wait_until_steady(cv, lock, ServeClock::now(), [] { return true; }));
  // Expired deadline with a false predicate: returns false immediately
  // instead of blocking (the wait loop must not round a negative remaining
  // time up into a sleep).
  EXPECT_FALSE(wait_until_steady(cv, lock, ServeClock::now() - std::chrono::seconds(1),
                                 [] { return false; }));
}

TEST(RequestQueue, PopBatchFlushDeadlineIsBounded) {
  // One frame below max_batch: pop_batch must give up at the flush deadline,
  // not wait for a batch that will never fill. Generous upper bound (CI), but
  // any wall-clock re-basing bug here turns into an unbounded stall.
  RequestQueue queue(4);
  FrameRequest r;
  r.frame = make_frame(7, 4, 4);
  r.enqueue_time = ServeClock::now();
  ASSERT_EQ(queue.push(r, OverloadPolicy::kReject), RequestQueue::PushResult::kAccepted);
  const auto start = ServeClock::now();
  auto batch = queue.pop_batch(8, std::chrono::microseconds(20'000));
  const auto elapsed = ServeClock::now() - start;
  ASSERT_EQ(batch.size(), 1U);
  EXPECT_LT(elapsed, std::chrono::seconds(30));
}

// --------------------------------------------------- admission controller

NetworkRegistry two_precision_registry(std::uint64_t seed) {
  const core::SesrInference inference = make_inference(seed, small_config());
  NetworkRegistry registry;
  registry.add(RouteKey{"a", 2, core::InferencePrecision::kFp32}, inference);
  registry.add(RouteKey{"a", 2, core::InferencePrecision::kFp16}, inference);
  return registry;
}

TEST(Admission, UnwarmedRouteAdmitsOptimistically) {
  const NetworkRegistry registry = two_precision_registry(70);
  SloOptions slo;
  slo.p99_budget_us = 100;
  slo.min_samples = 2;
  const AdmissionController ctrl(registry.entries(), slo, /*workers=*/1);
  const auto idle = [](std::size_t) -> std::int64_t { return 0; };
  // No samples at all: the estimator has nothing to shed on.
  EXPECT_EQ(ctrl.admit(0, 0, idle).action, AdmissionController::Action::kAdmit);
  EXPECT_EQ(ctrl.ewma_us(0), 0.0);
}

TEST(Admission, EwmaSeedsOnFirstSampleThenBlends) {
  const NetworkRegistry registry = two_precision_registry(71);
  SloOptions slo;
  slo.ewma_alpha = 0.5;
  AdmissionController ctrl(registry.entries(), slo, 1);
  ctrl.record(0, 100);
  EXPECT_EQ(ctrl.ewma_us(0), 100.0);  // first sample seeds, no decay from 0
  ctrl.record(0, 200);
  EXPECT_EQ(ctrl.ewma_us(0), 150.0);
  EXPECT_EQ(ctrl.samples(0), 2U);
  EXPECT_EQ(ctrl.ewma_us(1), 0.0);  // the other route is untouched
}

TEST(Admission, DegradesToCheaperPrecisionThenSheds) {
  const NetworkRegistry registry = two_precision_registry(72);
  SloOptions slo;
  slo.p99_budget_us = 100;
  slo.min_samples = 1;
  AdmissionController ctrl(registry.entries(), slo, 1);
  const auto idle = [](std::size_t) -> std::int64_t { return 0; };
  // fp32 warmed far over budget, fp16 cold: degrade to the fp16 shard.
  ctrl.record(0, 10'000);
  auto decision = ctrl.admit(0, 0, idle);
  EXPECT_EQ(decision.action, AdmissionController::Action::kDegrade);
  EXPECT_EQ(decision.route, 1U);
  // fp16 warmed over budget too: nothing fits, shed with the estimates.
  ctrl.record(1, 10'000);
  decision = ctrl.admit(0, 0, idle);
  EXPECT_EQ(decision.action, AdmissionController::Action::kShed);
  EXPECT_GT(decision.estimate_us, decision.budget_us);
  // Queue depth scales the estimate: a warmed route under budget when idle
  // goes over once enough requests are in the system.
  ctrl.record(0, 60);  // pull fp32's ewma back toward the budget
  while (ctrl.ewma_us(0) > 90.0) ctrl.record(0, 60);
  EXPECT_EQ(ctrl.admit(0, 0, idle).action, AdmissionController::Action::kAdmit);
  const auto deep = [](std::size_t) -> std::int64_t { return 50; };
  EXPECT_NE(ctrl.admit(0, 0, deep).action, AdmissionController::Action::kAdmit);
}

TEST(Admission, ShedDisabledMeansMonitorOnly) {
  const NetworkRegistry registry = two_precision_registry(73);
  SloOptions slo;
  slo.p99_budget_us = 10;
  slo.min_samples = 1;
  slo.allow_degrade = false;
  slo.allow_shed = false;
  AdmissionController ctrl(registry.entries(), slo, 1);
  ctrl.record(0, 10'000);
  const auto idle = [](std::size_t) -> std::int64_t { return 0; };
  const auto decision = ctrl.admit(0, 0, idle);
  EXPECT_EQ(decision.action, AdmissionController::Action::kAdmit);
  EXPECT_EQ(decision.route, 0U);  // unchanged: over budget is only observed
}

TEST(Admission, X4FallsBackToTwoStageX2Rung) {
  const core::SesrInference net4 = make_inference(74, [] {
    core::SesrConfig c = small_config();
    c.scale = 4;
    return c;
  }());
  const core::SesrInference net2 = make_inference(75, small_config());
  NetworkRegistry registry;
  registry.add(RouteKey{"a", 4, core::InferencePrecision::kFp32}, net4);
  registry.add(RouteKey{"a", 2, core::InferencePrecision::kFp32}, net2);
  SloOptions slo;
  slo.p99_budget_us = 1000;
  slo.min_samples = 1;
  AdmissionController ctrl(registry.entries(), slo, 1);
  const auto idle = [](std::size_t) -> std::int64_t { return 0; };
  ctrl.record(0, 50'000);  // x4 hopelessly over budget
  ctrl.record(1, 100);     // x2 cheap: two-stage estimate 5 * 100 fits
  const auto decision = ctrl.admit(0, 0, idle);
  EXPECT_EQ(decision.action, AdmissionController::Action::kDegradeTwoStage);
  EXPECT_EQ(decision.route, 1U);
  // And once the x2 rung is over budget / 5 as well, the x4 request sheds.
  ctrl.record(1, 50'000);
  EXPECT_EQ(ctrl.admit(0, 0, idle).action, AdmissionController::Action::kShed);
}

// ------------------------------------------- SLO admission through the server

TEST(ShardedServer, DeadlineDegradesToRegisteredFallbackAndSheds) {
  const core::SesrInference inference = make_inference(76, small_config());
  const RouteKey fp32_route{"a", 2, core::InferencePrecision::kFp32};
  const RouteKey fp16_route{"a", 2, core::InferencePrecision::kFp16};
  NetworkRegistry registry;
  registry.add(fp32_route, inference);
  registry.add(fp16_route, inference);
  ServeOptions options;
  options.workers = 1;
  options.slo.min_samples = 1;  // one observation warms a route
  ShardedServer server(registry, options);
  const Tensor frame = make_frame(93, 32, 32);

  // Warm fp32: no deadline, no SLO budget -> always admitted unchanged.
  for (int i = 0; i < 2; ++i) {
    AdmitResult r = server.submit_admitted(fp32_route, frame);
    r.future.get();
    EXPECT_FALSE(r.degraded);
    EXPECT_EQ(r.served_route, "a:2:fp32");
  }
  ASSERT_GT(server.admission().ewma_us(0), 0.0);

  // 1us deadline: fp32's warmed estimate cannot fit, fp16 is cold and admits
  // optimistically -> the request is rewritten to the registered fallback and
  // still served (degradation is not an error).
  SubmitOptions tight;
  tight.deadline_us = 1;
  AdmitResult degraded = server.submit_admitted(fp32_route, frame, tight);
  EXPECT_TRUE(degraded.degraded);
  EXPECT_FALSE(degraded.shed);
  EXPECT_EQ(degraded.served_route, "a:2:fp16");
  core::SesrInference fp16_ref = make_inference(76, small_config());
  fp16_ref.set_precision(core::InferencePrecision::kFp16);
  EXPECT_EQ(max_abs_diff(degraded.future.get(), fp16_ref.upscale(frame)), 0.0F);

  // That completion warmed fp16; now no rung fits 1us -> typed shed.
  ASSERT_GT(server.admission().ewma_us(1), 0.0);
  AdmitResult shed = server.submit_admitted(fp32_route, frame, tight);
  EXPECT_TRUE(shed.shed);
  EXPECT_THROW(shed.future.get(), ShedError);
  server.shutdown();
  const ShardedStats stats = server.stats();
  EXPECT_EQ(stats.total.shed, 1U);
  EXPECT_EQ(stats.total.degraded, 1U);
  EXPECT_GT(stats.per_route[0].service_ewma_us, 0.0);
}

TEST(ShardedServer, X4DegradesToTwoStageX2BitIdentical) {
  core::SesrConfig config4 = small_config();
  config4.scale = 4;
  const core::SesrInference net4 = make_inference(77, config4);
  const core::SesrInference net2 = make_inference(78, small_config());
  const RouteKey route4{"a", 4, core::InferencePrecision::kFp32};
  const RouteKey route2{"a", 2, core::InferencePrecision::kFp32};
  NetworkRegistry registry;
  registry.add(route4, net4);
  registry.add(route2, net2);
  ServeOptions options;
  options.workers = 2;
  options.slo.min_samples = 1;
  ShardedServer server(registry, options);
  const Tensor frame = make_frame(94, 12, 12);

  // Warm the x4 route so its estimate exists; leave x2 cold so the two-stage
  // rung admits optimistically.
  server.submit_admitted(route4, frame).future.get();
  SubmitOptions tight;
  tight.deadline_us = 1;
  AdmitResult result = server.submit_admitted(route4, frame, tight);
  EXPECT_TRUE(result.two_stage);
  EXPECT_TRUE(result.degraded);
  EXPECT_EQ(result.served_route, "a:2:fp32");
  // x4 served as x2 applied twice must be bit-identical to chaining the x2
  // reference network by hand.
  const Tensor want = net2.upscale(net2.upscale(frame));
  const Tensor got = result.future.get();
  EXPECT_EQ(got.shape(), want.shape());  // x2 twice really lands at x4
  EXPECT_EQ(max_abs_diff(got, want), 0.0F);
  server.shutdown();
  EXPECT_EQ(server.stats().total.two_stage, 1U);
  EXPECT_EQ(server.stats().total.failed, 0U);
}

// ------------------------------------------------- drain / reload lifecycle

// Satellite regression for the mid-fan-out shutdown race: a large tiled frame
// is fanned out across the dispatch queue while every worker is held on a
// latch, and shutdown() lands in the middle. The old code closed the dispatch
// queue under the batcher's feet; the push failed and the request's promise
// was silently abandoned (future.get() -> broken_promise). Now shutdown
// drains: the future must resolve with the bit-exact tiled result.
TEST(ShardedServer, ShutdownMidTileFanoutCompletesTheRequest) {
  const core::SesrInference inference = make_inference(79, small_config());
  const RouteKey route{"a", 2, core::InferencePrecision::kFp32};
  NetworkRegistry registry;
  registry.add(route, inference);
  std::atomic<bool> hold{true};
  ServeOptions options;
  options.workers = 2;
  options.mode = ExecMode::kTiled;
  options.tiling.tile_h = 8;
  options.tiling.tile_w = 8;
  options.worker_hook = [&] {
    while (hold.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  ShardedServer server(registry, options);
  const Tensor frame = make_frame(95, 48, 56);  // 6 * 7 = 42 tiles
  std::future<Tensor> future = server.submit(route, frame);
  // Wait until the batcher has started fanning the frame out (it counts the
  // job before pushing tile units), so shutdown() lands with tile units
  // queued behind latched workers — the exact shape of the old race.
  while (server.stats().total.batches == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::thread closer([&] { server.shutdown(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  hold.store(false, std::memory_order_release);
  closer.join();
  EXPECT_EQ(max_abs_diff(future.get(), core::upscale_tiled(inference, frame, options.tiling)),
            0.0F);
  const ShardedStats stats = server.stats();
  EXPECT_EQ(stats.total.completed, 1U);
  EXPECT_EQ(stats.total.failed, 0U);
}

TEST(ShardedServer, DrainRejectsTypedAndResumeReopens) {
  const core::SesrInference inference = make_inference(80, small_config());
  const RouteKey route{"a", 2, core::InferencePrecision::kFp32};
  NetworkRegistry registry;
  registry.add(route, inference);
  ShardedServer server(registry, ServeOptions{});
  const Tensor frame = make_frame(96, 10, 10);
  EXPECT_EQ(max_abs_diff(server.submit(route, frame).get(), inference.upscale(frame)), 0.0F);
  server.begin_drain();
  EXPECT_TRUE(server.draining());
  // Typed rejection, and ServerDrainingError is catchable as ServerClosedError
  // (clients treating both as "go away" keep working).
  try {
    server.submit(route, frame).get();
    FAIL() << "draining server accepted a request";
  } catch (const ServerDrainingError&) {
  }
  EXPECT_THROW(server.submit(route, frame).get(), ServerClosedError);
  server.resume();
  EXPECT_FALSE(server.draining());
  EXPECT_EQ(max_abs_diff(server.submit(route, frame).get(), inference.upscale(frame)), 0.0F);
  server.shutdown();
  EXPECT_THROW(server.resume(), std::logic_error);
}

TEST(ShardedServer, ReloadRoutesRequiresDrainAndMatchingRouteSet) {
  const core::SesrInference net_a = make_inference(81, small_config());
  const RouteKey route{"a", 2, core::InferencePrecision::kFp32};
  NetworkRegistry registry;
  registry.add(route, net_a);
  ShardedServer server(registry, ServeOptions{});
  // Not draining: reload must refuse.
  EXPECT_THROW(server.reload_routes(registry), std::logic_error);
  server.begin_drain();
  // Route set mismatch: refuse too.
  const core::SesrInference net_b = make_inference(82, small_config());
  NetworkRegistry wrong;
  wrong.add(RouteKey{"b", 2, core::InferencePrecision::kFp32}, net_b);
  EXPECT_THROW(server.reload_routes(wrong), std::invalid_argument);
  server.resume();
  server.shutdown();
}

// Satellite 3: checkpoint swap + route reload under live traffic. Producers
// hammer the server while the main thread drains, swaps checkpoints, and
// resumes. Every accepted request must complete bit-identically to the
// checkpoint that was live when it was admitted — zero lost futures across
// the swap boundary — and requests refused during the drain must fail with
// the typed drain error, nothing else.
TEST(ShardedServer, DrainSwapResumeUnderLiveTrafficLosesNothing) {
  const core::SesrInference net_old = make_inference(83, small_config());
  const core::SesrInference net_new = make_inference(84, small_config());
  const RouteKey route{"a", 2, core::InferencePrecision::kFp32};
  NetworkRegistry registry_old;
  registry_old.add(route, net_old);
  NetworkRegistry registry_new;
  registry_new.add(route, net_new);

  ServeOptions options;
  options.workers = 2;
  options.cache_entries = 8;  // reload must also invalidate cached outputs
  ShardedServer server(registry_old, options);

  constexpr int kProducers = 4;
  const Tensor frame = make_frame(97, 12, 12);
  const Tensor want_old = net_old.upscale(frame);
  const Tensor want_new = net_new.upscale(frame);
  ASSERT_GT(max_abs_diff(want_old, want_new), 0.0F);  // the swap is observable

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> drained_rejects{0};
  std::atomic<std::uint64_t> lost{0};
  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        std::future<Tensor> f = server.submit(route, frame);
        try {
          // Anything accepted before (or during) the drain ran on the OLD
          // checkpoint: begin_drain() waits for all of it before reload.
          const Tensor got = f.get();
          accepted.fetch_add(1);
          if (max_abs_diff(got, want_old) != 0.0F) lost.fetch_add(1);
        } catch (const ServerDrainingError&) {
          drained_rejects.fetch_add(1);
        } catch (...) {
          lost.fetch_add(1);
        }
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
  }

  // Let traffic build, then swap checkpoints mid-flight.
  while (accepted.load() < 8) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  server.begin_drain();  // returns only after every accepted future resolved
  server.reload_routes(registry_new);
  stop.store(true, std::memory_order_release);  // producers may still see draining
  server.resume();
  for (auto& p : producers) p.join();

  EXPECT_EQ(lost.load(), 0U) << "accepted requests lost or served the wrong checkpoint";
  EXPECT_GE(accepted.load(), 8U);
  // Post-swap: same frame, new weights — and the pre-swap cache entry for
  // this exact frame must NOT resurface the old output.
  EXPECT_EQ(max_abs_diff(server.submit(route, frame).get(), want_new), 0.0F);
  server.shutdown();
  EXPECT_EQ(server.stats().total.failed, 0U);
}

}  // namespace
}  // namespace sesr::serve
